"""Coarsening phase of the multilevel partitioner.

Following Karypis & Kumar's multilevel scheme, the input graph is repeatedly
collapsed by computing a matching and merging matched endpoints into
super-vertices.  Edge weights between super-vertices accumulate the weights
of the original edges they represent, and vertex weights accumulate the
number (or weight) of original vertices — so the balance constraint at the
coarsest level still reflects the original graph.

Two matching strategies are provided:

* **heavy-edge matching (HEM)** — visit vertices in random order and match
  each unmatched vertex to the unmatched neighbour connected by the heaviest
  edge.  This is METIS's default and shrinks the cut that later refinement
  has to repair.
* **random matching (RM)** — match to a random unmatched neighbour; used by
  the coarsening ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph, NodeId


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph at this level.
    vertex_weights:
        Weight of each coarse vertex (number of original vertices it holds).
    projection:
        Maps each vertex of the *finer* graph to its coarse super-vertex.
    """

    graph: Graph
    vertex_weights: Dict[NodeId, float]
    projection: Dict[NodeId, NodeId] = field(default_factory=dict)


def initial_level(graph: Graph) -> CoarseLevel:
    """Wrap the input graph as level 0 with unit vertex weights."""
    return CoarseLevel(
        graph=graph,
        vertex_weights={node: 1.0 for node in graph.nodes()},
        projection={},
    )


def heavy_edge_matching(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
    rng: random.Random,
    max_vertex_weight: Optional[float] = None,
) -> Dict[NodeId, NodeId]:
    """Return a matching as a map vertex -> partner (both directions present).

    Unmatched vertices are absent from the map.  ``max_vertex_weight`` stops
    super-vertices from growing so large that balance becomes impossible.
    """
    order = list(graph.nodes())
    rng.shuffle(order)
    matched: Dict[NodeId, NodeId] = {}
    for node in order:
        if node in matched:
            continue
        best: Optional[NodeId] = None
        best_weight = -1.0
        for neighbor in graph.neighbors(node):
            if neighbor == node or neighbor in matched:
                continue
            if max_vertex_weight is not None:
                combined = vertex_weights[node] + vertex_weights[neighbor]
                if combined > max_vertex_weight:
                    continue
            weight = graph.edge_weight(node, neighbor)
            if weight > best_weight:
                best_weight = weight
                best = neighbor
        if best is not None:
            matched[node] = best
            matched[best] = node
    return matched


def random_matching(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
    rng: random.Random,
    max_vertex_weight: Optional[float] = None,
) -> Dict[NodeId, NodeId]:
    """Return a random maximal matching (ablation alternative to HEM)."""
    order = list(graph.nodes())
    rng.shuffle(order)
    matched: Dict[NodeId, NodeId] = {}
    for node in order:
        if node in matched:
            continue
        candidates = [
            neighbor
            for neighbor in graph.neighbors(node)
            if neighbor != node
            and neighbor not in matched
            and (
                max_vertex_weight is None
                or vertex_weights[node] + vertex_weights[neighbor] <= max_vertex_weight
            )
        ]
        if candidates:
            partner = rng.choice(candidates)
            matched[node] = partner
            matched[partner] = node
    return matched


def contract(
    graph: Graph,
    vertex_weights: Dict[NodeId, float],
    matching: Dict[NodeId, NodeId],
) -> CoarseLevel:
    """Collapse matched pairs into super-vertices and return the coarser level.

    Coarse vertex ids are fresh consecutive integers, which keeps the coarse
    graphs compact regardless of the original id domain.
    """
    projection: Dict[NodeId, NodeId] = {}
    coarse = Graph(name=f"{graph.name}|coarse")
    coarse_weights: Dict[NodeId, float] = {}
    next_id = 0
    for node in graph.nodes():
        if node in projection:
            continue
        partner = matching.get(node)
        coarse_id = next_id
        next_id += 1
        projection[node] = coarse_id
        weight = vertex_weights[node]
        if partner is not None and partner != node and partner not in projection:
            projection[partner] = coarse_id
            weight += vertex_weights[partner]
        coarse.add_node(coarse_id)
        coarse_weights[coarse_id] = weight
    for u, v, w in graph.edges():
        cu, cv = projection[u], projection[v]
        if cu == cv:
            continue  # internal edge of a super-vertex disappears
        coarse.add_edge(cu, cv, weight=w, accumulate=coarse.has_edge(cu, cv))
    return CoarseLevel(graph=coarse, vertex_weights=coarse_weights, projection=projection)


def coarsen(
    graph: Graph,
    target_size: int = 100,
    max_levels: int = 30,
    matching: str = "heavy_edge",
    seed: Optional[int] = None,
    balance_factor: float = 1.5,
) -> List[CoarseLevel]:
    """Build the coarsening hierarchy (finest first, coarsest last).

    Coarsening stops when the coarse graph has at most ``target_size``
    vertices, when ``max_levels`` is reached, or when a level fails to shrink
    the graph by at least ~10 % (which signals the matching has collapsed,
    e.g. on a star graph).
    """
    rng = random.Random(seed if seed is not None else 0)
    matcher = heavy_edge_matching if matching == "heavy_edge" else random_matching
    levels = [initial_level(graph)]
    total_weight = float(graph.num_nodes)
    while (
        levels[-1].graph.num_nodes > target_size
        and len(levels) <= max_levels
    ):
        current = levels[-1]
        # Cap super-vertex size so the coarsest graph stays partitionable.
        max_vertex_weight = balance_factor * total_weight / max(target_size, 1)
        match = matcher(
            current.graph, current.vertex_weights, rng, max_vertex_weight=max_vertex_weight
        )
        if not match:
            break
        coarser = contract(current.graph, current.vertex_weights, match)
        if coarser.graph.num_nodes >= current.graph.num_nodes * 0.95:
            break
        levels.append(coarser)
    return levels

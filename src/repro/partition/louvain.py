"""Louvain-style modularity community detection.

Section III-A notes that "any partitioning methodology fits our system":
the G-Tree only needs *some* decomposition of a community into
sub-communities.  Besides the METIS-style balanced k-way partitioner, this
module provides greedy modularity maximisation (the Louvain method's local
phase plus graph aggregation), which produces unbalanced but
structure-following communities — useful when the analyst prefers natural
community boundaries over equal sizes.

:func:`louvain_communities` returns the partition; :func:`louvain_partition_fn`
adapts it to the ``partition_fn(graph, k)`` signature expected by
:func:`repro.partition.hierarchy.recursive_partition` (splitting or merging
communities to reach exactly ``k`` parts).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..graph.graph import Graph, NodeId
from .metrics import groups, modularity


def _local_moving(
    graph: Graph,
    assignment: Dict[NodeId, int],
    rng: random.Random,
    max_sweeps: int = 10,
) -> bool:
    """One Louvain phase: move vertices to the neighbouring community with the
    largest modularity gain until no move improves.  Returns whether anything moved."""
    two_m = 2.0 * graph.total_edge_weight()
    if two_m == 0:
        return False
    degree = {node: graph.weighted_degree(node) for node in graph.nodes()}
    community_degree: Dict[int, float] = {}
    for node, community in assignment.items():
        community_degree[community] = community_degree.get(community, 0.0) + degree[node]

    moved_any = False
    nodes = list(graph.nodes())
    for _ in range(max_sweeps):
        rng.shuffle(nodes)
        moved = 0
        for node in nodes:
            current = assignment[node]
            # Weight of edges from `node` to each neighbouring community.
            links: Dict[int, float] = {}
            for neighbor in graph.neighbors(node):
                if neighbor == node:
                    continue
                community = assignment[neighbor]
                links[community] = links.get(community, 0.0) + graph.edge_weight(node, neighbor)
            community_degree[current] -= degree[node]
            best_community = current
            best_gain = links.get(current, 0.0) - community_degree[current] * degree[node] / two_m
            for community, weight in links.items():
                gain = weight - community_degree[community] * degree[node] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = community
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + degree[node]
            )
            if best_community != current:
                assignment[node] = best_community
                moved += 1
        if moved == 0:
            break
        moved_any = True
    return moved_any


def _aggregate(graph: Graph, assignment: Dict[NodeId, int]) -> Graph:
    """Collapse each community into a single super-vertex (weights summed).

    Internal edges become self-loops so the aggregated graph keeps each
    community's internal mass (the standard Louvain construction).
    """
    aggregated = Graph(name=f"{graph.name}|louvain")
    for community in set(assignment.values()):
        aggregated.add_node(community)
    for u, v, w in graph.edges():
        cu, cv = assignment[u], assignment[v]
        aggregated.add_edge(cu, cv, weight=w, accumulate=aggregated.has_edge(cu, cv))
    return aggregated


def louvain_communities(
    graph: Graph,
    seed: Optional[int] = 0,
    max_levels: int = 10,
) -> Dict[NodeId, int]:
    """Return a modularity-maximising assignment vertex -> community id.

    Community ids are renumbered to ``0..c-1`` in order of first appearance.
    """
    rng = random.Random(seed if seed is not None else 0)
    assignment = {node: index for index, node in enumerate(graph.nodes())}
    if graph.num_edges == 0:
        return {node: 0 for node in graph.nodes()}

    # membership[v] holds v's community in terms of the *current* level's ids.
    membership = dict(assignment)
    level_graph = graph
    best_modularity = modularity(graph, assignment)
    for _ in range(max_levels):
        improved = _local_moving(level_graph, membership, rng)
        if not improved:
            break
        # Re-express the original vertices in terms of the merged communities.
        if level_graph is graph:
            candidate = dict(membership)
        else:
            candidate = {node: membership[assignment[node]] for node in assignment}
        # Accept the level only if it improves modularity on the *original*
        # graph; this guards against over-merging on coarse levels, where the
        # per-level gain estimate is only an approximation.
        candidate_modularity = modularity(graph, candidate)
        if candidate_modularity <= best_modularity + 1e-9:
            break
        assignment = candidate
        best_modularity = candidate_modularity
        level_graph = _aggregate(level_graph, membership)
        membership = {node: node for node in level_graph.nodes()}

    # Renumber communities densely and deterministically.
    order: Dict[int, int] = {}
    final: Dict[NodeId, int] = {}
    for node in graph.nodes():
        community = assignment[node]
        if community not in order:
            order[community] = len(order)
        final[node] = order[community]
    return final


def louvain_partition_fn(seed: Optional[int] = 0):
    """Return a ``partition_fn(graph, k)`` adapter around Louvain.

    Louvain chooses its own number of communities; the adapter merges the
    smallest communities (or splits the largest round-robin) so the result
    has exactly ``k`` non-empty parts, as the recursive hierarchy driver
    requires.
    """

    def partition(graph: Graph, k: int) -> Dict[NodeId, int]:
        assignment = louvain_communities(graph, seed=seed)
        parts = [part for part in groups(assignment, max(assignment.values()) + 1) if part]
        parts.sort(key=len, reverse=True)
        # Merge smallest parts until at most k remain.
        while len(parts) > k:
            smallest = parts.pop()
            parts[-1] = parts[-1] + smallest
            parts.sort(key=len, reverse=True)
        # Split the largest parts (round-robin halves) until k parts exist.
        while len(parts) < k and any(len(part) >= 2 for part in parts):
            parts.sort(key=len, reverse=True)
            largest = parts.pop(0)
            half = len(largest) // 2
            parts.extend([largest[:half], largest[half:]])
        result: Dict[NodeId, int] = {}
        for index, part in enumerate(parts):
            for node in part:
                result[node] = index
        return result

    return partition


def compare_partitions(graph: Graph, a: Dict[NodeId, int], b: Dict[NodeId, int]) -> Dict[str, float]:
    """Return modularity of two assignments side by side (benchmark helper)."""
    return {"modularity_a": modularity(graph, a), "modularity_b": modularity(graph, b)}

"""k-way partitioning by recursive bisection, plus baselines.

The paper asks for METIS-style k-way partitioning: ``k`` parts of equal size
(``|Vi| = n/k``) minimising the edges between parts.  We obtain it the way
pmetis does — recursive bisection with unequal split fractions when ``k`` is
not a power of two — followed by a greedy k-way refinement pass.

Baselines used by the partition-quality benchmark:

* :func:`random_kway` — balanced random assignment (worst reasonable cut),
* :func:`bfs_kway` — contiguous chunks of a BFS ordering (cheap, locality
  aware, but no optimisation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..errors import PartitionError
from ..graph.graph import Graph, NodeId
from ..graph.traversal import bfs_order
from .metrics import validate_assignment
from .multilevel import BisectionOptions, multilevel_bisection
from .refine import greedy_kway_refine


@dataclass
class KWayOptions:
    """Tuning knobs for the k-way driver."""

    bisection: BisectionOptions = None  # type: ignore[assignment]
    final_refine: bool = True
    final_refine_passes: int = 4
    balance_tolerance: float = 1.10
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bisection is None:
            self.bisection = BisectionOptions(seed=self.seed)


def kway_partition(
    graph: Graph, k: int, options: Optional[KWayOptions] = None
) -> Dict[NodeId, int]:
    """Return a k-way assignment (vertex -> part in ``[0, k)``).

    ``k`` may exceed the vertex count only when the graph is empty of that
    many vertices — in that case an error is raised, because empty parts make
    the G-Tree hierarchy degenerate.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k == 1:
        return {node: 0 for node in graph.nodes()}
    if graph.num_nodes < k:
        raise PartitionError(
            f"cannot split {graph.num_nodes} vertices into {k} non-empty parts"
        )
    options = options or KWayOptions()
    assignment: Dict[NodeId, int] = {}
    _recursive_bisect(graph, k, 0, options, assignment, depth=0)
    if options.final_refine and k > 2:
        assignment = greedy_kway_refine(
            graph,
            assignment,
            k,
            max_passes=options.final_refine_passes,
            balance_tolerance=options.balance_tolerance,
        )
        assignment = _repair_empty_parts(graph, assignment, k)
    validate_assignment(graph, assignment, k)
    return assignment


def _recursive_bisect(
    graph: Graph,
    k: int,
    offset: int,
    options: KWayOptions,
    assignment: Dict[NodeId, int],
    depth: int,
) -> None:
    """Recursively split ``graph`` into parts ``offset .. offset + k - 1``."""
    if k == 1:
        for node in graph.nodes():
            assignment[node] = offset
        return
    left_k = k // 2
    right_k = k - left_k
    fraction = left_k / k
    seed = None
    if options.seed is not None:
        # Derive a distinct but deterministic seed per recursion branch.
        seed = options.seed + 31 * depth + 7 * offset
    bisect_options = replace(options.bisection, target_fraction=fraction, seed=seed)
    two_way = multilevel_bisection(graph, bisect_options)
    two_way = _ensure_both_sides(graph, two_way)
    left_nodes = [node for node, side in two_way.items() if side == 0]
    right_nodes = [node for node, side in two_way.items() if side == 1]
    left_graph = graph.subgraph(left_nodes)
    right_graph = graph.subgraph(right_nodes)
    _recursive_bisect(left_graph, left_k, offset, options, assignment, depth + 1)
    _recursive_bisect(right_graph, right_k, offset + left_k, options, assignment, depth + 1)


def _ensure_both_sides(graph: Graph, assignment: Dict[NodeId, int]) -> Dict[NodeId, int]:
    """Guarantee neither side of a bisection is empty (move one vertex if needed)."""
    sides = set(assignment.values())
    if sides == {0, 1} or graph.num_nodes < 2:
        return assignment
    assignment = dict(assignment)
    only = next(iter(sides)) if sides else 0
    other = 1 - only
    mover = next(iter(assignment))
    assignment[mover] = other
    return assignment


def _repair_empty_parts(
    graph: Graph, assignment: Dict[NodeId, int], k: int
) -> Dict[NodeId, int]:
    """Greedy refinement can empty a part on tiny graphs; donate vertices back."""
    counts = [0] * k
    for part in assignment.values():
        counts[part] += 1
    empty = [part for part in range(k) if counts[part] == 0]
    if not empty:
        return assignment
    assignment = dict(assignment)
    for part in empty:
        donor_part = max(range(k), key=lambda p: counts[p])
        donor = next(node for node, p in assignment.items() if p == donor_part)
        assignment[donor] = part
        counts[donor_part] -= 1
        counts[part] += 1
    return assignment


def random_kway(graph: Graph, k: int, seed: Optional[int] = None) -> Dict[NodeId, int]:
    """Balanced random k-way assignment (benchmark baseline)."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    rng = random.Random(seed if seed is not None else 0)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    assignment: Dict[NodeId, int] = {}
    for position, node in enumerate(nodes):
        assignment[node] = position % k
    return assignment


def bfs_kway(graph: Graph, k: int) -> Dict[NodeId, int]:
    """Assign contiguous chunks of a BFS ordering to parts (benchmark baseline)."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    visited: List[NodeId] = []
    seen = set()
    for start in nodes:
        if start in seen:
            continue
        for node in bfs_order(graph, start):
            if node not in seen:
                seen.add(node)
                visited.append(node)
    chunk = max(1, (len(visited) + k - 1) // k)
    assignment: Dict[NodeId, int] = {}
    for position, node in enumerate(visited):
        assignment[node] = min(position // chunk, k - 1)
    return assignment

"""Recursive hierarchical partitioning (communities-within-communities).

This is the step the paper performs before building the G-Tree: the graph is
k-way partitioned, then each part is recursively k-way partitioned again,
for a fixed number of levels or until parts are small enough.  The output is
a :class:`HierarchicalPartition` — a tree of vertex-id groups — which the
G-Tree builder consumes.

The paper's DBLP demonstration uses 5 levels of 5-way partitioning, yielding
5^4 + 1 = 626 communities of roughly 500 authors each (the "+1" being the
root); :func:`recursive_partition` reproduces that parameterisation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import PartitionError
from ..graph.graph import Graph, NodeId
from .kway import KWayOptions, kway_partition
from .metrics import assignment_from_groups, groups


@dataclass
class PartitionTreeNode:
    """One community in the recursive hierarchy.

    ``children`` is empty for leaves; ``members`` always lists every original
    vertex contained in the subtree, so the invariant ``members(parent) ==
    union(members(children))`` holds at every internal node.
    """

    label: str
    level: int
    members: List[NodeId]
    children: List["PartitionTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this community was not partitioned further."""
        return not self.children

    def leaves(self) -> List["PartitionTreeNode"]:
        """Return every leaf community under this node (preorder)."""
        if self.is_leaf:
            return [self]
        result: List[PartitionTreeNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def descendants(self) -> List["PartitionTreeNode"]:
        """Return every node under this one, excluding itself (preorder)."""
        result: List[PartitionTreeNode] = []
        for child in self.children:
            result.append(child)
            result.extend(child.descendants())
        return result

    def __repr__(self) -> str:
        return (
            f"<PartitionTreeNode {self.label!r} level={self.level} "
            f"|members|={len(self.members)} children={len(self.children)}>"
        )


@dataclass
class HierarchicalPartition:
    """The full communities-within-communities decomposition of one graph."""

    root: PartitionTreeNode
    fanout: int
    levels: int

    def all_nodes(self) -> List[PartitionTreeNode]:
        """Return root plus every descendant (preorder)."""
        return [self.root] + self.root.descendants()

    def leaf_communities(self) -> List[PartitionTreeNode]:
        """Return the leaf communities (those holding actual graph vertices)."""
        return self.root.leaves()

    def community_count(self) -> int:
        """Return the number of communities excluding the root.

        For a full ``fanout``-ary tree of ``levels`` levels this is
        ``fanout + fanout^2 + ... + fanout^(levels-1)``; the paper's summary
        statistic "626 communities" counts ``5^4 + 1`` (leaves plus root), see
        :meth:`paper_community_count`.
        """
        return len(self.root.descendants())

    def paper_community_count(self) -> int:
        """Return leaves + 1 (the root), matching the paper's "5^4 + 1" count."""
        return len(self.leaf_communities()) + 1

    def mean_leaf_size(self) -> float:
        """Return the average number of vertices per leaf community."""
        leaves = self.leaf_communities()
        if not leaves:
            return 0.0
        return sum(len(leaf.members) for leaf in leaves) / len(leaves)

    def membership_at_level(self, level: int) -> Dict[NodeId, str]:
        """Map every vertex to the label of its ancestor community at ``level``."""
        membership: Dict[NodeId, str] = {}
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            if node.level == level or node.is_leaf and node.level < level:
                for member in node.members:
                    membership[member] = node.label
            elif node.level < level:
                frontier.extend(node.children)
        return membership


PartitionFn = Callable[[Graph, int], Dict[NodeId, int]]


def recursive_partition(
    graph: Graph,
    fanout: int = 5,
    levels: int = 5,
    min_community_size: Optional[int] = None,
    partition_fn: Optional[PartitionFn] = None,
    options: Optional[KWayOptions] = None,
    label_prefix: str = "s",
) -> HierarchicalPartition:
    """Recursively partition ``graph`` into a communities-within-communities tree.

    Parameters
    ----------
    fanout:
        Number of parts produced at each recursion (the paper uses 5).
    levels:
        Total number of hierarchy levels including the root level.  With
        ``levels = 5`` the recursion partitions 4 times, exactly as in the
        paper ("5 hierarchy levels each with 5 partitions" → 5^4 leaves).
    min_community_size:
        Stop partitioning a community once it has at most this many members
        (defaults to ``2 * fanout`` so every part can be non-empty).
    partition_fn:
        Override the partitioner (signature ``fn(graph, k) -> assignment``);
        defaults to :func:`repro.partition.kway.kway_partition`.
    label_prefix:
        Communities are labelled ``s0``, ``s01``, ``s012`` ... by the path of
        part indices from the root — the same style as the paper's "s034".
    """
    if fanout < 2:
        raise PartitionError(f"fanout must be >= 2, got {fanout}")
    if levels < 1:
        raise PartitionError(f"levels must be >= 1, got {levels}")
    if min_community_size is None:
        min_community_size = 2 * fanout
    if partition_fn is None:
        options = options or KWayOptions()

        def partition_fn(subgraph: Graph, k: int) -> Dict[NodeId, int]:
            return kway_partition(subgraph, k, options)

    root = PartitionTreeNode(
        label=f"{label_prefix}0",
        level=0,
        members=list(graph.nodes()),
    )
    _split(graph, root, fanout, levels - 1, min_community_size, partition_fn, label_prefix)
    return HierarchicalPartition(root=root, fanout=fanout, levels=levels)


def _split(
    graph: Graph,
    node: PartitionTreeNode,
    fanout: int,
    remaining_levels: int,
    min_community_size: int,
    partition_fn: PartitionFn,
    label_prefix: str,
) -> None:
    """Recursively attach children to ``node`` by partitioning its members."""
    if remaining_levels <= 0:
        return
    if len(node.members) <= min_community_size or len(node.members) < fanout:
        return
    subgraph = graph.subgraph(node.members)
    assignment = partition_fn(subgraph, fanout)
    parts = groups(assignment, fanout)
    for index, part in enumerate(parts):
        if not part:
            continue
        child = PartitionTreeNode(
            label=f"{node.label}{index}",
            level=node.level + 1,
            members=list(part),
        )
        node.children.append(child)
        _split(
            graph,
            child,
            fanout,
            remaining_levels - 1,
            min_community_size,
            partition_fn,
            label_prefix,
        )


def flat_partition_from_hierarchy(
    hierarchy: HierarchicalPartition, level: int
) -> Dict[NodeId, int]:
    """Return a flat assignment using the communities present at ``level``."""
    membership = hierarchy.membership_at_level(level)
    labels = sorted(set(membership.values()))
    label_index = {label: index for index, label in enumerate(labels)}
    return {node: label_index[label] for node, label in membership.items()}


def hierarchy_summary(hierarchy: HierarchicalPartition) -> Dict[str, float]:
    """Return headline statistics (used by benchmarks and the CLI)."""
    leaves = hierarchy.leaf_communities()
    sizes = [len(leaf.members) for leaf in leaves] or [0]
    return {
        "levels": hierarchy.levels,
        "fanout": hierarchy.fanout,
        "communities": hierarchy.community_count(),
        "paper_communities": hierarchy.paper_community_count(),
        "leaf_communities": len(leaves),
        "mean_leaf_size": hierarchy.mean_leaf_size(),
        "min_leaf_size": float(min(sizes)),
        "max_leaf_size": float(max(sizes)),
    }

"""Multilevel graph partitioning (METIS substitute) and hierarchy construction.

The paper partitions with METIS (Karypis & Kumar).  METIS itself is a C
library that is not available in this environment, so this package
re-implements the same multilevel k-way scheme in pure Python/NumPy:
heavy-edge-matching coarsening, greedy/spectral initial bisection,
FM boundary refinement, recursive bisection for k-way, and a recursive
hierarchical driver that produces the communities-within-communities tree
the G-Tree is built from.
"""

from .coarsen import CoarseLevel, coarsen, contract, heavy_edge_matching, random_matching
from .hierarchy import (
    HierarchicalPartition,
    PartitionTreeNode,
    flat_partition_from_hierarchy,
    hierarchy_summary,
    recursive_partition,
)
from .initial import best_initial_bisection, greedy_graph_growing, spectral_bisection
from .kway import KWayOptions, bfs_kway, kway_partition, random_kway
from .louvain import compare_partitions, louvain_communities, louvain_partition_fn
from .metrics import (
    assignment_from_groups,
    balance,
    cut_ratio,
    edge_cut,
    edge_cut_count,
    groups,
    modularity,
    part_sizes,
    part_weights,
    validate_assignment,
)
from .multilevel import BisectionOptions, bisection_cut, multilevel_bisection, random_bisection
from .refine import fm_refine_bisection, greedy_kway_refine

__all__ = [
    "BisectionOptions",
    "CoarseLevel",
    "HierarchicalPartition",
    "KWayOptions",
    "PartitionTreeNode",
    "assignment_from_groups",
    "balance",
    "best_initial_bisection",
    "bfs_kway",
    "bisection_cut",
    "coarsen",
    "compare_partitions",
    "contract",
    "cut_ratio",
    "edge_cut",
    "edge_cut_count",
    "flat_partition_from_hierarchy",
    "fm_refine_bisection",
    "greedy_graph_growing",
    "greedy_kway_refine",
    "groups",
    "heavy_edge_matching",
    "hierarchy_summary",
    "kway_partition",
    "louvain_communities",
    "louvain_partition_fn",
    "modularity",
    "multilevel_bisection",
    "part_sizes",
    "part_weights",
    "random_bisection",
    "random_kway",
    "random_matching",
    "recursive_partition",
    "spectral_bisection",
    "validate_assignment",
]

"""Partition quality metrics.

The paper's partitioning requirement (Section III-A) is the classic k-way
objective: equal-sized parts that minimise the number of edges whose
endpoints fall in different parts.  These helpers quantify both halves of
that objective and validate partition vectors.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Sequence

from ..errors import InvalidPartitionError
from ..graph.graph import Graph, NodeId

Assignment = Mapping[NodeId, int]


def validate_assignment(graph: Graph, assignment: Assignment, k: int) -> None:
    """Raise :class:`InvalidPartitionError` unless ``assignment`` is a valid
    k-way partition of ``graph``: every vertex mapped, parts in ``[0, k)``.
    """
    if k < 1:
        raise InvalidPartitionError(f"k must be >= 1, got {k}")
    missing = [node for node in graph.nodes() if node not in assignment]
    if missing:
        raise InvalidPartitionError(
            f"{len(missing)} vertices missing from assignment (e.g. {missing[:5]!r})"
        )
    bad = {node: part for node, part in assignment.items()
           if not isinstance(part, int) or part < 0 or part >= k}
    if bad:
        sample = list(bad.items())[:5]
        raise InvalidPartitionError(f"part ids out of range [0, {k}): {sample!r}")


def edge_cut(graph: Graph, assignment: Assignment) -> float:
    """Return the total weight of edges whose endpoints are in different parts."""
    cut = 0.0
    for u, v, w in graph.edges():
        if assignment[u] != assignment[v]:
            cut += w
    return cut


def edge_cut_count(graph: Graph, assignment: Assignment) -> int:
    """Return the number (not weight) of cut edges."""
    return sum(1 for u, v, _ in graph.edges() if assignment[u] != assignment[v])


def part_sizes(assignment: Assignment, k: int) -> List[int]:
    """Return the number of vertices in each of the ``k`` parts."""
    counts = Counter(assignment.values())
    return [counts.get(part, 0) for part in range(k)]


def part_weights(
    assignment: Assignment, k: int, vertex_weights: Mapping[NodeId, float] | None = None
) -> List[float]:
    """Return the total vertex weight per part (unit weights by default)."""
    weights = [0.0] * k
    for node, part in assignment.items():
        weights[part] += vertex_weights[node] if vertex_weights else 1.0
    return weights


def balance(assignment: Assignment, k: int,
            vertex_weights: Mapping[NodeId, float] | None = None) -> float:
    """Return the load imbalance: max part weight / ideal part weight.

    A perfectly balanced partition scores 1.0; METIS typically guarantees
    about 1.03 for k-way partitions.  An empty assignment scores 0.0.
    """
    weights = part_weights(assignment, k, vertex_weights)
    total = sum(weights)
    if total == 0:
        return 0.0
    ideal = total / k
    return max(weights) / ideal


def groups(assignment: Assignment, k: int) -> List[List[NodeId]]:
    """Return the partition as a list of vertex-id lists, indexed by part."""
    result: List[List[NodeId]] = [[] for _ in range(k)]
    for node, part in assignment.items():
        result[part].append(node)
    return result


def assignment_from_groups(parts: Sequence[Sequence[NodeId]]) -> Dict[NodeId, int]:
    """Inverse of :func:`groups`: map each vertex to its part index."""
    assignment: Dict[NodeId, int] = {}
    for index, part in enumerate(parts):
        for node in part:
            if node in assignment:
                raise InvalidPartitionError(
                    f"vertex {node!r} appears in parts {assignment[node]} and {index}"
                )
            assignment[node] = index
    return assignment


def cut_ratio(graph: Graph, assignment: Assignment) -> float:
    """Return cut weight divided by total edge weight (0 when the graph has no edges)."""
    total = graph.total_edge_weight()
    if total == 0:
        return 0.0
    return edge_cut(graph, assignment) / total


def modularity(graph: Graph, assignment: Assignment) -> float:
    """Return Newman modularity of the partition (weighted).

    Not used by the partitioner objective itself, but a convenient quality
    signal for the community structure the G-Tree exposes to users.
    """
    two_m = 2.0 * graph.total_edge_weight()
    if two_m == 0:
        return 0.0
    degree = {node: graph.weighted_degree(node) for node in graph.nodes()}
    score = 0.0
    for u, v, w in graph.edges():
        if assignment[u] == assignment[v]:
            score += w
    # Every undirected edge contributes twice in the usual formulation.
    score = 2.0 * score / two_m
    expectation = 0.0
    part_degree: Dict[int, float] = {}
    for node, part in assignment.items():
        part_degree[part] = part_degree.get(part, 0.0) + degree[node]
    for total in part_degree.values():
        expectation += (total / two_m) ** 2
    return score - expectation

"""Multilevel bisection: coarsen → initial partition → uncoarsen + refine.

This is the V-cycle at the heart of the METIS substitute.  Higher-level
drivers (:mod:`repro.partition.kway`) call :func:`multilevel_bisection`
recursively to obtain k-way partitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import PartitionError
from ..graph.graph import Graph, NodeId
from .coarsen import CoarseLevel, coarsen
from .initial import best_initial_bisection
from .metrics import edge_cut
from .refine import fm_refine_bisection


@dataclass
class BisectionOptions:
    """Tuning knobs for one multilevel bisection."""

    coarsen_target: int = 120
    matching: str = "heavy_edge"
    initial_attempts: int = 4
    use_spectral: bool = True
    refine_passes: int = 8
    balance_tolerance: float = 1.10
    seed: Optional[int] = None
    refine: bool = True
    coarsen_enabled: bool = True
    target_fraction: float = 0.5


def multilevel_bisection(
    graph: Graph, options: Optional[BisectionOptions] = None
) -> Dict[NodeId, int]:
    """Return a 2-way assignment of ``graph`` minimising edge cut.

    The balance target is ``options.target_fraction`` of total vertex weight
    in part 0 (0.5 by default).  Trivial graphs (fewer than 2 vertices) raise
    :class:`PartitionError` because a bisection is meaningless.
    """
    options = options or BisectionOptions()
    n = graph.num_nodes
    if n < 2:
        raise PartitionError(f"cannot bisect a graph with {n} vertices")
    if n == 2:
        first, second = list(graph.nodes())
        return {first: 0, second: 1}

    if options.coarsen_enabled:
        levels = coarsen(
            graph,
            target_size=options.coarsen_target,
            matching=options.matching,
            seed=options.seed,
        )
    else:
        levels = [coarsen(graph, target_size=graph.num_nodes + 1)[0]]

    coarsest = levels[-1]
    assignment = best_initial_bisection(
        coarsest.graph,
        coarsest.vertex_weights,
        seed=options.seed,
        attempts=options.initial_attempts,
        use_spectral=options.use_spectral,
        target_fraction=options.target_fraction,
    )
    if options.refine:
        assignment = fm_refine_bisection(
            coarsest.graph,
            assignment,
            coarsest.vertex_weights,
            max_passes=options.refine_passes,
            balance_tolerance=options.balance_tolerance,
            target_fraction=options.target_fraction,
        )

    # Uncoarsen: project through each level and refine at that resolution.
    for finer, coarser in zip(reversed(levels[:-1]), reversed(levels[1:])):
        assignment = _project(coarser, finer, assignment)
        if options.refine:
            assignment = fm_refine_bisection(
                finer.graph,
                assignment,
                finer.vertex_weights,
                max_passes=options.refine_passes,
                balance_tolerance=options.balance_tolerance,
                target_fraction=options.target_fraction,
            )
    return assignment


def _project(
    coarser: CoarseLevel, finer: CoarseLevel, assignment: Dict[NodeId, int]
) -> Dict[NodeId, int]:
    """Project a coarse assignment back to the finer level's vertices."""
    projected: Dict[NodeId, int] = {}
    for node in finer.graph.nodes():
        super_vertex = coarser.projection[node]
        projected[node] = assignment[super_vertex]
    return projected


def random_bisection(graph: Graph, seed: Optional[int] = None) -> Dict[NodeId, int]:
    """Return a balanced random 2-way assignment (baseline for benchmarks)."""
    rng = random.Random(seed if seed is not None else 0)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    half = len(nodes) // 2
    assignment = {node: 0 for node in nodes[:half]}
    assignment.update({node: 1 for node in nodes[half:]})
    return assignment


def bisection_cut(graph: Graph, options: Optional[BisectionOptions] = None) -> float:
    """Convenience: run a multilevel bisection and return its edge cut."""
    return edge_cut(graph, multilevel_bisection(graph, options))

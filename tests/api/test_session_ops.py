"""Session-scoped registry ops: dispatch, delegation, batch isolation.

Protocol v2's tentpole claim is that **no session dispatch exists outside
the registry**: creating, stepping, describing and closing sessions — and
running mining ops in a session's context — are all ordinary registry
operations served through ``/v1/query`` (the ``/v1/sessions/...`` URLs
are thin aliases).  These tests drive the surface through the service and
both wire transports, and pin the satellite fix: an expired session
*inside a batch* must surface as a ``SESSION_EXPIRED`` envelope for that
entry alone, on every transport — and identical session.step requests in
one batch must both apply (no cache-key dedup for session state).
"""

import time

import pytest

from repro.api import DEFAULT_REGISTRY, GMineClient, GMineHTTPServer
from repro.errors import (
    InvalidArgumentError,
    NavigationError,
    SessionExpiredError,
    SessionNotFoundError,
)
from repro.service import GMineService

pytestmark = pytest.mark.tier1


class TestSessionOpsViaQuery:
    def test_full_lifecycle_through_the_query_route(self, clients, hot_leaf):
        leaf, _ = hot_leaf
        for client in clients:
            created = client.call(
                "session.create", name="walker", focus=leaf.label
            )
            sid = created["session"]["session_id"]
            assert created["session"]["focus"] == leaf.label
            assert sid in client.call("session.list")["sessions"]

            stepped = client.call(
                "session.step", session_id=sid, action="community_metrics"
            )
            assert stepped["result"]["num_weak_components"] >= 1
            assert stepped["session"]["steps"] == 2  # focus + metrics

            described = client.call("session.describe", session_id=sid)
            assert described["state"]["focus"] == leaf.label

            resumed = client.call("session.resume", session_id=sid)
            assert resumed["session"]["touches"] >= 1

            revived = client.call("session.restore", state=described["state"])
            assert revived["session"]["focus"] == leaf.label
            assert revived["session"]["session_id"] != sid

            closed = client.call("session.close", session_id=sid)
            assert closed == {"closed": sid}
            assert sid not in client.call("session.list")["sessions"]
            client.call("session.close",
                        session_id=revived["session"]["session_id"])

    def test_describe_is_a_read_only_peek(self, clients):
        local = clients[0]
        sid = local.call("session.create", name="peeked")["session"]["session_id"]
        before = local.call("session.describe", session_id=sid)["session"]
        again = local.call("session.describe", session_id=sid)["session"]
        assert before == again  # touches untouched: idempotent read
        assert local.call("session.resume", session_id=sid)["session"][
            "touches"
        ] == before["touches"] + 1

    def test_envelope_dataset_field_reaches_session_create(self, clients):
        local = clients[0]
        response = local.query("session.create", dataset="dblp",
                               args={"name": "routed"})
        assert response.unwrap()["session"]["dataset"] == "dblp"

    def test_schema_validation_comes_from_the_registry(self, clients):
        for client in clients:
            with pytest.raises(InvalidArgumentError, match="ttl"):
                client.call("session.create", ttl="forever")
            with pytest.raises(InvalidArgumentError, match="requires argument"):
                client.call("session.step", action="focus")
            with pytest.raises(InvalidArgumentError, match="unknown argument"):
                client.call("session.resume", session_id="x", extra=1)

    def test_step_errors_stay_structured(self, clients):
        local = clients[0]
        sid = local.call("session.create", name="typo")["session"]["session_id"]
        with pytest.raises(NavigationError, match="unknown session action"):
            local.call("session.step", session_id=sid, action="teleport")
        with pytest.raises(NavigationError, match="missing argument"):
            local.call("session.step", session_id=sid, action="focus")

    def test_unknown_and_expired_sessions_raise_typed_errors(self, clients):
        for client in clients:
            with pytest.raises(SessionNotFoundError):
                client.call("session.resume", session_id="never-issued")
            with pytest.raises(SessionNotFoundError):
                client.call("session.metrics", session_id="never-issued")


class TestSessionMiningVariants:
    def test_focus_is_the_default_scope(self, clients, hot_leaf):
        local = clients[0]
        leaf, members = hot_leaf
        sid = local.call("session.create", name="m", focus=leaf.label)[
            "session"
        ]["session_id"]
        via_session = local.call("session.metrics", session_id=sid)
        direct = local.call("metrics", community=leaf.label)
        assert via_session == direct

    def test_explicit_community_overrides_the_focus(self, clients, sibling_pair):
        local = clients[0]
        community_a, _ = sibling_pair
        sid = local.call("session.create", name="o")["session"]["session_id"]
        via_session = local.call(
            "session.metrics", session_id=sid, community=community_a
        )
        assert via_session == local.call("metrics", community=community_a)

    def test_variant_feeds_the_shared_cache(self, service, hot_leaf):
        leaf, members = hot_leaf
        local = GMineClient.in_process(service)
        sid = local.call("session.create", name="c", focus=leaf.label)[
            "session"
        ]["session_id"]
        args = {"session_id": sid, "sources": members}
        first = local.query("session.rwr", args=args)
        assert first.unwrap() and first.cached is False
        # the delegated kernel ran once, under the dataset op's name
        assert service.compute_counts.get("rwr") == 1
        assert "session.rwr" not in service.compute_counts
        second = local.query("session.rwr", args=args)
        assert second.cached is True  # honest delegated cached flag
        direct = local.query(
            "rwr", args={"sources": members, "community": leaf.label}
        )
        assert direct.cached is True
        assert service.compute_counts.get("rwr") == 1

    def test_variant_touches_the_session_ttl(self, api_dataset):
        dataset, tree = api_dataset
        with GMineService(session_ttl=10.0) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            local = GMineClient.in_process(service)
            sid = local.call("session.create", name="t")["session"]["session_id"]
            local.call("session.metrics", session_id=sid)
            assert service.peek_session(sid).touches == 1


class TestBatchSessionIsolation:
    """Satellite fix: SESSION_EXPIRED propagates through batch isolation."""

    def _expired_session_id(self, service):
        session = service.open_session(name="brief", ttl=0.0)
        time.sleep(0.01)
        return session.session_id

    def test_expired_session_in_batch_carries_its_code(
        self, service, http_server, hot_leaf
    ):
        leaf, members = hot_leaf
        sid = self._expired_session_id(service)
        requests = [
            {"op": "metrics", "args": {"community": leaf.label}},
            {"op": "session.metrics", "args": {"session_id": sid}},
            {"op": "session.rwr", "args": {"session_id": sid,
                                           "sources": members}},
            {"op": "rwr", "args": {"sources": members,
                                   "community": leaf.label}},
        ]
        for client in (
            GMineClient.in_process(service),
            GMineClient.http(http_server.url),
        ):
            replies = client.batch(requests)
            assert [r.ok for r in replies] == [True, False, False, True]
            for failed in replies[1:3]:
                assert failed.error.code == "SESSION_EXPIRED"
                assert failed.error.type == "SessionExpiredError"
                with pytest.raises(SessionExpiredError):
                    failed.unwrap()

    def test_unknown_session_in_batch_is_not_found(self, clients, hot_leaf):
        leaf, _ = hot_leaf
        local = clients[0]
        replies = local.batch([
            {"op": "session.describe", "args": {"session_id": "ghost"}},
            {"op": "metrics", "args": {"community": leaf.label}},
        ])
        assert replies[0].ok is False
        assert replies[0].error.code == "SESSION_NOT_FOUND"
        assert replies[1].ok is True

    def test_identical_session_steps_in_one_batch_both_apply(
        self, clients, hot_leaf
    ):
        # regression guard for the dedup seam: session ops have no stable
        # request identity, so the batch dedup must never collapse them
        leaf, _ = hot_leaf
        local = clients[0]
        sid = local.call("session.create", name="twice", focus=leaf.label)[
            "session"
        ]["session_id"]
        step = {"op": "session.step",
                "args": {"session_id": sid, "action": "drill_up"}}
        replies = local.batch([step, dict(step)])
        assert all(r.ok for r in replies)
        assert not any(r.cached for r in replies)
        described = local.call("session.describe", session_id=sid)
        assert described["session"]["steps"] == 3  # focus + two drill_ups

    def test_direct_service_batch_shares_the_same_isolation(self, service):
        sid = self._expired_session_id(service)
        results = service.batch([
            {"op": "session.resume", "args": {"session_id": sid}},
            {"op": "session.list", "args": {}},
        ])
        assert results[0].ok is False and results[0].code == "SESSION_EXPIRED"
        assert results[1].ok is True


class TestLegacySessionRoutesAreAliases:
    def test_query_and_legacy_route_share_validation(self, http_server):
        import json
        import urllib.request

        def post(path, payload):
            request = urllib.request.Request(
                http_server.url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as reply:
                    return reply.status, json.loads(reply.read())
            except urllib.error.HTTPError as error:  # noqa: PERF203
                return error.code, json.loads(error.read())

        legacy_status, legacy = post("/v1/sessions", {"ttl": "forever"})
        query_status, query = post(
            "/v1/query",
            {"op": "session.create", "args": {"ttl": "forever"}},
        )
        assert legacy_status == query_status == 400
        assert legacy["error"] == query["error"]

    def test_registry_row_exists_for_every_session_route(self):
        # the alias table in the router can only name registry ops
        for name in (
            "session.create", "session.restore", "session.resume",
            "session.describe", "session.step", "session.close",
            "session.list",
        ):
            assert name in DEFAULT_REGISTRY

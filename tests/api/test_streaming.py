"""Streaming result cursors: parity, resumability, and hot-reload safety.

The satellite acceptance for Protocol v2 streaming:

* a hypothesis sweep proving cursor pages reassemble **byte-identically**
  to the one-shot payload for arbitrary chunk sizes and page specs;
* the same guarantee across the in-process, threaded-HTTP and
  asyncio-HTTP transports on all three execution backends (the store is
  served with ``graph_path`` so the process pool genuinely ships plans);
* mid-stream hot-reload behaviour: chunks already flowing on a connection
  stay consistent (they slice one precomputed payload), while *resuming*
  a cursor after a content-changing reload fails with the structured
  ``CURSOR_EXPIRED`` envelope — and keeps working after a no-op reload.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    DEFAULT_REGISTRY,
    GMineAsyncHTTPServer,
    GMineClient,
    GMineHTTPServer,
    dumps,
)
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import (
    InvalidArgumentError,
    ProtocolError,
    StaleCursorError,
)
from repro.graph.io import write_json
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1

#: Execution backends the streaming parity bar covers.
STREAM_BACKENDS = ("inline", "thread:2", "process:2")


@pytest.fixture(scope="module")
def stream_dataset(tmp_path_factory):
    """A store+graph persisted so every backend (incl. process) can serve it."""
    workdir = tmp_path_factory.mktemp("streaming")
    dataset = generate_dblp(DBLPConfig(num_authors=350, seed=41))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=41)
    store_path = workdir / "stream.gtree"
    graph_path = workdir / "stream.json"
    save_gtree(tree, store_path)
    write_json(dataset.graph, graph_path)
    leaf = max(tree.leaves(), key=lambda node: node.size)
    return {
        "dataset": dataset,
        "tree": tree,
        "store_path": store_path,
        "graph_path": graph_path,
        "leaf": leaf,
        "members": list(leaf.members[:2]),
    }


def _open_service(stream_dataset, backend="inline"):
    service = GMineService(max_workers=4, backend=backend)
    service.register_store(
        stream_dataset["store_path"],
        name="dblp",
        graph_path=stream_dataset["graph_path"],
    )
    return service


@pytest.fixture
def stream_service(stream_dataset):
    with _open_service(stream_dataset) as service:
        yield service


@pytest.fixture
def stream_client(stream_service):
    return GMineClient.in_process(stream_service)


class TestStreamSemantics:
    def test_chunks_partition_the_field_with_cursors(
        self, stream_client, stream_dataset
    ):
        args = {"sources": stream_dataset["members"]}
        chunks = list(stream_client.stream("rwr", args=args, chunk_size=10))
        assert all(chunk.ok for chunk in chunks)
        total = chunks[0].page["total"]
        assert total == stream_dataset["dataset"].graph.num_nodes
        assert sum(chunk.page["count"] for chunk in chunks) == total
        offsets = [chunk.page["offset"] for chunk in chunks]
        assert offsets == list(range(0, total, 10))
        assert all(chunk.cursor for chunk in chunks)
        assert all(chunk.next_cursor for chunk in chunks[:-1])
        assert chunks[-1].next_cursor is None

    def test_resume_from_any_next_cursor(self, stream_client, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        stream_client.query("rwr", args=args).unwrap()  # warm: stable cached flag
        chunks = list(stream_client.stream("rwr", args=args, chunk_size=9))
        for index in (0, len(chunks) // 2, len(chunks) - 2):
            resumed = list(
                stream_client.stream(
                    "rwr", args=args, cursor=chunks[index].next_cursor
                )
            )
            assert [r.to_dict() for r in resumed] == [
                c.to_dict() for c in chunks[index + 1 :]
            ]

    def test_request_page_caps_the_streamed_vector(
        self, stream_client, stream_dataset
    ):
        args = {"sources": stream_dataset["members"]}
        chunks = list(
            stream_client.stream("rwr", args=args, page={"top_k": 10}, chunk_size=4)
        )
        assert [chunk.page["count"] for chunk in chunks] == [4, 4, 2]
        merged = stream_client.stream_result(
            "rwr", args=args, page={"top_k": 10}, chunk_size=4
        )
        one_shot = stream_client.query("rwr", args=args, page={"top_k": 10}).unwrap()
        assert dumps(merged) == dumps(one_shot)

    def test_cursor_must_match_the_request(self, stream_client, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        first = next(iter(stream_client.stream("rwr", args=args, chunk_size=5)))
        other_args = {"sources": stream_dataset["members"][:1]}
        with pytest.raises(ProtocolError, match="does not belong"):
            list(
                stream_client.stream(
                    "rwr", args=other_args, cursor=first.next_cursor
                )
            )[0].unwrap()

    def test_malformed_cursor_is_structured(self, stream_client, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        [response] = list(
            stream_client.stream("rwr", args=args, cursor="garbage-token")
        )
        assert response.ok is False
        assert response.error.code == "PROTOCOL_ERROR"

    def test_non_streamable_op_is_rejected(self, stream_client):
        [response] = list(stream_client.stream("metrics"))
        assert response.ok is False
        assert response.error.code == "PROTOCOL_ERROR"
        assert "streamable operations" in response.error.message

    def test_session_variants_stream_like_their_twin(self, stream_client):
        # session mining variants inherit their dataset twin's StreamSpec;
        # the cursor fingerprint resolves through the live session focus
        info = stream_client.call("session.create", name="streamer")["session"]
        sid = info["session_id"]
        args = {"session_id": sid, "sources": [0, 1]}
        chunks = list(
            stream_client.stream("session.rwr", args=args, chunk_size=50)
        )
        assert all(chunk.ok for chunk in chunks)
        total = chunks[0].page["total"]
        assert sum(chunk.page["count"] for chunk in chunks) == total
        stream_client.call("session.close", session_id=sid)

    def test_session_stream_unknown_session_is_structured(self, stream_client):
        [response] = list(
            stream_client.stream(
                "session.rwr", args={"session_id": "x", "sources": [1]}
            )
        )
        assert response.ok is False
        assert response.error.code == "SESSION_NOT_FOUND"

    def test_failed_dispatch_streams_one_error_envelope(self, stream_client):
        [response] = list(stream_client.stream("rwr", args={"sources": []}))
        assert response.ok is False
        assert response.error.code == "INVALID_ARGUMENT"

    def test_empty_window_resume_at_end(self, stream_client, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        chunks = list(stream_client.stream("rwr", args=args, chunk_size=10_000))
        assert len(chunks) == 1 and chunks[0].next_cursor is None


class TestStreamingHypothesis:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(chunk_size=st.integers(min_value=1, max_value=600))
    def test_reassembly_is_byte_identical_for_any_chunk_size(
        self, stream_client, stream_dataset, chunk_size
    ):
        args = {"sources": stream_dataset["members"]}
        merged = stream_client.stream_result(
            "rwr", args=args, chunk_size=chunk_size
        )
        total = len(merged["scores"])
        one_shot = stream_client.query(
            "rwr", args=args, page={"top_k": total}
        ).unwrap()
        assert dumps(merged) == dumps(one_shot)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        chunk_size=st.integers(min_value=1, max_value=120),
        top_k=st.integers(min_value=1, max_value=80),
    )
    def test_reassembly_honours_page_caps(
        self, stream_client, stream_dataset, chunk_size, top_k
    ):
        args = {"sources": stream_dataset["members"]}
        merged = stream_client.stream_result(
            "rwr", args=args, page={"top_k": top_k}, chunk_size=chunk_size
        )
        one_shot = stream_client.query(
            "rwr", args=args, page={"top_k": top_k}
        ).unwrap()
        assert dumps(merged) == dumps(one_shot)
        assert len(merged["scores"]) == min(
            top_k, merged["num_scores"]
        )


class TestStreamingTransportBackendMatrix:
    @pytest.mark.parametrize("backend", STREAM_BACKENDS)
    def test_three_transports_stream_identical_bytes(
        self, stream_dataset, backend
    ):
        args = {"sources": stream_dataset["members"]}
        with _open_service(stream_dataset, backend=backend) as service:
            with GMineHTTPServer(service, port=0) as threaded, \
                    GMineAsyncHTTPServer(service, port=0) as aio:
                clients = (
                    GMineClient.in_process(service),
                    GMineClient.http(threaded.url),
                    GMineClient.http(aio.url),
                )
                clients[0].query("rwr", args=args).unwrap()  # warm
                per_transport = [
                    client.stream_raw("rwr", args=args, chunk_size=37)
                    for client in clients
                ]
                assert per_transport[0] == per_transport[1] == per_transport[2]
                assert len(per_transport[0]) > 1
                # resuming over a *different* transport continues seamlessly
                first = next(iter(clients[0].stream("rwr", args=args,
                                                    chunk_size=37)))
                resumed = list(clients[2].stream("rwr", args=args,
                                                 cursor=first.next_cursor))
                tail = [json.loads(raw.decode("utf-8"))
                        for raw in per_transport[0][1:]]
                assert [r.to_dict() for r in resumed] == tail

    def test_backends_stream_identical_bytes(self, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        per_backend = {}
        for backend in STREAM_BACKENDS:
            with _open_service(stream_dataset, backend=backend) as service:
                client = GMineClient.in_process(service)
                per_backend[backend] = client.stream_raw(
                    "rwr", args=args, chunk_size=41
                )
        reference = per_backend[STREAM_BACKENDS[0]]
        for backend, observed in per_backend.items():
            assert observed == reference, f"{backend} diverged"


def _rebuild_store(stream_dataset, seed):
    """Atomically replace the store file with a tree built under ``seed``."""
    rebuilt = build_gtree(
        stream_dataset["dataset"].graph, fanout=3, levels=3, seed=seed
    )
    tmp = stream_dataset["store_path"].with_suffix(".tmp")
    save_gtree(rebuilt, tmp)
    os.replace(tmp, stream_dataset["store_path"])


class TestMidStreamHotReload:
    def test_open_connection_stays_consistent_across_reload(self, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        with _open_service(stream_dataset) as service:
            with GMineHTTPServer(service, port=0) as server:
                client = GMineClient.http(server.url)
                client.query("rwr", args=args).unwrap()  # warm: stable flags
                reference = client.stream_raw("rwr", args=args, chunk_size=23)
                iterator = client.stream("rwr", args=args, chunk_size=23)
                received = [next(iterator)]
                try:
                    # a no-op reload mid-stream (same file content)
                    client.reload_dataset("dblp")
                    received.extend(iterator)
                finally:
                    iterator.close()
                assert [dumps(r.to_dict()) for r in received] == reference

    def test_resume_after_noop_reload_succeeds(self, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        with _open_service(stream_dataset) as service:
            client = GMineClient.in_process(service)
            client.query("rwr", args=args).unwrap()  # warm: stable cached flag
            chunks = list(client.stream("rwr", args=args, chunk_size=29))
            report = client.reload_dataset("dblp")
            assert report["changed"] is False
            resumed = list(
                client.stream("rwr", args=args, cursor=chunks[0].next_cursor)
            )
            assert [r.to_dict() for r in resumed] == [
                c.to_dict() for c in chunks[1:]
            ]

    def test_resume_after_content_reload_is_cursor_expired(self, stream_dataset):
        args = {"sources": stream_dataset["members"]}
        with _open_service(stream_dataset) as service:
            with GMineHTTPServer(service, port=0) as server:
                client = GMineClient.http(server.url)
                first = next(iter(client.stream("rwr", args=args, chunk_size=17)))
                assert first.ok and first.next_cursor
                try:
                    _rebuild_store(stream_dataset, seed=99)
                    report = client.reload_dataset("dblp")
                    assert report["changed"] is True
                    [stale] = list(
                        client.stream("rwr", args=args, cursor=first.next_cursor)
                    )
                    assert stale.ok is False
                    assert stale.error.code == "CURSOR_EXPIRED"
                    with pytest.raises(StaleCursorError):
                        stale.unwrap()
                    # a fresh stream over the reloaded content works
                    merged = client.stream_result("rwr", args=args, chunk_size=17)
                    assert merged["num_scores"] == first.result["num_scores"]
                finally:
                    # restore the module-scoped store for later tests
                    _rebuild_store(stream_dataset, seed=41)

    def test_offset_past_the_end_is_invalid_argument(
        self, stream_service, stream_client, stream_dataset
    ):
        # a forged (but well-formed, digest- and fingerprint-matching)
        # token pointing past the vector must fail loudly, not slice air
        from repro.api import Request, ResultCursor, request_digest

        args = {"sources": stream_dataset["members"]}
        request = Request(op="rwr", args=dict(args))
        token = ResultCursor(
            op="rwr",
            fingerprint=stream_service.fingerprint(None),
            request_digest=request_digest(request),
            offset=10**6,
            chunk_size=5,
        ).to_token()
        [response] = list(stream_client.stream("rwr", args=args, cursor=token))
        assert response.ok is False
        assert response.error.code == "INVALID_ARGUMENT"
        with pytest.raises(InvalidArgumentError):
            response.unwrap()

"""The ``query.path`` operation end to end: parity, caching, error spans.

The acceptance bars from the GPath issue:

* byte-identical payloads for the same query across the in-process,
  threaded-HTTP and asyncio-HTTP front-ends **and** across the inline,
  thread and process execution backends (the store is registered with
  ``graph_path`` so process workers genuinely recompile and re-execute);
* community-scoped path queries key their cache entries by partition
  Merkle sub-fingerprints — a one-edge edit to a *different* community
  must not invalidate them;
* a fused ``rwr(...)/top(k)`` query returns exactly the scores of the
  direct ``rwr`` op for the same community and sources;
* parse failures surface as structured 400 ``QUERY_PARSE_ERROR``
  envelopes carrying the source span over every front-end — never a 500
  — including inside ``/v1/batch``, where they stay isolated.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import GMineAsyncHTTPServer, GMineClient, GMineHTTPServer
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import NavigationError, QueryParseError
from repro.graph.io import write_json
from repro.service import BACKEND_NAMES, GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestPathResults:
    def test_nodes_query_lists_the_community(self, clients, hot_leaf):
        leaf, _ = hot_leaf
        for client in clients:
            payload = client.call(
                "query.path",
                path=f"community({leaf.label})/members/nodes",
                page={"limit": leaf.size},
            )
            assert payload["kind"] == "nodes"
            assert payload["count"] == leaf.size
            assert set(payload["items"]) == set(leaf.members)

    def test_fused_top_k_matches_direct_rwr(self, clients, hot_leaf):
        leaf, members = hot_leaf
        sources = ", ".join(str(m) for m in members)
        for client in clients:
            fused = client.call(
                "query.path",
                path=(
                    f"community({leaf.label})/members/"
                    f"rwr(sources=[{sources}])/top(5)"
                ),
            )
            direct = client.call(
                "rwr", sources=members, community=leaf.label,
                page={"top_k": 5},
            )
            assert fused["kind"] == "scores"
            assert fused["items"] == direct["scores"]
            assert fused["rwr"]["iterations"] == direct["iterations"]
            assert fused["rwr"]["converged"] == direct["converged"]

    def test_metrics_terminal_matches_direct_metrics(self, clients, hot_leaf):
        leaf, _ = hot_leaf
        for client in clients:
            path = client.call("query.path", path=f"community({leaf.label})/metrics")
            direct = client.call("metrics", community=leaf.label)
            assert path["kind"] == "metrics"
            assert path["metrics"] == direct

    def test_tree_level_query_folds_to_labels(self, clients, api_dataset):
        _, tree = api_dataset
        expected = sorted(node.label for node in tree.leaves())
        for client in clients:
            payload = client.call(
                "query.path", path="leaves/nodes",
                page={"limit": len(expected)},
            )
            assert payload["items"] == expected

    def test_canonical_spellings_share_one_cache_entry(self, service, hot_leaf):
        leaf, members = hot_leaf
        client = GMineClient.in_process(service)
        spellings = [
            f"community({leaf.label})/members/"
            f"rwr(sources=[{members[0]}, {members[1]}])/top(5)",
            f" community( {leaf.label} ) / members / "
            f"rwr(sources=[{members[1]}, {members[0]}, {members[0]}]) / top(5) ",
        ]
        first = client.query("query.path", args={"path": spellings[0]})
        second = client.query("query.path", args={"path": spellings[1]})
        assert first.ok and second.ok
        assert second.cached is True
        assert service.compute_counts.get("query.path") == 1


class TestTransportAndBackendParity:
    def test_byte_identical_across_transports(
        self, all_clients, hot_leaf
    ):
        local, remote, aio = all_clients
        leaf, members = hot_leaf
        args = {
            "path": f"community({leaf.label})/members/hops(1)/"
                    f"rwr(sources=[{members[0]}])/top(10)"
        }
        local.query("query.path", args=args).unwrap()  # warm
        raws = {
            client.query_raw("query.path", args=args)
            for client in (local, remote, aio)
        }
        assert len(raws) == 1

    @pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
    def test_byte_identical_across_backends(self, tmp_path, backend):
        dataset = generate_dblp(DBLPConfig(num_authors=250, seed=47))
        tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=47)
        store_path = tmp_path / "path.gtree"
        graph_path = tmp_path / "path.json"
        save_gtree(tree, store_path)
        write_json(dataset.graph, graph_path)
        leaf = max(tree.leaves(), key=lambda node: node.size)
        members = list(leaf.members[:2])
        sources = ", ".join(str(m) for m in members)
        args = {
            "path": f"community({leaf.label})/members/"
                    f"rwr(sources=[{sources}])/top(8)"
        }

        payloads = set()
        for spec in (backend, f"{backend}:2"):
            with GMineService(backend=spec) as service:
                service.register_store(
                    store_path, name="dblp", graph_path=graph_path
                )
                client = GMineClient.in_process(service)
                payloads.add(
                    json.dumps(
                        client.call("query.path", **args), sort_keys=True
                    )
                )
        assert len(payloads) == 1, f"{backend}: payloads disagree"

    _reference = {}

    @pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
    def test_backends_agree_with_each_other(self, tmp_path_factory, backend):
        # cross-parametrization memo: every backend must produce the bytes
        # the first one did
        workdir = tmp_path_factory.mktemp("path-backend")
        dataset = generate_dblp(DBLPConfig(num_authors=250, seed=47))
        tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=47)
        store_path = workdir / "path.gtree"
        graph_path = workdir / "path.json"
        save_gtree(tree, store_path)
        write_json(dataset.graph, graph_path)
        leaf = max(tree.leaves(), key=lambda node: node.size)
        args = {
            "path": f"community({leaf.label})/members/hops(2)/"
                    f"edges[weight >= 1]/count"
        }
        with GMineService(backend=backend) as service:
            service.register_store(store_path, name="dblp", graph_path=graph_path)
            payload = GMineClient.in_process(service).call(
                "query.path", **args
            )
        encoded = json.dumps(payload, sort_keys=True)
        self._reference.setdefault("bytes", encoded)
        assert encoded == self._reference["bytes"], backend


class TestPartitionScopedCaching:
    def test_edit_elsewhere_keeps_path_cache_entries(self, api_dataset):
        dataset, _ = api_dataset
        # a fresh mutable registration: apply_dataset clones internally
        tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=31)
        with GMineService() as service:
            service.register_tree(tree, graph=dataset.graph, name="mut")
            client = GMineClient.in_process(service)
            leaves = sorted(
                tree.leaves(), key=lambda node: node.size, reverse=True
            )
            scoped_leaf, other_leaf = leaves[0], leaves[-1]
            assert scoped_leaf.label != other_leaf.label
            members = list(scoped_leaf.members[:2])
            sources = ", ".join(str(m) for m in members)
            args = {
                "path": f"community({scoped_leaf.label})/members/"
                        f"rwr(sources=[{sources}])/top(5)"
            }
            warm = client.query("query.path", args=args)
            assert warm.ok and service.compute_counts.get("query.path") == 1

            # one edge inside a *different* leaf: its sub-fingerprint (and
            # the root) change, the scoped community's does not
            touched = set(other_leaf.members)
            u, v, w = next(
                (u, v, w) for u, v, w in dataset.graph.edges()
                if u in touched and v in touched
            )
            report = service.apply_dataset(
                "mut", [{"action": "add_edge", "u": u, "v": v,
                         "weight": w + 1.0}]
            )
            assert report["changed"] is True

            again = client.query("query.path", args=args)
            assert again.ok
            assert again.cached is True
            assert service.compute_counts.get("query.path") == 1

    def test_edit_inside_the_scope_invalidates(self, api_dataset):
        dataset, _ = api_dataset
        tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=31)
        with GMineService() as service:
            service.register_tree(tree, graph=dataset.graph, name="mut")
            client = GMineClient.in_process(service)
            leaf = max(tree.leaves(), key=lambda node: node.size)
            members = list(leaf.members[:2])
            args = {
                "path": f"community({leaf.label})/members/"
                        f"rwr(sources=[{members[0]}, {members[1]}])/top(5)"
            }
            client.query("query.path", args=args).unwrap()
            inside = set(leaf.members)
            u, v, w = next(
                (u, v, w) for u, v, w in dataset.graph.edges()
                if u in inside and v in inside
            )
            service.apply_dataset(
                "mut", [{"action": "add_edge", "u": u, "v": v,
                         "weight": w + 1.0}]
            )
            fresh = client.query("query.path", args=args)
            assert fresh.ok
            assert fresh.cached is False


class TestStructuredParseErrors:
    BAD = "community(/members"

    def test_parse_error_is_400_with_span_over_http(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "query.path", "args": {"path": self.BAD}},
        )
        assert status == 400
        assert payload["ok"] is False
        assert payload["error"]["code"] == "QUERY_PARSE_ERROR"
        assert payload["error"]["details"]["source"] == self.BAD
        assert payload["error"]["details"]["span"] == [10, 11]

    def test_parse_error_is_400_with_span_over_aio(self, aio_server):
        status, payload = _post(
            aio_server.url + "/v1/query",
            {"op": "query.path", "args": {"path": self.BAD}},
        )
        assert status == 400
        assert payload["error"]["code"] == "QUERY_PARSE_ERROR"
        assert payload["error"]["details"]["span"] == [10, 11]

    def test_unknown_axis_is_never_a_500(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "query.path",
             "args": {"path": "community(s0)/teleport/nodes"}},
        )
        assert status == 400
        assert payload["error"]["code"] == "QUERY_PARSE_ERROR"
        assert "unknown step" in payload["error"]["message"]
        start, end = payload["error"]["details"]["span"]
        assert "community(s0)/teleport/nodes"[start:end] == "teleport"

    def test_unknown_community_is_404_navigation_error(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "query.path",
             "args": {"path": "community(never-built)/members/count"}},
        )
        assert status == 404
        assert payload["error"]["code"] == "NAVIGATION_ERROR"

    def test_batch_isolates_parse_failures(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        good = {"op": "query.path",
                "args": {"path": f"community({leaf.label})/members/count"}}
        bad = {"op": "query.path", "args": {"path": self.BAD}}
        status, payload = _post(
            http_server.url + "/v1/batch", {"requests": [good, bad, good]}
        )
        assert status == 200
        oks = [entry["ok"] for entry in payload["responses"]]
        assert oks == [True, False, True]
        failure = payload["responses"][1]["error"]
        assert failure["code"] == "QUERY_PARSE_ERROR"
        assert failure["details"]["span"] == [10, 11]

    def test_in_process_client_raises_typed_parse_error(self, clients):
        for client in clients:
            with pytest.raises(QueryParseError):
                client.call("query.path", path=self.BAD)
            with pytest.raises(NavigationError):
                client.call("query.path", path="community(nope)/members")

    def test_parse_errors_are_byte_identical_across_transports(
        self, all_clients
    ):
        raws = {
            client.query_raw("query.path", args={"path": self.BAD})
            for client in all_clients
        }
        assert len(raws) == 1


class TestPathStreaming:
    def test_nodes_stream_reassembles(self, clients, hot_leaf):
        leaf, _ = hot_leaf
        for client in clients:
            args = {"path": f"community({leaf.label})/members/nodes"}
            merged = client.stream_result("query.path", args=args, chunk_size=4)
            one_shot = client.query(
                "query.path", args=args, page={"limit": leaf.size}
            ).unwrap()
            assert merged == one_shot

    def test_scores_stream_reassembles(self, clients, hot_leaf):
        leaf, members = hot_leaf
        sources = ", ".join(str(m) for m in members)
        for client in clients:
            args = {
                "path": f"community({leaf.label})/members/"
                        f"rwr(sources=[{sources}])"
            }
            merged = client.stream_result("query.path", args=args, chunk_size=3)
            one_shot = client.query(
                "query.path", args=args, page={"limit": leaf.size}
            ).unwrap()
            assert merged == one_shot

"""Shared fixtures for the GMine Protocol v2 test suite.

One small DBLP dataset and G-Tree are built once per session; each test
gets a fresh service over them.  ``http_server`` / ``aio_server`` bind
port 0 so parallel test runs never collide; the paired ``clients``
fixture hands back an in-process and a threaded-HTTP client, and
``all_clients`` adds the asyncio front-end — all over the *same* service,
the precondition for byte-identical parity checks.
"""

from __future__ import annotations

import pytest

from repro.api import GMineAsyncHTTPServer, GMineClient, GMineHTTPServer
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.service import GMineService


@pytest.fixture(scope="session")
def api_dataset():
    """A small DBLP dataset + G-Tree shared by the protocol tests."""
    dataset = generate_dblp(DBLPConfig(num_authors=400, seed=31))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=31)
    return dataset, tree


@pytest.fixture
def service(api_dataset):
    """A fresh service sharing the session dataset (full graph attached)."""
    dataset, tree = api_dataset
    with GMineService(max_workers=4) as svc:
        svc.register_tree(tree, graph=dataset.graph, name="dblp")
        yield svc


@pytest.fixture
def http_server(service):
    """The threaded HTTP front-end on an ephemeral port."""
    with GMineHTTPServer(service, port=0) as server:
        yield server


@pytest.fixture
def aio_server(service):
    """The asyncio front-end over the same service, ephemeral port."""
    with GMineAsyncHTTPServer(service, port=0) as server:
        yield server


@pytest.fixture
def clients(service, http_server):
    """(in-process client, HTTP client) over one shared service."""
    return (
        GMineClient.in_process(service),
        GMineClient.http(http_server.url),
    )


@pytest.fixture
def all_clients(service, http_server, aio_server):
    """(in-process, threaded-HTTP, asyncio-HTTP) clients, one service."""
    return (
        GMineClient.in_process(service),
        GMineClient.http(http_server.url),
        GMineClient.http(aio_server.url),
    )


@pytest.fixture
def hot_leaf(api_dataset):
    """The largest leaf community and two of its members."""
    _, tree = api_dataset
    leaf = max(tree.leaves(), key=lambda node: node.size)
    return leaf, list(leaf.members[:2])


@pytest.fixture
def sibling_pair(api_dataset):
    """Two sibling communities under the root (for inspect_edge)."""
    _, tree = api_dataset
    children = [tree.node(child) for child in tree.root.children[:2]]
    return children[0].label, children[1].label

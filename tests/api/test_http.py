"""HTTP front-end tests: a real server in a background thread.

Covers the full route surface — query, batch, ops, stats, and the session
lifecycle — plus the structured error statuses the satellite fix demands:
an unknown session id is a 404 ``SESSION_NOT_FOUND`` envelope and an
expired one is a 410 ``SESSION_EXPIRED`` envelope, never a raw traceback.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import GMineClient, GMineHTTPServer
from repro.errors import (
    InvalidArgumentError,
    NavigationError,
    SessionExpiredError,
    SessionNotFoundError,
    UnknownOperationError,
)
from repro.service import GMineService

pytestmark = pytest.mark.tier1


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestQueryRoute:
    def test_query_round_trip(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        status, payload = _post(
            http_server.url + "/v1/query",
            {"protocol": "gmine/1", "op": "metrics",
             "args": {"community": leaf.label}},
        )
        assert status == 200
        assert payload["ok"] is True
        assert payload["protocol"] == "gmine/1"
        assert payload["result"]["num_weak_components"] >= 1

    def test_query_error_carries_structured_code(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "metrics", "args": {"community": "no-such-community"}},
        )
        assert status == 404
        assert payload["ok"] is False
        assert payload["error"]["code"] == "NAVIGATION_ERROR"
        assert "no-such-community" in payload["error"]["message"]

    def test_unknown_operation_is_404(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query", {"op": "teleport", "args": {}}
        )
        assert status == 404
        assert payload["error"]["code"] == "UNKNOWN_OPERATION"

    def test_invalid_argument_is_400(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "rwr", "args": {"sources": [1], "budget": 9}},
        )
        assert status == 400
        assert payload["error"]["code"] == "INVALID_ARGUMENT"

    def test_non_json_body_is_400_protocol_error(self, http_server):
        request = urllib.request.Request(
            http_server.url + "/v1/query",
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["error"]["code"] == "PROTOCOL_ERROR"

    def test_unknown_route_is_404(self, http_server):
        status, payload = _post(http_server.url + "/v1/nothing", {})
        assert status == 404
        assert payload["error"]["code"] == "PROTOCOL_ERROR"

    def test_pagination_is_honoured(self, http_server, hot_leaf):
        leaf, members = hot_leaf
        status, payload = _post(
            http_server.url + "/v1/query",
            {"op": "rwr", "args": {"sources": members, "community": leaf.label},
             "page": {"top_k": 3}},
        )
        assert status == 200
        assert len(payload["result"]["scores"]) == 3
        assert payload["page"]["total"] == payload["result"]["num_scores"]


class TestBatchRoute:
    def test_batch_isolates_failures(self, http_server, hot_leaf):
        leaf, members = hot_leaf
        status, payload = _post(
            http_server.url + "/v1/batch",
            {"requests": [
                {"op": "metrics", "args": {"community": leaf.label}},
                {"op": "metrics", "args": {"community": "missing"}},
                {"op": "rwr", "args": {"sources": members,
                                       "community": leaf.label}},
            ]},
        )
        assert status == 200
        oks = [entry["ok"] for entry in payload["responses"]]
        assert oks == [True, False, True]
        assert payload["responses"][1]["error"]["code"] == "NAVIGATION_ERROR"

    def test_batch_requires_requests_list(self, http_server):
        status, payload = _post(http_server.url + "/v1/batch", {"ops": []})
        assert status == 400
        assert payload["error"]["code"] == "PROTOCOL_ERROR"

    def test_batch_dedups_through_shared_cache(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        request = {"op": "metrics", "args": {"community": leaf.label}}
        _post(http_server.url + "/v1/batch", {"requests": [request, request]})
        _, stats = _get(http_server.url + "/v1/stats")
        assert stats["stats"]["computed"].get("metrics") == 1

    def test_batch_isolates_malformed_envelopes(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        status, payload = _post(
            http_server.url + "/v1/batch",
            {"requests": [
                {"op": "metrics", "args": {"community": leaf.label}},
                {"args": {}},  # no op at all
                {"op": "metrics", "args": {"community": leaf.label}},
            ]},
        )
        assert status == 200
        oks = [entry["ok"] for entry in payload["responses"]]
        assert oks == [True, False, True]
        assert payload["responses"][1]["error"]["code"] == "PROTOCOL_ERROR"


class TestDiscoveryRoutes:
    def test_ops_table_over_http(self, http_server):
        status, payload = _get(http_server.url + "/v1/ops")
        assert status == 200
        names = [op["name"] for op in payload["ops"]]
        assert names[:6] == [
            "metrics", "rwr", "connection_subgraph", "query.path",
            "connectivity", "inspect_edge",
        ]
        # every session op is a first-class registry row with its scope
        session_rows = [op for op in payload["ops"] if op["name"].startswith("session.")]
        assert {op["name"] for op in session_rows} == {
            "session.create", "session.restore", "session.resume",
            "session.describe", "session.step", "session.close", "session.list",
            "session.metrics", "session.rwr", "session.connection_subgraph",
        }
        assert all(op["scope"] == "session" for op in session_rows)
        assert all("args" in op for op in payload["ops"])

    def test_stats_over_http(self, http_server):
        status, payload = _get(http_server.url + "/v1/stats")
        assert status == 200
        assert set(payload["stats"]) >= {"cache", "computed", "sessions", "datasets"}


class TestSessionRoutes:
    def test_session_lifecycle_over_http(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        client = GMineClient.http(http_server.url)
        info = client.create_session(name="walker", focus=leaf.label)
        assert info["focus"] == leaf.label
        assert info["session_id"] in client.sessions()

        step = client.session_step(info["session_id"], "community_metrics")
        assert step["result"]["num_weak_components"] >= 1
        assert step["session"]["steps"] == 2  # focus + metrics

        state = client.session_state(info["session_id"])
        assert state["focus"] == leaf.label

        client.close_session(info["session_id"])
        assert info["session_id"] not in client.sessions()

    def test_unknown_session_is_404_with_code(self, http_server):
        status, payload = _post(
            http_server.url + "/v1/sessions/ghost-9999/resume", None
        )
        assert status == 404
        assert payload["error"]["code"] == "SESSION_NOT_FOUND"
        assert payload["error"]["type"] == "SessionNotFoundError"

    def test_expired_session_is_410_with_code(self, api_dataset):
        # a dedicated service with an instantly-expiring TTL
        dataset, tree = api_dataset
        with GMineService(session_ttl=0.0) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            with GMineHTTPServer(service, port=0) as server:
                client = GMineClient.http(server.url)
                info = client.create_session(name="brief")
                import time

                time.sleep(0.01)
                status, payload = _post(
                    server.url + f"/v1/sessions/{info['session_id']}/resume", None
                )
                assert status == 410
                assert payload["error"]["code"] == "SESSION_EXPIRED"
                with pytest.raises(SessionExpiredError):
                    client.resume_session(info["session_id"])

    def test_session_restore_over_http(self, http_server, hot_leaf):
        leaf, _ = hot_leaf
        client = GMineClient.http(http_server.url)
        info = client.create_session(name="saved", focus=leaf.label)
        state = client.session_state(info["session_id"])
        client.close_session(info["session_id"])

        revived = client.restore_session(state)
        assert revived["focus"] == leaf.label
        assert revived["session_id"] != info["session_id"]

    def test_bad_step_action_is_structured_error(self, http_server):
        client = GMineClient.http(http_server.url)
        info = client.create_session(name="stepper")
        with pytest.raises(NavigationError, match="unknown session action"):
            client.session_step(info["session_id"], "teleport")
        with pytest.raises(NavigationError, match="missing argument"):
            client.session_step(info["session_id"], "focus")

    def test_non_taxonomy_exception_still_returns_an_envelope(self, clients):
        # regression: a ValueError inside a session route used to escape the
        # router — the HTTP server dropped the connection and the in-process
        # client saw a raw traceback; both must get a structured envelope
        for client in clients:
            info = client.create_session(name="typo")
            with pytest.raises(InvalidArgumentError):
                client.session_step(
                    info["session_id"], "drill_down", child_index="abc"
                )
            client.close_session(info["session_id"])


class TestClientTypedErrors:
    def test_client_raises_taxonomy_exceptions(self, clients):
        for client in clients:
            with pytest.raises(UnknownOperationError):
                client.call("teleport")
            with pytest.raises(InvalidArgumentError):
                client.call("rwr", sources=[1], bogus=2)
            with pytest.raises(SessionNotFoundError):
                client.resume_session("never-issued")

"""Wire-envelope tests: versioning, JSON round-trips, the error taxonomy."""

import json

import pytest

from repro.api import (
    PROTOCOL,
    Request,
    Response,
    WireError,
    error_code_for,
    exception_for_code,
    http_status_for,
)
from repro.api.router import dumps
from repro.errors import (
    ConvergenceError,
    GMineError,
    InvalidArgumentError,
    NavigationError,
    ProtocolError,
    ServiceError,
    SessionExpiredError,
    SessionNotFoundError,
    UnknownOperationError,
)

pytestmark = pytest.mark.tier1


class TestRequestEnvelope:
    def test_round_trip(self):
        request = Request(op="rwr", args={"sources": [1, 2]}, dataset="dblp",
                          page={"top_k": 5}, id="r-1")
        clone = Request.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_protocol_version_is_stamped(self):
        assert Request(op="metrics").to_dict()["protocol"] == PROTOCOL == "gmine/1"

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(ProtocolError, match="gmine/1"):
            Request.from_dict({"protocol": "gmine/2", "op": "metrics"})

    def test_missing_operation_rejected(self):
        with pytest.raises(ProtocolError, match="no operation"):
            Request.from_dict({"args": {}})

    def test_legacy_operation_key_accepted(self):
        assert Request.from_dict({"operation": "metrics"}).op == "metrics"

    def test_malformed_args_rejected(self):
        with pytest.raises(ProtocolError, match="args"):
            Request.from_dict({"op": "rwr", "args": [1, 2]})


class TestResponseEnvelope:
    def test_success_round_trip(self):
        response = Response(ok=True, op="metrics", result={"diameter": 3},
                            cached=True, page={"top_k": 5}, id="r-9")
        clone = Response.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone == response
        assert clone.unwrap() == {"diameter": 3}

    def test_failure_round_trip_preserves_code(self):
        response = Response.failure(SessionExpiredError("gone"), op="metrics")
        clone = Response.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone.error.code == "SESSION_EXPIRED"
        assert clone.error.type == "SessionExpiredError"
        with pytest.raises(SessionExpiredError):
            clone.unwrap()

    def test_success_payload_never_carries_error_block(self):
        payload = Response(ok=True, op="x", result=1).to_dict()
        assert "error" not in payload
        failure = Response.failure(ServiceError("boom")).to_dict()
        assert "result" not in failure

    def test_http_status_derived_from_code(self):
        assert Response(ok=True).status == 200
        assert Response.failure(SessionNotFoundError("x")).status == 404
        assert Response.failure(SessionExpiredError("x")).status == 410
        assert Response.failure(InvalidArgumentError("x")).status == 400
        assert Response.failure(ServiceError("x")).status == 500


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "error, code",
        [
            (SessionNotFoundError("x"), "SESSION_NOT_FOUND"),
            (SessionExpiredError("x"), "SESSION_EXPIRED"),
            (UnknownOperationError("x"), "UNKNOWN_OPERATION"),
            (InvalidArgumentError("x"), "INVALID_ARGUMENT"),
            (NavigationError("x"), "NAVIGATION_ERROR"),
            (ConvergenceError("x"), "NOT_CONVERGED"),
            (ServiceError("x"), "SERVICE_ERROR"),
            (TypeError("x"), "INVALID_ARGUMENT"),
            (KeyError("x"), "INVALID_ARGUMENT"),
            (RuntimeError("x"), "INTERNAL"),
        ],
    )
    def test_exception_maps_to_stable_code(self, error, code):
        assert error_code_for(error) == code

    def test_codes_invert_to_typed_exceptions(self):
        for code, expected in [
            ("SESSION_NOT_FOUND", SessionNotFoundError),
            ("SESSION_EXPIRED", SessionExpiredError),
            ("UNKNOWN_OPERATION", UnknownOperationError),
            ("INVALID_ARGUMENT", InvalidArgumentError),
            ("NAVIGATION_ERROR", NavigationError),
        ]:
            error = exception_for_code(code, "msg")
            assert isinstance(error, expected)
            assert isinstance(error, GMineError)

    def test_unknown_code_falls_back_to_service_error(self):
        assert isinstance(exception_for_code("NO_SUCH_CODE", "m"), ServiceError)

    def test_every_code_has_an_http_status(self):
        from repro.api.wire import ERROR_CODES

        for _, code in ERROR_CODES:
            assert 400 <= http_status_for(code) <= 599

    def test_wire_error_raises_itself(self):
        with pytest.raises(SessionExpiredError, match="ttl ran out"):
            WireError(code="SESSION_EXPIRED", message="ttl ran out").raise_()


class TestCanonicalSerialisation:
    def test_dumps_is_key_order_insensitive(self):
        assert dumps({"b": 1, "a": [1, 2]}) == dumps({"a": [1, 2], "b": 1})

    def test_dumps_is_compact_utf8(self):
        raw = dumps({"k": "v"})
        assert raw == b'{"k":"v"}'

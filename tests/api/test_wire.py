"""Wire-envelope tests: versioning, JSON round-trips, the error taxonomy."""

import json

import pytest

from repro.api import (
    PROTOCOL,
    Request,
    Response,
    ResultCursor,
    WireError,
    error_code_for,
    exception_for_code,
    http_status_for,
    request_digest,
)
from repro.api.router import dumps
from repro.errors import (
    AuthRequiredError,
    ConvergenceError,
    GMineError,
    InvalidArgumentError,
    NavigationError,
    ProtocolError,
    RateLimitedError,
    ServiceError,
    SessionExpiredError,
    SessionNotFoundError,
    StaleCursorError,
    UnknownOperationError,
)

pytestmark = pytest.mark.tier1


class TestRequestEnvelope:
    def test_round_trip(self):
        request = Request(op="rwr", args={"sources": [1, 2]}, dataset="dblp",
                          page={"top_k": 5}, id="r-1")
        clone = Request.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_protocol_version_is_stamped(self):
        assert Request(op="metrics").to_dict()["protocol"] == PROTOCOL == "gmine/1"

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(ProtocolError, match="gmine/1"):
            Request.from_dict({"protocol": "gmine/2", "op": "metrics"})

    def test_missing_operation_rejected(self):
        with pytest.raises(ProtocolError, match="no operation"):
            Request.from_dict({"args": {}})

    def test_legacy_operation_key_accepted(self):
        assert Request.from_dict({"operation": "metrics"}).op == "metrics"

    def test_malformed_args_rejected(self):
        with pytest.raises(ProtocolError, match="args"):
            Request.from_dict({"op": "rwr", "args": [1, 2]})


class TestResponseEnvelope:
    def test_success_round_trip(self):
        response = Response(ok=True, op="metrics", result={"diameter": 3},
                            cached=True, page={"top_k": 5}, id="r-9")
        clone = Response.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone == response
        assert clone.unwrap() == {"diameter": 3}

    def test_failure_round_trip_preserves_code(self):
        response = Response.failure(SessionExpiredError("gone"), op="metrics")
        clone = Response.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone.error.code == "SESSION_EXPIRED"
        assert clone.error.type == "SessionExpiredError"
        with pytest.raises(SessionExpiredError):
            clone.unwrap()

    def test_success_payload_never_carries_error_block(self):
        payload = Response(ok=True, op="x", result=1).to_dict()
        assert "error" not in payload
        failure = Response.failure(ServiceError("boom")).to_dict()
        assert "result" not in failure

    def test_http_status_derived_from_code(self):
        assert Response(ok=True).status == 200
        assert Response.failure(SessionNotFoundError("x")).status == 404
        assert Response.failure(SessionExpiredError("x")).status == 410
        assert Response.failure(InvalidArgumentError("x")).status == 400
        assert Response.failure(ServiceError("x")).status == 500


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "error, code",
        [
            (SessionNotFoundError("x"), "SESSION_NOT_FOUND"),
            (SessionExpiredError("x"), "SESSION_EXPIRED"),
            (UnknownOperationError("x"), "UNKNOWN_OPERATION"),
            (InvalidArgumentError("x"), "INVALID_ARGUMENT"),
            (NavigationError("x"), "NAVIGATION_ERROR"),
            (ConvergenceError("x"), "NOT_CONVERGED"),
            (ServiceError("x"), "SERVICE_ERROR"),
            (StaleCursorError("x"), "CURSOR_EXPIRED"),
            (AuthRequiredError("x"), "AUTH_REQUIRED"),
            (RateLimitedError("x"), "RATE_LIMITED"),
            (TypeError("x"), "INVALID_ARGUMENT"),
            (KeyError("x"), "INVALID_ARGUMENT"),
            (RuntimeError("x"), "INTERNAL"),
        ],
    )
    def test_exception_maps_to_stable_code(self, error, code):
        assert error_code_for(error) == code

    def test_new_codes_carry_the_documented_statuses(self):
        assert http_status_for("CURSOR_EXPIRED") == 410
        assert http_status_for("AUTH_REQUIRED") == 401
        assert http_status_for("RATE_LIMITED") == 429

    def test_codes_invert_to_typed_exceptions(self):
        for code, expected in [
            ("SESSION_NOT_FOUND", SessionNotFoundError),
            ("SESSION_EXPIRED", SessionExpiredError),
            ("UNKNOWN_OPERATION", UnknownOperationError),
            ("INVALID_ARGUMENT", InvalidArgumentError),
            ("NAVIGATION_ERROR", NavigationError),
        ]:
            error = exception_for_code(code, "msg")
            assert isinstance(error, expected)
            assert isinstance(error, GMineError)

    def test_unknown_code_falls_back_to_service_error(self):
        assert isinstance(exception_for_code("NO_SUCH_CODE", "m"), ServiceError)

    def test_every_code_has_an_http_status(self):
        from repro.api.wire import ERROR_CODES

        for _, code in ERROR_CODES:
            assert 400 <= http_status_for(code) <= 599

    def test_wire_error_raises_itself(self):
        with pytest.raises(SessionExpiredError, match="ttl ran out"):
            WireError(code="SESSION_EXPIRED", message="ttl ran out").raise_()


class TestResultCursor:
    def _cursor(self, offset=0):
        return ResultCursor(
            op="rwr", fingerprint="fp" * 20, request_digest="d1" * 8,
            offset=offset, chunk_size=50,
        )

    def test_token_round_trip(self):
        cursor = self._cursor(offset=150)
        assert ResultCursor.from_token(cursor.to_token()) == cursor

    def test_advanced_moves_only_the_offset(self):
        cursor = self._cursor()
        moved = cursor.advanced(99)
        assert moved.offset == 99
        assert (moved.op, moved.fingerprint, moved.request_digest,
                moved.chunk_size) == (cursor.op, cursor.fingerprint,
                                      cursor.request_digest, cursor.chunk_size)

    def test_malformed_tokens_raise_protocol_error(self):
        for bad in ("", "not-base64!", "YWJj"):  # last one: valid b64, not JSON
            with pytest.raises(ProtocolError, match="malformed stream cursor"):
                ResultCursor.from_token(bad)

    def test_request_digest_pins_the_whole_request(self):
        base = Request(op="rwr", args={"sources": [1]}, dataset="dblp")
        assert request_digest(base) == request_digest(
            Request(op="rwr", args={"sources": [1]}, dataset="dblp")
        )
        for other in (
            Request(op="rwr", args={"sources": [2]}, dataset="dblp"),
            Request(op="rwr", args={"sources": [1]}, dataset="other"),
            Request(op="rwr", args={"sources": [1]}, dataset="dblp",
                    page={"top_k": 3}),
            Request(op="metrics", args={"sources": [1]}, dataset="dblp"),
        ):
            assert request_digest(other) != request_digest(base)

    def test_stream_fields_round_trip_on_envelopes(self):
        request = Request(op="rwr", args={}, chunk_size=25, cursor="tok")
        clone = Request.from_dict(json.loads(dumps(request.to_dict())))
        assert clone.chunk_size == 25 and clone.cursor == "tok"
        response = Response(ok=True, op="rwr", result={"scores": []},
                            cursor="here", next_cursor=None)
        payload = response.to_dict()
        assert payload["cursor"] == "here" and payload["next_cursor"] is None
        clone = Response.from_dict(payload)
        assert clone.cursor == "here" and clone.next_cursor is None

    def test_one_shot_envelopes_stay_v1_byte_compatible(self):
        # no cursor keys unless the response actually streamed
        payload = Response(ok=True, op="rwr", result={}).to_dict()
        assert "cursor" not in payload and "next_cursor" not in payload

    def test_bad_stream_fields_rejected(self):
        with pytest.raises(ProtocolError, match="chunk_size"):
            Request.from_dict({"op": "rwr", "chunk_size": 0})
        with pytest.raises(ProtocolError, match="chunk_size"):
            Request.from_dict({"op": "rwr", "chunk_size": True})
        with pytest.raises(ProtocolError, match="cursor"):
            Request.from_dict({"op": "rwr", "cursor": 7})


class TestCanonicalSerialisation:
    def test_dumps_is_key_order_insensitive(self):
        assert dumps({"b": 1, "a": [1, 2]}) == dumps({"a": [1, 2], "b": 1})

    def test_dumps_is_compact_utf8(self):
        raw = dumps({"k": "v"})
        assert raw == b'{"k":"v"}'

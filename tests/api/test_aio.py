"""Asyncio front-end and transport guard rails (auth + rate limiting).

The asyncio server owns no protocol logic — it must be indistinguishable
from the threaded server on the wire.  These tests drive the same service
through both front-ends and assert byte parity for successes, failures,
sessions and streams, then pin the :class:`FrontendPolicy` satellites:
``AUTH_REQUIRED`` (401) for a missing/wrong bearer token and
``RATE_LIMITED`` (429) beyond the token bucket, identically on both
front-ends, with a deterministic injected clock.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import (
    FrontendPolicy,
    GMineAsyncHTTPServer,
    GMineClient,
    GMineHTTPServer,
    TokenBucket,
)
from repro.errors import AuthRequiredError, RateLimitedError

pytestmark = pytest.mark.tier1

SERVER_CLASSES = (GMineHTTPServer, GMineAsyncHTTPServer)


class TestAioFrontend:
    def test_lifecycle_and_reuse(self, service):
        server = GMineAsyncHTTPServer(service, port=0)
        with server:
            url = server.url
            assert GMineClient.http(url).ops()
        # stopped: a fresh start binds a new port and serves again
        with server:
            assert GMineClient.http(server.url).ops()

    def test_keep_alive_serves_sequential_requests(self, aio_server, hot_leaf):
        leaf, _ = hot_leaf
        # urllib opens a fresh connection per call; exercise an explicit
        # keep-alive exchange over one socket instead
        import http.client

        host, port = aio_server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                body = json.dumps(
                    {"op": "metrics", "args": {"community": leaf.label}}
                )
                connection.request(
                    "POST", "/v1/query", body=body,
                    headers={"Content-Type": "application/json"},
                )
                reply = connection.getresponse()
                payload = json.loads(reply.read())
                assert reply.status == 200 and payload["ok"] is True
        finally:
            connection.close()

    def test_malformed_http_gets_a_protocol_envelope(self, aio_server):
        import socket

        host, port = aio_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            sock.settimeout(10)
            data = sock.recv(65536)
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        assert json.loads(body)["error"]["code"] == "PROTOCOL_ERROR"

    def test_oversized_request_line_gets_a_400_envelope(self, aio_server):
        # regression: a request line past the StreamReader limit used to
        # kill the connection task with an unhandled ValueError
        import socket

        host, port = aio_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /" + b"x" * 70_000 + b" HTTP/1.1\r\n\r\n")
            sock.settimeout(10)
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            while True:
                try:
                    chunk = sock.recv(65536)
                except TimeoutError:  # pragma: no cover - defensive
                    break
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        assert json.loads(body)["error"]["code"] == "PROTOCOL_ERROR"

    def test_unknown_route_and_errors_match_threaded_bytes(self, all_clients):
        local, remote, aio = all_clients
        for method, path in (("GET", "/v1/nothing"), ("POST", "/v2/query")):
            payloads = []
            for client in (remote, aio):
                status, payload, raw = client.transport.call(method, path, None)
                payloads.append((status, raw))
            assert payloads[0] == payloads[1]


def _policy_servers(service, **policy_kwargs):
    """One (threaded, asyncio) pair sharing policy settings."""
    return [
        cls(service, port=0, policy=FrontendPolicy(**policy_kwargs))
        for cls in SERVER_CLASSES
    ]


class TestAuthToken:
    def test_missing_and_wrong_tokens_are_401(self, service):
        for server in _policy_servers(service, auth_token="secret-7"):
            with server:
                naked = GMineClient.http(server.url)
                with pytest.raises(AuthRequiredError):
                    naked.ops()
                wrong = GMineClient.http(server.url, auth_token="guess")
                with pytest.raises(AuthRequiredError):
                    wrong.ops()

    def test_right_token_passes_everywhere(self, service, hot_leaf):
        leaf, _ = hot_leaf
        for server in _policy_servers(service, auth_token="secret-7"):
            with server:
                client = GMineClient.http(server.url, auth_token="secret-7")
                assert client.ops()
                assert client.call("metrics", community=leaf.label)
                merged = client.stream_result(
                    "connectivity", chunk_size=2
                )
                assert "edges" in merged

    def test_401_envelope_bytes_match_across_front_ends(self, service):
        raws = []
        for server in _policy_servers(service, auth_token="secret-7"):
            with server:
                request = urllib.request.Request(
                    server.url + "/v1/ops", method="GET"
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
                assert excinfo.value.code == 401
                raws.append(excinfo.value.read())
        assert raws[0] == raws[1]
        payload = json.loads(raws[0])
        assert payload["error"]["code"] == "AUTH_REQUIRED"

    def test_rejected_post_does_not_corrupt_keep_alive_framing(
        self, service, hot_leaf
    ):
        # regression: replying 401 before draining the POST body used to
        # leave the body in the socket, garbling the next request on a
        # keep-alive connection — on both front-ends the follow-up
        # authenticated request must succeed on the same connection
        import http.client

        leaf, _ = hot_leaf
        body = json.dumps({"op": "metrics", "args": {"community": leaf.label}})
        for server in _policy_servers(service, auth_token="secret-7"):
            with server:
                host, port = server.address
                connection = http.client.HTTPConnection(host, port, timeout=10)
                try:
                    connection.request(
                        "POST", "/v1/query", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    reply = connection.getresponse()
                    rejected = json.loads(reply.read())
                    assert reply.status == 401
                    assert rejected["error"]["code"] == "AUTH_REQUIRED"
                    connection.request(
                        "POST", "/v1/query", body=body,
                        headers={
                            "Content-Type": "application/json",
                            "Authorization": "Bearer secret-7",
                        },
                    )
                    reply = connection.getresponse()
                    payload = json.loads(reply.read())
                    assert reply.status == 200 and payload["ok"] is True
                finally:
                    connection.close()

    def test_auth_guards_the_stream_route_too(self, service):
        for server in _policy_servers(service, auth_token="secret-7"):
            with server:
                naked = GMineClient.http(server.url)
                [response] = list(naked.stream("connectivity"))
                assert response.ok is False
                assert response.error.code == "AUTH_REQUIRED"


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestRateLimit:
    def test_token_bucket_semantics(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # burst (= rate) exhausted
        clock.advance(0.5)  # refills one token at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(10.0)  # refill clamps at capacity
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_429_beyond_the_bucket_on_both_front_ends(self, service):
        for cls in SERVER_CLASSES:
            clock = ManualClock()
            policy = FrontendPolicy(rate_limit=2.0, clock=clock)
            with cls(service, port=0, policy=policy) as server:
                client = GMineClient.http(server.url)
                assert client.ops() and client.ops()
                with pytest.raises(RateLimitedError):
                    client.ops()
                clock.advance(1.0)  # two tokens back
                assert client.ops()

    def test_rate_limited_envelope_carries_the_code(self, service):
        clock = ManualClock()
        policy = FrontendPolicy(rate_limit=1.0, clock=clock)
        with GMineAsyncHTTPServer(service, port=0, policy=policy) as server:
            client = GMineClient.http(server.url)
            client.ops()
            status, payload, _ = client.transport.call("GET", "/v1/ops", None)
            assert status == 429
            assert payload["error"]["code"] == "RATE_LIMITED"
            assert payload["error"]["type"] == "RateLimitedError"

    def test_auth_is_checked_before_rate(self, service):
        clock = ManualClock()
        policy = FrontendPolicy(
            auth_token="secret", rate_limit=1.0, clock=clock
        )
        with GMineHTTPServer(service, port=0, policy=policy) as server:
            naked = GMineClient.http(server.url)
            with pytest.raises(AuthRequiredError):
                naked.ops()
            # the rejected request did not drain the bucket
            authed = GMineClient.http(server.url, auth_token="secret")
            assert authed.ops()

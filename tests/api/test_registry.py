"""Registry tests: schema validation, canonicalization, cache-key derivation.

The property tests (hypothesis, derandomized) pin the invariants the shared
cache depends on: canonicalization is idempotent and total over valid
inputs, kwarg ordering never matters, and cache keys derive from OpSpec
field order — including the regression for the old ad-hoc canonicalization
whose keys leaned on dict-ordering assumptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ArgSpec, OpSpec, OperationRegistry, build_default_registry
from repro.api.ops import DEFAULT_REGISTRY
from repro.errors import InvalidArgumentError, UnknownOperationError

pytestmark = pytest.mark.tier1


class TestRegistryBasics:
    def test_default_registry_declares_every_service_operation(self):
        # the acceptance criterion: everything service.call can reach,
        # dataset scope and session scope alike — no dispatch outside it
        assert set(DEFAULT_REGISTRY.names()) == {
            "metrics", "rwr", "connection_subgraph", "connectivity", "inspect_edge",
            "query.path",
            "session.create", "session.restore", "session.resume",
            "session.describe", "session.step", "session.close", "session.list",
            "session.metrics", "session.rwr", "session.connection_subgraph",
            "dataset.apply", "dataset.subscribe", "dataset.ingest",
        }

    def test_every_spec_is_fully_bound(self):
        for spec in DEFAULT_REGISTRY:
            assert spec.handler is not None, spec.name
            assert spec.doc
            assert spec.cost in ("cheap", "expensive")
            if spec.scope == "dataset":
                assert spec.encoder is not None, spec.name
            elif spec.scope == "service":
                # registry write path / change feeds: JSON-safe payloads,
                # never cacheable (they mutate or observe mutable state)
                assert spec.name.startswith("dataset."), spec.name
                assert not spec.cacheable, spec.name
            else:
                # session ops: lifecycle payloads are already JSON-safe
                # (no encoder); mining variants reuse their twin's encoder
                assert spec.name.startswith("session.")
                assert not spec.cacheable, spec.name

    def test_session_variants_mirror_their_dataset_twin(self):
        for name in ("metrics", "rwr", "connection_subgraph"):
            twin = DEFAULT_REGISTRY.get(name)
            variant = DEFAULT_REGISTRY.get(f"session.{name}")
            assert variant.scope == "session"
            assert variant.cost == twin.cost
            assert variant.encoder is twin.encoder
            assert variant.arg_names == ("session_id",) + twin.arg_names

    def test_scope_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="scope"):
            OpSpec(name="x", scope="galaxy")

    def test_unknown_operation_raises_taxonomy_error(self):
        with pytest.raises(UnknownOperationError):
            DEFAULT_REGISTRY.get("teleport")

    def test_duplicate_registration_rejected(self):
        registry = OperationRegistry([OpSpec(name="x")])
        with pytest.raises(ValueError):
            registry.register(OpSpec(name="x"))

    def test_describe_table_shape(self):
        table = DEFAULT_REGISTRY.describe()
        assert [row["name"] for row in table] == list(DEFAULT_REGISTRY.names())
        rwr = next(row for row in table if row["name"] == "rwr")
        by_name = {arg["name"]: arg for arg in rwr["args"]}
        assert by_name["sources"]["required"] is True
        assert by_name["solver"]["choices"] == ["power", "exact"]
        assert by_name["restart_probability"]["default"] == 0.15


class TestValidation:
    def test_unknown_argument_rejected(self):
        spec = DEFAULT_REGISTRY.get("rwr")
        with pytest.raises(InvalidArgumentError, match="unknown argument"):
            spec.canonicalize({"sources": [1], "budget": 3})

    def test_missing_required_argument_rejected(self):
        with pytest.raises(InvalidArgumentError, match="requires argument"):
            DEFAULT_REGISTRY.get("rwr").canonicalize({})

    def test_type_violation_rejected(self):
        with pytest.raises(InvalidArgumentError, match="sources"):
            DEFAULT_REGISTRY.get("rwr").canonicalize({"sources": "author-1"})

    def test_domain_validator_rejected(self):
        with pytest.raises(InvalidArgumentError, match="restart_probability"):
            DEFAULT_REGISTRY.get("rwr").canonicalize(
                {"sources": [1], "restart_probability": 1.5}
            )

    def test_choices_enforced(self):
        with pytest.raises(InvalidArgumentError, match="solver"):
            DEFAULT_REGISTRY.get("rwr").canonicalize(
                {"sources": [1], "solver": "magic"}
            )

    def test_empty_sources_rejected(self):
        with pytest.raises(InvalidArgumentError, match="at least one source"):
            DEFAULT_REGISTRY.get("rwr").canonicalize({"sources": []})

    def test_bool_does_not_slip_into_int_slot(self):
        with pytest.raises(InvalidArgumentError, match="budget"):
            DEFAULT_REGISTRY.get("connection_subgraph").canonicalize(
                {"sources": [1], "budget": True}
            )

    def test_explicit_none_rejected_for_non_nullable_knobs(self):
        # regression: None used to bypass type checks for every optional
        # argument and crash later in a normalizer or deep in a handler
        with pytest.raises(InvalidArgumentError, match="restart_probability"):
            DEFAULT_REGISTRY.get("rwr").canonicalize(
                {"sources": [1], "restart_probability": None}
            )
        with pytest.raises(InvalidArgumentError, match="budget"):
            DEFAULT_REGISTRY.get("connection_subgraph").canonicalize(
                {"sources": [1], "budget": None}
            )
        with pytest.raises(InvalidArgumentError, match="solver"):
            DEFAULT_REGISTRY.get("rwr").canonicalize(
                {"sources": [1], "solver": None}
            )

    def test_explicit_none_accepted_where_declared_nullable(self):
        spec = DEFAULT_REGISTRY.get("metrics")
        canonical = spec.canonicalize(
            {"community": None, "hop_sample_size": None, "seed": None}
        )
        signature = dict(canonical["metrics"])
        assert canonical["community"] is None
        assert signature["hop_sample_size"] is None
        assert signature["seed"] is None


class TestCanonicalization:
    def test_defaults_filled_in_spec_order(self):
        canonical = DEFAULT_REGISTRY.get("rwr").canonicalize({"sources": [3, 1]})
        assert list(canonical) == [
            "sources", "community", "restart_probability", "solver",
        ]
        assert canonical["sources"] == [1, 3]
        assert canonical["restart_probability"] == 0.15
        assert canonical["solver"] == "power"

    def test_metrics_knobs_collapse_into_signature(self):
        spec = DEFAULT_REGISTRY.get("metrics")
        defaulted = spec.canonicalize({})
        explicit = spec.canonicalize(
            {"pagerank_damping": 0.85, "top_k": 10, "seed": 0}
        )
        assert defaulted == explicit
        assert list(defaulted) == ["community", "metrics"]

    def test_inspect_edge_pair_is_ordered(self):
        spec = DEFAULT_REGISTRY.get("inspect_edge")
        forward = spec.canonicalize({"community_a": "s1", "community_b": "s0"})
        backward = spec.canonicalize({"community_a": "s0", "community_b": "s1"})
        assert forward == backward

    def test_sources_dedup_and_container_insensitive(self):
        spec = DEFAULT_REGISTRY.get("rwr")
        as_list = spec.canonicalize({"sources": [2, 1, 2]})
        as_tuple = spec.canonicalize({"sources": (1, 2)})
        as_set = spec.canonicalize({"sources": {1, 2}})
        assert as_list == as_tuple == as_set


class TestCacheKeyDerivation:
    """Regression: keys derive from OpSpec field order, not dict ordering."""

    def test_permuted_kwargs_share_one_cache_key(self):
        spec = DEFAULT_REGISTRY.get("connection_subgraph")
        forward = {"sources": [5, 2], "community": "s0", "budget": 10,
                   "restart_probability": 0.2}
        permuted = {"restart_probability": 0.2, "budget": 10,
                    "community": "s0", "sources": [2, 5]}
        key_a = spec.cache_key("fp", spec.canonicalize(forward))
        key_b = spec.cache_key("fp", spec.canonicalize(permuted))
        assert key_a == key_b

    def test_key_shape_is_spec_ordered(self):
        spec = DEFAULT_REGISTRY.get("rwr")
        fingerprint, op, fields = spec.cache_key(
            "fp", spec.canonicalize({"sources": [1]})
        )
        assert (fingerprint, op) == ("fp", "rwr")
        assert [name for name, _ in fields] == [
            "sources", "community", "restart_probability", "solver",
        ]

    def test_distinct_args_get_distinct_keys(self):
        spec = DEFAULT_REGISTRY.get("rwr")
        base = spec.cache_key("fp", spec.canonicalize({"sources": [1]}))
        other = spec.cache_key("fp", spec.canonicalize({"sources": [2]}))
        solver = spec.cache_key(
            "fp", spec.canonicalize({"sources": [1], "solver": "exact"})
        )
        assert len({base, other, solver}) == 3

    def test_permuted_kwargs_hit_the_same_cache_entry(self, service, hot_leaf):
        # end to end: the service cache observes exactly one computation
        leaf, members = hot_leaf
        first = service.call(
            "rwr", sources=list(members), community=leaf.label,
            restart_probability=0.15, solver="power",
        )
        second = service.call(
            "rwr", solver="power", restart_probability=0.15,
            community=leaf.label, sources=list(reversed(members)),
        )
        assert second is first
        assert service.compute_counts.get("rwr") == 1


@st.composite
def rwr_args(draw):
    sources = draw(st.lists(st.integers(0, 99), min_size=1, max_size=6))
    args = {"sources": sources}
    if draw(st.booleans()):
        args["community"] = draw(st.sampled_from(["s0", "s00", "s000", None]))
    if draw(st.booleans()):
        args["restart_probability"] = draw(
            st.floats(min_value=0.01, max_value=0.99,
                      allow_nan=False, allow_infinity=False)
        )
    if draw(st.booleans()):
        args["solver"] = draw(st.sampled_from(["power", "exact"]))
    return args


class TestCanonicalizationProperties:
    @settings(max_examples=60, derandomize=True, deadline=None)
    @given(args=rwr_args())
    def test_canonicalize_is_idempotent(self, args):
        spec = DEFAULT_REGISTRY.get("rwr")
        once = spec.canonicalize(args)
        twice = spec.canonicalize(once)
        assert once == twice
        assert spec.cache_key("fp", once) == spec.cache_key("fp", twice)

    @settings(max_examples=60, derandomize=True, deadline=None)
    @given(args=rwr_args(), seed=st.integers(0, 2**16))
    def test_kwarg_order_never_changes_the_key(self, args, seed):
        import random

        spec = DEFAULT_REGISTRY.get("rwr")
        items = list(args.items())
        random.Random(seed).shuffle(items)
        shuffled = dict(items)
        key_a = spec.cache_key("fp", spec.canonicalize(args))
        key_b = spec.cache_key("fp", spec.canonicalize(shuffled))
        assert key_a == key_b

    @settings(max_examples=60, derandomize=True, deadline=None)
    @given(args=rwr_args())
    def test_source_order_and_duplication_never_change_the_key(self, args):
        spec = DEFAULT_REGISTRY.get("rwr")
        doubled = dict(args)
        doubled["sources"] = list(reversed(args["sources"])) + args["sources"]
        key_a = spec.cache_key("fp", spec.canonicalize(args))
        key_b = spec.cache_key("fp", spec.canonicalize(doubled))
        assert key_a == key_b


class TestRegistryConstruction:
    def test_fresh_registries_are_independent(self):
        first = build_default_registry()
        second = build_default_registry()
        first.register(OpSpec(name="extra"))
        assert "extra" in first
        assert "extra" not in second

    def test_invalid_cost_class_rejected(self):
        with pytest.raises(ValueError):
            OpSpec(name="bad", cost="free")

    def test_duplicate_arg_names_rejected(self):
        with pytest.raises(ValueError):
            OpSpec(name="bad", args=(ArgSpec("x"), ArgSpec("x")))

"""The acceptance criterion: byte-identical payloads across transports.

For **every** operation in the registry, the in-process client and the
HTTP client must return exactly the same canonical bytes for the same
request.  The cache is warmed first so both transports observe the same
service state (the ``cached`` flag is part of the payload, honestly).
Failures must be byte-identical too — a structured error envelope is part
of the protocol, not an accident of the transport.
"""

import json

import pytest

from repro.api import DEFAULT_REGISTRY, Request

pytestmark = pytest.mark.tier1


def _request_for(op, hot_leaf, sibling_pair):
    """A representative valid request for each registered operation."""
    leaf, members = hot_leaf
    community_a, community_b = sibling_pair
    table = {
        "metrics": {"community": leaf.label},
        "rwr": {"sources": members, "community": leaf.label},
        "connection_subgraph": {
            "sources": members, "community": leaf.label, "budget": 12,
        },
        "connectivity": {},
        "inspect_edge": {"community_a": community_a, "community_b": community_b},
    }
    return table[op]


class TestTransportParity:
    @pytest.mark.parametrize("op", list(DEFAULT_REGISTRY.names()))
    def test_every_op_is_byte_identical_across_transports(
        self, clients, hot_leaf, sibling_pair, op
    ):
        local, remote = clients
        args = _request_for(op, hot_leaf, sibling_pair)
        local.query(op, args=args).unwrap()  # warm: both transports now hit cache
        raw_local = local.query_raw(op, args=args)
        raw_remote = remote.query_raw(op, args=args)
        assert raw_local == raw_remote, (
            f"{op}: transports disagree\nin-process: {raw_local[:200]!r}\n"
            f"http:       {raw_remote[:200]!r}"
        )
        payload = json.loads(raw_local.decode("utf-8"))
        assert payload["ok"] is True
        assert payload["cached"] is True
        assert payload["protocol"] == "gmine/1"

    @pytest.mark.parametrize("op", list(DEFAULT_REGISTRY.names()))
    def test_parity_with_pagination(self, clients, hot_leaf, sibling_pair, op):
        local, remote = clients
        args = _request_for(op, hot_leaf, sibling_pair)
        page = {"top_k": 3, "offset": 0, "limit": 2}
        local.query(op, args=args, page=page).unwrap()
        assert local.query_raw(op, args=args, page=page) == remote.query_raw(
            op, args=args, page=page
        )

    def test_failure_envelopes_are_byte_identical(self, clients):
        local, remote = clients
        for bad in (
            {"op": "teleport", "args": {}},
            {"op": "metrics", "args": {"community": "missing"}},
            {"op": "rwr", "args": {"sources": []}},
        ):
            request = Request.from_dict(bad)
            raw_local = local.query_raw(request.op, args=request.args)
            raw_remote = remote.query_raw(request.op, args=request.args)
            assert raw_local == raw_remote

    def test_equivalent_spellings_share_payloads_across_transports(
        self, clients, hot_leaf
    ):
        # permuted kwargs + permuted sources + id-vs-label all canonicalize
        # onto one cache entry, so every spelling returns the same bytes
        local, remote = clients
        leaf, members = hot_leaf
        spellings = [
            {"sources": members, "community": leaf.label},
            {"community": leaf.label, "sources": list(reversed(members))},
        ]
        local.query("rwr", args=spellings[0]).unwrap()  # warm
        raws = {
            client.query_raw("rwr", args=spelling)
            for client in (local, remote)
            for spelling in spellings
        }
        assert len(raws) == 1

    def test_set_sources_survive_both_transports(self, clients, hot_leaf):
        # regression: HTTP request bodies used to stringify sets silently,
        # making the same call succeed in-process but fail over the wire
        local, remote = clients
        leaf, members = hot_leaf
        args_set = {"sources": set(members), "community": leaf.label}
        args_list = {"sources": list(members), "community": leaf.label}
        local.query("rwr", args=args_list).unwrap()  # warm
        raws = {
            client.query_raw("rwr", args=args)
            for client in (local, remote)
            for args in (args_set, args_list)
        }
        assert len(raws) == 1  # every spelling, every transport: same bytes

    def test_batch_parity(self, clients, hot_leaf):
        local, remote = clients
        leaf, members = hot_leaf
        requests = [
            {"op": "metrics", "args": {"community": leaf.label}},
            {"op": "rwr", "args": {"sources": members, "community": leaf.label}},
            {"op": "metrics", "args": {"community": "missing"}},
        ]
        local.batch(requests)  # warm
        replies_local = [r.to_dict() for r in local.batch(requests)]
        replies_remote = [r.to_dict() for r in remote.batch(requests)]
        assert replies_local == replies_remote

    def test_ops_and_stats_parity(self, clients):
        local, remote = clients
        assert local.ops() == remote.ops()
        # stats change between calls (the remote call itself may not touch
        # the cache, but sessions/compute counters must agree in shape)
        assert set(local.stats()) == set(remote.stats())

"""The acceptance criterion: byte-identical payloads across transports.

For **every** dataset-scoped operation in the registry, the in-process
client, the threaded-HTTP client and the asyncio-HTTP client must return
exactly the same canonical bytes for the same request.  The cache is
warmed first so every transport observes the same service state (the
``cached`` flag is part of the payload, honestly).  Failures must be
byte-identical too — a structured error envelope is part of the protocol,
not an accident of the transport.

Protocol v2 extends the bar to the session scope and to streaming:
session-scoped results (idempotent reads, delegated mining variants, and
step sequences modulo the session id) and streamed cursor chunks must be
byte-identical across all three transports, and reassembled streams must
reproduce the one-shot payload exactly.
"""

import json

import pytest

from repro.api import DEFAULT_REGISTRY, Request, dumps

pytestmark = pytest.mark.tier1

DATASET_OPS = [spec.name for spec in DEFAULT_REGISTRY if spec.scope == "dataset"]
SESSION_OPS = [spec.name for spec in DEFAULT_REGISTRY if spec.scope == "session"]
STREAMABLE_OPS = [spec.name for spec in DEFAULT_REGISTRY if spec.stream is not None]


def _request_for(op, hot_leaf, sibling_pair):
    """A representative valid request for each dataset-scoped operation."""
    leaf, members = hot_leaf
    community_a, community_b = sibling_pair
    table = {
        "metrics": {"community": leaf.label},
        "rwr": {"sources": members, "community": leaf.label},
        "connection_subgraph": {
            "sources": members, "community": leaf.label, "budget": 12,
        },
        "connectivity": {},
        "inspect_edge": {"community_a": community_a, "community_b": community_b},
        "query.path": {
            "path": f"community({leaf.label})/members/"
                    f"rwr(sources=[{members[0]}, {members[1]}])/top(5)"
        },
    }
    if op.startswith("session."):
        # Session-context variants take their dataset twin's args (plus a
        # session_id, attached per test via _session_scoped).
        return dict(table[op.split(".", 1)[1]])
    return table[op]


def _session_scoped(client, args, op):
    """Attach a fresh session id for session-context variant requests."""
    if not op.startswith("session."):
        return args
    info = client.call("session.create", name="stream-parity")["session"]
    return {"session_id": info["session_id"], **args}


class TestTransportParity:
    @pytest.mark.parametrize("op", DATASET_OPS)
    def test_every_op_is_byte_identical_across_transports(
        self, all_clients, hot_leaf, sibling_pair, op
    ):
        local, remote, aio = all_clients
        args = _request_for(op, hot_leaf, sibling_pair)
        local.query(op, args=args).unwrap()  # warm: every transport hits cache
        raws = {
            client.query_raw(op, args=args) for client in (local, remote, aio)
        }
        assert len(raws) == 1, f"{op}: transports disagree"
        payload = json.loads(next(iter(raws)).decode("utf-8"))
        assert payload["ok"] is True
        assert payload["cached"] is True
        assert payload["protocol"] == "gmine/1"

    @pytest.mark.parametrize("op", DATASET_OPS)
    def test_parity_with_pagination(self, all_clients, hot_leaf, sibling_pair, op):
        local, remote, aio = all_clients
        args = _request_for(op, hot_leaf, sibling_pair)
        page = {"top_k": 3, "offset": 0, "limit": 2}
        local.query(op, args=args, page=page).unwrap()
        raws = {
            client.query_raw(op, args=args, page=page)
            for client in (local, remote, aio)
        }
        assert len(raws) == 1

    def test_failure_envelopes_are_byte_identical(self, all_clients):
        for bad in (
            {"op": "teleport", "args": {}},
            {"op": "metrics", "args": {"community": "missing"}},
            {"op": "rwr", "args": {"sources": []}},
            {"op": "session.metrics", "args": {"session_id": "never-issued"}},
        ):
            request = Request.from_dict(bad)
            raws = {
                client.query_raw(request.op, args=request.args)
                for client in all_clients
            }
            assert len(raws) == 1

    def test_equivalent_spellings_share_payloads_across_transports(
        self, all_clients, hot_leaf
    ):
        # permuted kwargs + permuted sources + id-vs-label all canonicalize
        # onto one cache entry, so every spelling returns the same bytes
        local = all_clients[0]
        leaf, members = hot_leaf
        spellings = [
            {"sources": members, "community": leaf.label},
            {"community": leaf.label, "sources": list(reversed(members))},
        ]
        local.query("rwr", args=spellings[0]).unwrap()  # warm
        raws = {
            client.query_raw("rwr", args=spelling)
            for client in all_clients
            for spelling in spellings
        }
        assert len(raws) == 1

    def test_set_sources_survive_both_transports(self, all_clients, hot_leaf):
        # regression: HTTP request bodies used to stringify sets silently,
        # making the same call succeed in-process but fail over the wire
        local = all_clients[0]
        leaf, members = hot_leaf
        args_set = {"sources": set(members), "community": leaf.label}
        args_list = {"sources": list(members), "community": leaf.label}
        local.query("rwr", args=args_list).unwrap()  # warm
        raws = {
            client.query_raw("rwr", args=args)
            for client in all_clients
            for args in (args_set, args_list)
        }
        assert len(raws) == 1  # every spelling, every transport: same bytes

    def test_batch_parity(self, all_clients, hot_leaf):
        local = all_clients[0]
        leaf, members = hot_leaf
        requests = [
            {"op": "metrics", "args": {"community": leaf.label}},
            {"op": "rwr", "args": {"sources": members, "community": leaf.label}},
            {"op": "metrics", "args": {"community": "missing"}},
        ]
        local.batch(requests)  # warm
        replies = [
            [r.to_dict() for r in client.batch(requests)] for client in all_clients
        ]
        assert replies[0] == replies[1] == replies[2]

    def test_ops_and_stats_parity(self, all_clients):
        local, remote, aio = all_clients
        assert local.ops() == remote.ops() == aio.ops()
        # stats change between calls (the remote call itself may not touch
        # the cache, but sessions/compute counters must agree in shape)
        assert set(local.stats()) == set(remote.stats()) == set(aio.stats())


class TestSessionScopedParity:
    """Acceptance: session results byte-identical across all transports."""

    def test_registry_lists_every_session_op_with_scope(self, all_clients):
        # `gmine ops --describe` derives from the same describe() table
        for client in all_clients:
            rows = {op["name"]: op for op in client.ops()}
            for name in SESSION_OPS:
                assert rows[name]["scope"] == "session", name

    def test_session_reads_are_byte_identical(self, all_clients, hot_leaf):
        local, remote, aio = all_clients
        leaf, _ = hot_leaf
        info = local.call("session.create", name="parity", focus=leaf.label)
        sid = info["session"]["session_id"]
        for op, args in (
            ("session.describe", {"session_id": sid}),
            ("session.list", {}),
        ):
            raws = {
                client.query_raw(op, args=args) for client in (local, remote, aio)
            }
            assert len(raws) == 1, f"{op}: transports disagree"

    @pytest.mark.parametrize("op", ["session.metrics", "session.rwr"])
    def test_session_mining_is_byte_identical_and_shares_cache(
        self, all_clients, hot_leaf, op
    ):
        local, remote, aio = all_clients
        leaf, members = hot_leaf
        info = local.call("session.create", name="miner", focus=leaf.label)
        sid = info["session"]["session_id"]
        args = {"session_id": sid}
        if op == "session.rwr":
            args["sources"] = members
        local.query(op, args=args).unwrap()  # warm the delegated cache entry
        raws = {client.query_raw(op, args=args) for client in (local, remote, aio)}
        assert len(raws) == 1
        # the variant fed the *shared* cache: the direct dataset op for the
        # focused community is a hit on its first call
        direct_op = op.split(".", 1)[1]
        direct_args = {"community": leaf.label}
        if direct_op == "rwr":
            direct_args["sources"] = members
        assert local.query(direct_op, args=direct_args).cached is True

    def test_step_sequences_agree_modulo_session_id(self, all_clients, hot_leaf):
        # step mutates state, so each transport drives its own fresh
        # session through the same sequence; everything but the session id
        # must match byte for byte
        leaf, _ = hot_leaf
        flattened = []
        for client in all_clients:
            info = client.call("session.create", name="stepper")
            sid = info["session"]["session_id"]
            payloads = [
                client.call(
                    "session.step",
                    session_id=sid,
                    action="focus",
                    args={"label": leaf.label},
                ),
                client.call("session.step", session_id=sid, action="community_metrics"),
                client.call("session.step", session_id=sid, action="drill_up"),
            ]
            for payload in payloads:
                payload["session"].pop("session_id")
            flattened.append(dumps({"steps": payloads}))
            client.call("session.close", session_id=sid)
        assert flattened[0] == flattened[1] == flattened[2]


class TestStreamedParity:
    """Acceptance: streamed results byte-identical across all transports."""

    @pytest.mark.parametrize("op", STREAMABLE_OPS)
    def test_chunks_are_byte_identical_across_transports(
        self, all_clients, hot_leaf, sibling_pair, op
    ):
        local, remote, aio = all_clients
        args = _session_scoped(local, _request_for(op, hot_leaf, sibling_pair), op)
        local.query(op, args=args).unwrap()  # warm
        chunk_lists = [
            client.stream_raw(op, args=args, chunk_size=3)
            for client in (local, remote, aio)
        ]
        assert chunk_lists[0] == chunk_lists[1] == chunk_lists[2]
        first = json.loads(chunk_lists[0][0].decode("utf-8"))
        total = first["page"]["total"]
        expected_chunks = max(1, -(-total // 3))
        assert len(chunk_lists[0]) == expected_chunks, (
            f"{op}: {total} items must stream as {expected_chunks} chunks"
        )

    @pytest.mark.parametrize("op", STREAMABLE_OPS)
    def test_reassembly_equals_one_shot_payload(
        self, all_clients, hot_leaf, sibling_pair, op
    ):
        local, remote, _ = all_clients
        spec = DEFAULT_REGISTRY.get(op)
        args = _session_scoped(local, _request_for(op, hot_leaf, sibling_pair), op)
        merged = remote.stream_result(op, args=args, chunk_size=7)
        total = len(merged[spec.stream.field])
        one_shot = local.query(
            op, args=args, page={spec.stream.page_key: total}
        ).unwrap()
        assert dumps(merged) == dumps(one_shot)

"""End-to-end tests for the gmine command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *args):
    """Run the CLI and return (exit_code, parsed JSON output)."""
    code = main(list(args))
    captured = capsys.readouterr()
    payload = json.loads(captured.out) if captured.out.strip() else None
    return code, payload, captured.err


class TestGenerateAndBuild:
    def test_generate_json(self, tmp_path, capsys):
        output = tmp_path / "dblp.json"
        code, payload, _ = run_cli(
            capsys, "generate", "--authors", "200", "--output", str(output)
        )
        assert code == 0
        assert payload["authors"] == 200
        assert output.exists()

    def test_generate_edge_list(self, tmp_path, capsys):
        output = tmp_path / "dblp.edges"
        code, payload, _ = run_cli(
            capsys, "generate", "--authors", "150", "--output", str(output)
        )
        assert code == 0
        assert output.exists()

    def test_build_and_stats_and_query_and_render(self, tmp_path, capsys):
        graph_path = tmp_path / "dblp.json"
        store_path = tmp_path / "dblp.gtree"
        svg_path = tmp_path / "view.svg"

        code, _, _ = run_cli(
            capsys, "generate", "--authors", "300", "--seed", "3", "--output", str(graph_path)
        )
        assert code == 0

        code, summary, _ = run_cli(
            capsys, "build", "--graph", str(graph_path), "--fanout", "3",
            "--levels", "3", "--output", str(store_path),
        )
        assert code == 0
        assert summary["leaf_communities"] >= 3
        assert store_path.exists()

        code, stats, _ = run_cli(capsys, "stats", str(store_path))
        assert code == 0
        assert stats["tree_nodes"] == summary["tree_nodes"]

        # Query an author by id (names depend on the generator seed).
        code, result, _ = run_cli(
            capsys, "query", "--store", str(store_path), "--value", "42", "--by-id"
        )
        assert code == 0
        assert result["leaf"].startswith("s0")

        code, rendered, _ = run_cli(
            capsys, "render", str(store_path), "--output", str(svg_path)
        )
        assert code == 0
        assert svg_path.exists()
        assert rendered["items"] > 0

    def test_stats_on_raw_graph(self, tmp_path, capsys):
        graph_path = tmp_path / "tiny.json"
        run_cli(capsys, "generate", "--authors", "120", "--output", str(graph_path))
        code, stats, _ = run_cli(capsys, "stats", str(graph_path))
        assert code == 0
        assert stats["num_weak_components"] >= 1


class TestExtract:
    def test_extract_with_svg(self, tmp_path, capsys):
        graph_path = tmp_path / "dblp.json"
        run_cli(capsys, "generate", "--authors", "400", "--seed", "9",
                "--output", str(graph_path))
        svg_path = tmp_path / "extract.svg"
        out_path = tmp_path / "extract.json"
        code, summary, _ = run_cli(
            capsys, "extract", "--graph", str(graph_path),
            "--sources", "0", "17", "53", "--budget", "25",
            "--svg", str(svg_path), "--output", str(out_path),
        )
        assert code == 0
        assert summary["extracted_nodes"] <= 25
        assert summary["sources_present"] == 1.0
        assert svg_path.exists() and out_path.exists()


class TestErrorHandling:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1

    def test_missing_graph_file(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_query_miss_reports_error(self, tmp_path, capsys):
        graph_path = tmp_path / "dblp.json"
        store_path = tmp_path / "dblp.gtree"
        main(["generate", "--authors", "150", "--output", str(graph_path)])
        main(["build", "--graph", str(graph_path), "--fanout", "2", "--levels", "2",
              "--output", str(store_path)])
        capsys.readouterr()
        code = main(["query", "--store", str(store_path), "--value", "Nobody At All"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestServeBackends:
    """`gmine serve` batch mode on each execution backend + cache persistence."""

    @pytest.fixture
    def built_store(self, tmp_path, capsys):
        graph_path = tmp_path / "dblp.json"
        store_path = tmp_path / "dblp.gtree"
        code, _, _ = run_cli(
            capsys, "generate", "--authors", "200", "--seed", "5",
            "--output", str(graph_path),
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "build", "--graph", str(graph_path),
            "--fanout", "3", "--levels", "2", "--output", str(store_path),
        )
        assert code == 0
        requests_path = tmp_path / "requests.json"
        requests_path.write_text(
            json.dumps([{"op": "metrics", "args": {}},
                        {"op": "connectivity", "args": {}}]),
            encoding="utf-8",
        )
        return graph_path, store_path, requests_path

    @pytest.mark.parametrize("backend", ["inline", "thread:2", "process:2"])
    def test_serve_batch_on_each_backend(self, built_store, capsys, backend):
        graph_path, store_path, requests_path = built_store
        code, payload, _ = run_cli(
            capsys, "serve", "--store", str(store_path),
            "--graph", str(graph_path), "--requests", str(requests_path),
            "--backend", backend,
        )
        assert code == 0
        assert all(result["ok"] for result in payload["results"])
        assert payload["stats"]["backend"]["name"] == backend.split(":")[0]

    def test_serve_cache_path_persists_across_runs(self, built_store, capsys):
        graph_path, store_path, requests_path = built_store
        cache_db = store_path.parent / "cache.db"
        code, first, _ = run_cli(
            capsys, "serve", "--store", str(store_path),
            "--graph", str(graph_path), "--requests", str(requests_path),
            "--cache-path", str(cache_db),
        )
        assert code == 0
        assert not any(result["cached"] for result in first["results"])
        # a second CLI invocation = a fresh process warm-starting from disk
        code, second, _ = run_cli(
            capsys, "serve", "--store", str(store_path),
            "--graph", str(graph_path), "--requests", str(requests_path),
            "--cache-path", str(cache_db),
        )
        assert code == 0
        assert all(result["cached"] for result in second["results"])

    def test_serve_rejects_unknown_backend(self, built_store, capsys):
        graph_path, store_path, requests_path = built_store
        code, _, err = run_cli(
            capsys, "serve", "--store", str(store_path),
            "--requests", str(requests_path), "--backend", "quantum",
        )
        assert code == 2
        assert "unknown execution backend" in err


class TestPathCommand:
    """`gmine path`: GPath queries from the shell."""

    @pytest.fixture
    def built_store(self, tmp_path, capsys):
        graph_path = tmp_path / "dblp.json"
        store_path = tmp_path / "dblp.gtree"
        code, _, _ = run_cli(
            capsys, "generate", "--authors", "200", "--seed", "5",
            "--output", str(graph_path),
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "build", "--graph", str(graph_path),
            "--fanout", "3", "--levels", "2", "--output", str(store_path),
        )
        assert code == 0
        return graph_path, store_path

    def test_parse_only_canonicalizes(self, capsys):
        code, payload, _ = run_cli(
            capsys, "path", "community(s0)/members/neighbors", "--parse-only"
        )
        assert code == 0
        assert payload["canonical"] == "community(s0)/members/hops(1)"
        assert payload["steps"] == 3

    def test_parse_only_rejects_bad_query(self, capsys):
        code = main(["path", "community(", "--parse-only"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_tree_query_over_store(self, built_store, capsys):
        _, store_path = built_store
        code, payload, _ = run_cli(
            capsys, "path", str(store_path), "leaves/nodes"
        )
        assert code == 0
        assert payload["ok"] is True
        assert payload["result"]["count"] >= 3
        assert all(label.startswith("s") for label in payload["result"]["items"])

    def test_community_query_with_graph(self, built_store, capsys):
        graph_path, store_path = built_store
        code, leaves, _ = run_cli(
            capsys, "path", str(store_path), "leaves/nodes"
        )
        assert code == 0
        label = leaves["result"]["items"][0]
        code, payload, _ = run_cli(
            capsys, "path", str(store_path),
            f"community({label})/members/count",
            "--graph", str(graph_path),
        )
        assert code == 0
        assert payload["result"]["count"] > 0

    def test_pagination_flags_reach_the_page_block(self, built_store, capsys):
        _, store_path = built_store
        code, payload, _ = run_cli(
            capsys, "path", str(store_path), "leaves/nodes", "--limit", "2"
        )
        assert code == 0
        assert len(payload["result"]["items"]) == 2
        assert payload["result"]["count"] >= 3

    def test_navigation_error_exits_3_with_envelope(self, built_store, capsys):
        graph_path, store_path = built_store
        code, payload, _ = run_cli(
            capsys, "path", str(store_path),
            "community(never-built)/members/count",
            "--graph", str(graph_path),
        )
        assert code == 3
        assert payload["ok"] is False
        assert payload["error"]["code"] == "NAVIGATION_ERROR"

    def test_parse_error_envelope_carries_span(self, built_store, capsys):
        _, store_path = built_store
        code, payload, _ = run_cli(
            capsys, "path", str(store_path), "community(s0)/teleport"
        )
        assert code == 3
        assert payload["error"]["code"] == "QUERY_PARSE_ERROR"
        span = payload["error"]["details"]["span"]
        text = payload["error"]["details"]["source"]
        assert text[span[0]:span[1]] == "teleport"

    def test_missing_positionals_is_a_usage_error(self, capsys):
        code = main(["path"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_missing_store_suggests_url(self, tmp_path, capsys):
        code = main(["path", str(tmp_path / "none.gtree"), "leaves/count"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--url" in captured.err


class TestIngestCommand:
    """`gmine ingest`: file -> G-Tree -> dataset from the shell."""

    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text(
            "source,target,weight\n"
            "0,1,2.0\n1,2,1.0\n2,0,1.0\n2,3,0.5\n3,4,1.0\n4,2,1.0\n",
            encoding="utf-8",
        )
        return path

    def test_ingest_reports_the_built_dataset(self, csv_file, capsys):
        code, payload, _ = run_cli(
            capsys, "ingest", "--graph", str(csv_file), "--name", "toy",
            "--fanout", "2", "--levels", "2",
        )
        assert code == 0
        assert payload["ok"] is True
        assert payload["result"]["dataset"] == "toy"
        assert payload["result"]["nodes"] == 5
        assert payload["result"]["tree"]["leaves"] >= 1

    def test_ingest_store_then_path_round_trip(self, csv_file, tmp_path, capsys):
        store_path = tmp_path / "toy.gtree"
        code, payload, _ = run_cli(
            capsys, "ingest", "--graph", str(csv_file), "--name", "toy",
            "--fanout", "2", "--levels", "2", "--store", str(store_path),
        )
        assert code == 0
        assert payload["result"]["store"] == str(store_path)
        assert store_path.exists()
        # the persisted tree serves GPath queries in a later process
        code, queried, _ = run_cli(
            capsys, "path", str(store_path), "members/count",
            "--graph", str(csv_file),
        )
        assert code == 0
        assert queried["result"]["count"] == payload["result"]["nodes"]

    def test_ingest_missing_file_is_a_usage_error(self, tmp_path, capsys):
        code = main(["ingest", "--graph", str(tmp_path / "nope.csv"),
                     "--name", "toy"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

"""Tests that check the paper's quantitative claims at reduced scale.

The demo paper makes a handful of concrete, checkable statements; these
tests assert each one holds for the reproduction (at reduced dataset scale —
the full 315,688-author run is exercised by the benchmarks, not the unit
suite).  Each test cites the claim it covers.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.engine import GMineEngine
from repro.core.tomahawk import clutter_reduction
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.components import number_weak_components
from repro.partition.hierarchy import recursive_partition
from repro.partition.kway import KWayOptions, kway_partition
from repro.partition.metrics import balance, edge_cut, part_sizes

# These tests rebuild paper-scale(ish) datasets and hierarchies; they are the
# bulk of the suite's wall-clock and run outside the tier-1 gate.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def paper_like_dataset():
    """A scaled-down DBLP: same 5-community layout, 2,000 authors."""
    return generate_dblp(DBLPConfig(num_authors=2000, seed=99))


class TestSectionIIIPartitioningClaims:
    """Section III-A: k-way partitioning with |Vi| = n/k minimising cross edges."""

    def test_five_way_partition_is_balanced_and_sparse_across_parts(self, paper_like_dataset):
        graph = paper_like_dataset.graph
        assignment = kway_partition(graph, 5, KWayOptions(seed=1))
        sizes = part_sizes(assignment, 5)
        ideal = graph.num_nodes / 5
        assert all(0.6 * ideal <= size <= 1.4 * ideal for size in sizes)
        # Most co-authorships stay inside a part.
        assert edge_cut(graph, assignment) < 0.5 * graph.total_edge_weight()

    def test_hierarchy_bookkeeping_matches_5_level_formula(self):
        """'broken into 5^4 + 1, or 626, communities' — at reduced depth.

        With fanout 5 and 3 levels the same formula gives 5^2 + 1 = 26; the
        full-depth (5-level) variant is covered by the CLAIM-DBLP benchmark.
        """
        dataset = generate_dblp(DBLPConfig(num_authors=1500, seed=7))
        hierarchy = recursive_partition(
            dataset.graph, fanout=5, levels=3, options=KWayOptions(seed=7)
        )
        assert len(hierarchy.leaf_communities()) == 25
        assert hierarchy.paper_community_count() == 26

    def test_average_community_size_matches_n_over_leaf_count(self):
        """'an average of 500 nodes per community' is n / 5^4; check n / 5^2 here."""
        dataset = generate_dblp(DBLPConfig(num_authors=1500, seed=7))
        hierarchy = recursive_partition(
            dataset.graph, fanout=5, levels=3, options=KWayOptions(seed=7)
        )
        assert hierarchy.mean_leaf_size() == pytest.approx(1500 / 25, rel=0.01)


class TestSectionIIIBInteractionClaims:
    """Section III-B: navigation, label queries, metrics on demand."""

    def test_label_query_locates_author_in_hierarchy(self, paper_like_dataset):
        """'execute a label query to locate a specific author within the hierarchy'."""
        tree = build_gtree(paper_like_dataset.graph, fanout=5, levels=3, seed=3)
        engine = GMineEngine(tree, graph=paper_like_dataset.graph)
        author = paper_like_dataset.name_of(1234)
        result = engine.label_query(author)
        assert result.path_labels[-1] == "s0"
        assert paper_like_dataset.graph.get_node_attr(result.vertex, "name") == author

    def test_metrics_on_demand_for_a_focused_subgraph(self, paper_like_dataset):
        """'degree distribution, number of hops, weak components, strong components, page rank'."""
        tree = build_gtree(paper_like_dataset.graph, fanout=5, levels=3, seed=3)
        engine = GMineEngine(tree, graph=paper_like_dataset.graph)
        metrics = engine.community_metrics(tree.leaves()[0].node_id)
        assert metrics.degree_histogram
        assert metrics.diameter >= 1
        assert metrics.num_weak_components >= 1
        assert metrics.num_strong_components == metrics.num_weak_components
        assert abs(sum(metrics.pagerank.values()) - 1.0) < 1e-6

    def test_outlier_edge_inspection_reveals_the_underlying_coauthorship(self, paper_like_dataset):
        """'inspect this specific outlier edge to reveal [the] co-authoring relation'."""
        tree = build_gtree(paper_like_dataset.graph, fanout=5, levels=3, seed=3)
        engine = GMineEngine(tree, graph=paper_like_dataset.graph)
        root = tree.root
        assert root.connectivity, "top-level communities should share some edges"
        edge = min(root.connectivity, key=lambda item: item.edge_count)
        inspection = engine.inspect_connectivity_edge(edge.source, edge.target)
        assert len(inspection.edges) == edge.edge_count
        # Every revealed edge carries the co-authoring metadata (names, year).
        for endpoint in inspection.endpoints:
            assert "name" in endpoint["u_attrs"]
            assert "first_year" in endpoint["edge_attrs"]


class TestSectionIIICTomahawkClaims:
    """Section III-C: the Tomahawk principle limits what is displayed."""

    def test_tomahawk_context_is_focus_children_siblings_ancestors(self, paper_like_dataset):
        """'gather the desired node of interest, its sons and its siblings'."""
        tree = build_gtree(paper_like_dataset.graph, fanout=5, levels=3, seed=3)
        focus = tree.children(tree.root.node_id)[0]
        engine = GMineEngine(tree, graph=paper_like_dataset.graph)
        context = engine.focus_community(focus.node_id)
        assert context.focus.node_id == focus.node_id
        assert {node.node_id for node in context.children} == set(focus.children)
        assert len(context.siblings) == len(tree.root.children) - 1
        assert [node.node_id for node in context.ancestors] == [tree.root.node_id]

    def test_display_reduction_is_at_least_an_order_of_magnitude(self, paper_like_dataset):
        """'limited visual data presentation in contrast to cluttered visualizations'."""
        tree = build_gtree(paper_like_dataset.graph, fanout=5, levels=3, seed=3)
        stats = clutter_reduction(tree, tree.root.node_id)
        assert stats["reduction_ratio"] >= 31 / 6  # whole tree vs root context


class TestSectionIVExtractionClaims:
    """Section IV: connection subgraph extraction."""

    def test_thirty_node_extract_from_three_sources(self, paper_like_dataset):
        """Figure 5: 'a connection subgraph with 30 nodes ... initial query set
        composed of three authors'."""
        dataset = paper_like_dataset
        hubs = [author for author, _, _ in dataset.most_collaborative_authors(3)]
        result = extract_connection_subgraph(dataset.graph, hubs, budget=30)
        assert result.num_nodes <= 30
        assert result.contains_all_sources()
        assert number_weak_components(result.subgraph) == 1

    def test_extract_is_orders_of_magnitude_smaller(self, paper_like_dataset):
        """'The magnitude of the subgraph is thousand fold smaller' (scaled here)."""
        dataset = paper_like_dataset
        hubs = [author for author, _, _ in dataset.most_collaborative_authors(3)]
        result = extract_connection_subgraph(dataset.graph, hubs, budget=30)
        assert result.reduction_factor(dataset.graph) >= dataset.graph.num_nodes / 30

    def test_multi_source_queries_supported_beyond_pairwise_baseline(self, paper_like_dataset):
        """'The proposed algorithm can deal with multi-source queries, while the
        existing one is restricted to pairwise source queries.'"""
        dataset = paper_like_dataset
        hubs = [author for author, _, _ in dataset.most_collaborative_authors(4)]
        result = extract_connection_subgraph(dataset.graph, hubs, budget=40)
        assert len(result.sources) == 4
        assert result.contains_all_sources()

    def test_two_hundred_node_extract_partitions_into_three_communities(self, paper_like_dataset):
        """Figure 6: 'a 200 nodes subgraph ... presented as three partitions'."""
        dataset = paper_like_dataset
        hubs = [author for author, _, _ in dataset.most_collaborative_authors(4)]
        result = extract_connection_subgraph(dataset.graph, hubs, budget=200)
        assert result.num_nodes <= 200
        tree = build_gtree(result.subgraph, fanout=3, levels=2, seed=5)
        first_level = tree.children(tree.root.node_id)
        assert len(first_level) == 3
        assert balance({node: index for index, child in enumerate(first_level)
                        for node in child.members}, 3) < 2.0

"""Shared fixtures for the GMine reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.generators import (
    connected_caveman,
    erdos_renyi,
    grid_2d,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """The smallest interesting graph: a weighted triangle."""
    graph = Graph(name="triangle")
    graph.add_edge("a", "b", weight=1.0)
    graph.add_edge("b", "c", weight=2.0)
    graph.add_edge("a", "c", weight=3.0)
    return graph


@pytest.fixture(scope="session")
def caveman_graph() -> Graph:
    """Six 10-cliques chained in a ring — obvious community structure."""
    return connected_caveman(6, 10, seed=1)


@pytest.fixture(scope="session")
def random_graph() -> Graph:
    """A moderate Erdős–Rényi graph for algorithms that need some mess."""
    return erdos_renyi(120, 0.06, seed=3)


@pytest.fixture(scope="session")
def grid_graph() -> Graph:
    """An 8x8 grid: known diameter, planar, no hubs."""
    return grid_2d(8, 8)


@pytest.fixture(scope="session")
def small_path() -> Graph:
    """A 6-vertex path (degenerate but legal input)."""
    return path_graph(6)


@pytest.fixture(scope="session")
def star() -> Graph:
    """A star with 12 leaves (stress for matchings and RWR normalisation)."""
    return star_graph(12)


@pytest.fixture(scope="session")
def dblp_dataset():
    """A small synthetic DBLP dataset shared by core/mining/integration tests."""
    return generate_dblp(DBLPConfig(num_authors=900, intra_sub_degree=6.0, seed=17))


@pytest.fixture(scope="session")
def dblp_gtree(dblp_dataset):
    """A 3-level, 3-way G-Tree over the shared DBLP dataset."""
    return build_gtree(dblp_dataset.graph, fanout=3, levels=3, seed=17)

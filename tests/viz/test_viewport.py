"""Unit tests for the zoom/pan viewport."""

import pytest

from repro.errors import VisualizationError
from repro.viz.geometry import Point, Rect
from repro.viz.viewport import Viewport


class TestTransforms:
    def test_identity_round_trip(self):
        viewport = Viewport(width=800, height=600)
        point = Point(123.0, 45.0)
        assert viewport.screen_to_world(viewport.world_to_screen(point)) == point

    def test_round_trip_after_zoom_and_pan(self):
        viewport = Viewport(width=800, height=600)
        viewport.zoom(2.5, anchor=Point(100, 100))
        viewport.pan(30, -20)
        point = Point(7.0, 13.0)
        back = viewport.screen_to_world(viewport.world_to_screen(point))
        assert back.x == pytest.approx(point.x)
        assert back.y == pytest.approx(point.y)

    def test_visible_world_rect_shrinks_when_zooming_in(self):
        viewport = Viewport(width=1000, height=800)
        before = viewport.visible_world_rect()
        viewport.zoom(2.0)
        after = viewport.visible_world_rect()
        assert after.width == pytest.approx(before.width / 2.0)
        assert after.height == pytest.approx(before.height / 2.0)


class TestInteractions:
    def test_zoom_keeps_anchor_fixed(self):
        viewport = Viewport(width=1000, height=800)
        anchor = Point(250, 125)
        world_before = viewport.screen_to_world(anchor)
        viewport.zoom(3.0, anchor=anchor)
        world_after = viewport.screen_to_world(anchor)
        assert world_after.x == pytest.approx(world_before.x)
        assert world_after.y == pytest.approx(world_before.y)

    def test_zoom_clamped(self):
        viewport = Viewport(min_scale=0.5, max_scale=2.0)
        viewport.zoom(100.0)
        assert viewport.scale == 2.0
        viewport.zoom(1e-9)
        assert viewport.scale == 0.5

    def test_zoom_invalid_factor(self):
        with pytest.raises(VisualizationError):
            Viewport().zoom(0.0)

    def test_pan_moves_view(self):
        viewport = Viewport()
        viewport.pan(100, 50)
        assert viewport.offset_x == -100
        assert viewport.offset_y == -50

    def test_fit_contains_rect(self):
        viewport = Viewport(width=1000, height=500)
        target = Rect(200, 300, 400, 100)
        viewport.fit(target)
        visible = viewport.visible_world_rect()
        assert visible.x <= target.x
        assert visible.max_x >= target.max_x
        assert visible.y <= target.y
        assert visible.max_y >= target.max_y

    def test_fit_empty_rect_raises(self):
        with pytest.raises(VisualizationError):
            Viewport().fit(Rect(0, 0, 0, 10))

    def test_reset(self):
        viewport = Viewport()
        viewport.zoom(4.0)
        viewport.pan(10, 10)
        viewport.reset()
        assert viewport.scale == 1.0
        assert viewport.offset_x == 0.0 and viewport.offset_y == 0.0

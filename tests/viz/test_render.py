"""Unit tests for the view renderers."""

import pytest

from repro.core.tomahawk import tomahawk_context
from repro.graph.generators import connected_caveman
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.viz.render import render_full_expansion, render_subgraph, render_tomahawk_view
from repro.viz.scene import Circle, Line, Rectangle
from repro.viz.svg import scene_to_svg


class TestRenderSubgraph:
    def test_one_circle_per_vertex_and_line_per_edge(self):
        graph = connected_caveman(2, 5, seed=0)
        scene = render_subgraph(graph, max_labels=0)
        counts = scene.count_by_type()
        assert counts["circle"] == graph.num_nodes
        assert counts["line"] == graph.num_edges

    def test_highlighted_sources_are_larger(self, caveman_graph):
        scene = render_subgraph(caveman_graph, highlight=[0], max_labels=0)
        circles = [shape for shape in scene.shapes() if isinstance(shape, Circle)]
        radii = sorted({circle.radius for circle in circles})
        assert len(radii) == 2
        assert radii[-1] > radii[0]

    def test_scores_change_fill_colors(self, caveman_graph):
        scores = {node: float(node) for node in caveman_graph.nodes()}
        scene = render_subgraph(caveman_graph, node_scores=scores, max_labels=0)
        fills = {shape.fill for shape in scene.shapes() if isinstance(shape, Circle)}
        assert len(fills) > 1

    def test_label_budget_respected(self, caveman_graph):
        scene = render_subgraph(caveman_graph, max_labels=3)
        assert scene.count_by_type()["text"] <= 4  # 3 labels + possible highlight labels

    def test_extraction_view_is_renderable_svg(self, caveman_graph):
        result = extract_connection_subgraph(caveman_graph, [0, 30], budget=15)
        scene = render_subgraph(result.subgraph, highlight=result.sources,
                                node_scores=result.goodness)
        svg = scene_to_svg(scene)
        assert "<circle" in svg


class TestRenderTomahawkView:
    def test_root_view_structure(self, dblp_dataset, dblp_gtree):
        context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        scene = render_tomahawk_view(dblp_gtree, context, graph=dblp_dataset.graph)
        counts = scene.count_by_type()
        # Enclosing box + focus box + one box per child community.
        assert counts["rectangle"] >= 1 + len(dblp_gtree.root.children)
        assert counts["text"] >= counts["rectangle"]  # every box gets a label

    def test_mid_level_view_draws_connectivity(self, dblp_dataset, dblp_gtree):
        focus = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        context = tomahawk_context(dblp_gtree, focus.node_id)
        scene = render_tomahawk_view(dblp_gtree, context, graph=dblp_dataset.graph)
        lines = [shape for shape in scene.shapes() if isinstance(shape, Line)]
        expected_edges = len(dblp_gtree.root.connectivity) + len(focus.connectivity)
        if expected_edges:
            assert lines

    def test_leaf_view_with_expanded_subgraph(self, dblp_dataset, dblp_gtree):
        leaf = dblp_gtree.leaves()[0]
        context = tomahawk_context(dblp_gtree, leaf.node_id)
        collapsed = render_tomahawk_view(dblp_gtree, context, graph=dblp_dataset.graph)
        expanded = render_tomahawk_view(
            dblp_gtree, context, graph=dblp_dataset.graph, expand_focus_subgraph=True
        )
        assert expanded.visual_item_count() > collapsed.visual_item_count()
        circles = [shape for shape in expanded.shapes() if isinstance(shape, Circle)]
        assert len(circles) == leaf.size

    def test_view_is_valid_svg(self, dblp_dataset, dblp_gtree):
        context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        svg = scene_to_svg(render_tomahawk_view(dblp_gtree, context))
        assert svg.count("<rect") >= 2


class TestRenderFullExpansion:
    def test_draws_every_community(self, dblp_dataset, dblp_gtree):
        scene = render_full_expansion(dblp_gtree, graph=dblp_dataset.graph,
                                      include_leaf_edges=False)
        rectangles = [shape for shape in scene.shapes() if isinstance(shape, Rectangle)]
        assert len(rectangles) == dblp_gtree.num_tree_nodes

    def test_with_leaf_edges_is_much_larger_than_tomahawk(self, dblp_dataset, dblp_gtree):
        full = render_full_expansion(dblp_gtree, graph=dblp_dataset.graph)
        context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        tomahawk = render_tomahawk_view(dblp_gtree, context, graph=dblp_dataset.graph)
        assert full.visual_item_count() > 5 * tomahawk.visual_item_count()

"""Unit tests for the G-Tree diagram renderers (figures 1 and 4)."""

import pytest

from repro.core.tomahawk import tomahawk_context
from repro.viz.scene import Circle, Line, Text
from repro.viz.svg import scene_to_svg
from repro.viz.tree_diagram import render_gtree_diagram, render_tomahawk_diagram


class TestGTreeDiagram:
    def test_one_circle_per_community(self, dblp_gtree):
        scene = render_gtree_diagram(dblp_gtree)
        circles = [shape for shape in scene.shapes() if isinstance(shape, Circle)]
        assert len(circles) == dblp_gtree.num_tree_nodes

    def test_one_line_per_parent_child_link(self, dblp_gtree):
        scene = render_gtree_diagram(dblp_gtree)
        lines = [shape for shape in scene.shapes() if isinstance(shape, Line)]
        expected = sum(len(node.children) for node in dblp_gtree.nodes())
        assert len(lines) == expected

    def test_levels_map_to_rows(self, dblp_gtree):
        scene = render_gtree_diagram(dblp_gtree, height=600)
        circles = [shape for shape in scene.shapes() if isinstance(shape, Circle)]
        ys = sorted({round(circle.center.y, 1) for circle in circles})
        assert len(ys) == dblp_gtree.depth() + 1

    def test_leaf_labels_include_sizes(self, dblp_gtree):
        scene = render_gtree_diagram(dblp_gtree, show_leaf_sizes=True)
        texts = [shape.content for shape in scene.shapes() if isinstance(shape, Text)]
        leaf = dblp_gtree.leaves()[0]
        assert any(f"({leaf.size})" in text for text in texts)

    def test_svg_output(self, dblp_gtree):
        svg = scene_to_svg(render_gtree_diagram(dblp_gtree))
        assert svg.count("<circle") == dblp_gtree.num_tree_nodes


class TestTomahawkDiagram:
    def test_highlight_roles_cover_context(self, dblp_gtree):
        focus = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        context = tomahawk_context(dblp_gtree, focus.node_id)
        scene = render_tomahawk_diagram(dblp_gtree, context)
        tooltips = [shape.tooltip for shape in scene.shapes()
                    if isinstance(shape, Circle) and shape.tooltip]
        assert any("(focus)" in tip for tip in tooltips)
        assert any("(child)" in tip for tip in tooltips)
        assert any("(sibling)" in tip for tip in tooltips)
        assert any("(ancestor)" in tip for tip in tooltips)

    def test_focus_is_drawn_larger(self, dblp_gtree):
        focus = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        context = tomahawk_context(dblp_gtree, focus.node_id)
        scene = render_tomahawk_diagram(dblp_gtree, context)
        circles = [shape for shape in scene.shapes() if isinstance(shape, Circle)]
        focus_circles = [c for c in circles if c.tooltip and "(focus)" in c.tooltip]
        other_circles = [c for c in circles if c.tooltip and "(other)" in c.tooltip]
        assert focus_circles and other_circles
        assert focus_circles[0].radius > other_circles[0].radius

    def test_legend_present(self, dblp_gtree):
        context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        scene = render_tomahawk_diagram(dblp_gtree, context)
        texts = [shape.content for shape in scene.shapes() if isinstance(shape, Text)]
        for role in ("focus", "child", "sibling", "ancestor"):
            assert role in texts

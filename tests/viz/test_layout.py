"""Unit tests for layout algorithms."""

import pytest

from repro.errors import LayoutError
from repro.graph.generators import complete_graph, connected_caveman, grid_2d, path_graph
from repro.graph.graph import Graph
from repro.viz.geometry import Rect
from repro.viz.layout import (
    circular_layout,
    fruchterman_reingold_layout,
    grid_layout,
    layout_by_name,
    radial_community_layout,
    random_layout,
    spectral_layout,
)

RECT = Rect(0, 0, 500, 400)


def assert_positions_inside(positions, rect):
    for point in positions.values():
        assert rect.x - 1e-6 <= point.x <= rect.max_x + 1e-6
        assert rect.y - 1e-6 <= point.y <= rect.max_y + 1e-6


class TestBasicLayouts:
    def test_circular_positions_every_vertex(self, caveman_graph):
        positions = circular_layout(caveman_graph, RECT)
        assert set(positions) == set(caveman_graph.nodes())
        assert_positions_inside(positions, RECT)

    def test_circular_distinct_positions(self):
        graph = complete_graph(10)
        positions = circular_layout(graph, RECT)
        coordinates = {point.as_tuple() for point in positions.values()}
        assert len(coordinates) == 10

    def test_grid_layout_covers_graph(self, random_graph):
        positions = grid_layout(random_graph, RECT)
        assert set(positions) == set(random_graph.nodes())
        assert_positions_inside(positions, RECT)

    def test_random_layout_deterministic(self, random_graph):
        a = random_layout(random_graph, RECT, seed=5)
        b = random_layout(random_graph, RECT, seed=5)
        assert a == b

    def test_empty_graph_layouts(self):
        empty = Graph()
        assert circular_layout(empty) == {}
        assert grid_layout(empty) == {}
        assert fruchterman_reingold_layout(empty) == {}
        assert spectral_layout(empty) == {}


class TestForceLayout:
    def test_positions_inside_rect(self):
        graph = connected_caveman(3, 6, seed=0)
        positions = fruchterman_reingold_layout(graph, RECT, iterations=40, seed=2)
        assert set(positions) == set(graph.nodes())
        assert_positions_inside(positions, RECT)

    def test_single_vertex_centered(self):
        graph = Graph()
        graph.add_node("only")
        positions = fruchterman_reingold_layout(graph, RECT)
        assert positions["only"] == RECT.center

    def test_deterministic_given_seed(self):
        graph = path_graph(12)
        a = fruchterman_reingold_layout(graph, RECT, seed=7)
        b = fruchterman_reingold_layout(graph, RECT, seed=7)
        assert a == b

    def test_communities_separate_spatially(self):
        # Two cliques joined by one edge: intra-clique distances should be
        # smaller on average than inter-clique distances.
        graph = connected_caveman(2, 8, seed=0)
        positions = fruchterman_reingold_layout(graph, RECT, iterations=120, seed=3)
        intra, inter = [], []
        for u in graph.nodes():
            for v in graph.nodes():
                if u >= v:
                    continue
                distance = positions[u].distance_to(positions[v])
                if (u < 8) == (v < 8):
                    intra.append(distance)
                else:
                    inter.append(distance)
        assert sum(intra) / len(intra) < sum(inter) / len(inter)

    def test_respects_initial_positions(self):
        graph = path_graph(5)
        initial = circular_layout(graph, RECT)
        positions = fruchterman_reingold_layout(graph, RECT, iterations=1, initial=initial)
        assert set(positions) == set(initial)


class TestSpectralLayout:
    def test_positions_cover_graph(self, grid_graph):
        positions = spectral_layout(grid_graph, RECT)
        assert set(positions) == set(grid_graph.nodes())
        assert_positions_inside(positions, RECT)

    def test_tiny_graph_falls_back(self):
        graph = path_graph(3)
        positions = spectral_layout(graph, RECT)
        assert len(positions) == 3


class TestRadialCommunityLayout:
    def test_one_rect_per_label(self):
        rects = radial_community_layout(["a", "b", "c"], RECT)
        assert set(rects) == {"a", "b", "c"}
        for rect in rects.values():
            assert RECT.contains(rect.center)

    def test_single_label_fills_parent(self):
        rects = radial_community_layout(["only"], RECT)
        assert rects["only"].width < RECT.width

    def test_empty(self):
        assert radial_community_layout([], RECT) == {}


class TestLayoutDispatch:
    @pytest.mark.parametrize("name", ["circular", "grid", "random", "force", "spectral"])
    def test_dispatch_by_name(self, name):
        graph = grid_2d(4, 4)
        positions = layout_by_name(name, graph, RECT, seed=1)
        assert set(positions) == set(graph.nodes())

    def test_unknown_layout_raises(self, grid_graph):
        with pytest.raises(LayoutError):
            layout_by_name("does-not-exist", grid_graph)

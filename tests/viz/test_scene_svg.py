"""Unit tests for the scene graph, colour utilities, and the SVG backend."""

import pytest

from repro.viz.color import (
    categorical_color,
    darken,
    hex_to_rgb,
    level_palette,
    lighten,
    rgb_to_hex,
    sequential_color,
)
from repro.viz.geometry import Point, Rect
from repro.viz.scene import Circle, Line, Rectangle, Scene, Text
from repro.viz.svg import scene_to_svg, write_svg


class TestScene:
    def test_add_and_count(self):
        scene = Scene(width=100, height=80, title="test")
        scene.add(Circle(center=Point(10, 10), radius=2))
        scene.add(Line(start=Point(0, 0), end=Point(5, 5)))
        scene.add(Rectangle(rect=Rect(0, 0, 10, 10)))
        scene.add(Text(position=Point(1, 1), content="label"))
        assert len(scene) == 4
        assert scene.visual_item_count() == 4
        assert scene.count_by_type() == {"circle": 1, "rectangle": 1, "line": 1, "text": 1}

    def test_shapes_sorted_by_layer(self):
        scene = Scene()
        scene.add(Circle(layer=5))
        scene.add(Circle(layer=1))
        scene.add(Circle(layer=3))
        assert [shape.layer for shape in scene.shapes()] == [1, 3, 5]

    def test_extend(self):
        scene = Scene()
        scene.extend([Circle(), Circle()])
        assert len(scene) == 2


class TestSVG:
    def test_document_structure(self):
        scene = Scene(width=200, height=100, title="figure")
        scene.add(Circle(center=Point(50, 50), radius=5, fill="#ff0000", tooltip="a node"))
        scene.add(Line(start=Point(0, 0), end=Point(10, 10), stroke="#00ff00"))
        scene.add(Rectangle(rect=Rect(1, 2, 3, 4), corner_radius=1.0))
        scene.add(Text(position=Point(5, 5), content="hello <&> world"))
        svg = scene_to_svg(scene)
        assert svg.startswith("<?xml")
        assert "<svg" in svg and "</svg>" in svg
        assert 'width="200"' in svg
        assert "<circle" in svg and "<line" in svg and "<rect" in svg and "<text" in svg
        assert "<title>a node</title>" in svg
        # XML-escaping of text content.
        assert "hello &lt;&amp;&gt; world" in svg

    def test_write_svg_creates_parents(self, tmp_path):
        scene = Scene()
        scene.add(Circle())
        path = write_svg(scene, tmp_path / "nested" / "out.svg")
        assert path.exists()
        assert path.read_text().startswith("<?xml")

    def test_empty_scene_is_valid(self):
        svg = scene_to_svg(Scene())
        assert "</svg>" in svg


class TestColors:
    def test_hex_round_trip(self):
        assert rgb_to_hex(hex_to_rgb("#4e79a7")) == "#4e79a7"

    def test_rgb_to_hex_clamps(self):
        assert rgb_to_hex((300, -5, 128)) == "#ff0080"

    def test_categorical_cycles(self):
        assert categorical_color(0) == categorical_color(10)
        assert categorical_color(1) != categorical_color(2)

    def test_lighten_and_darken(self):
        base = "#808080"
        assert lighten(base, 1.0) == "#ffffff"
        assert darken(base, 1.0) == "#000000"
        assert lighten(base, 0.0) == base

    def test_sequential_color_endpoints_differ(self):
        low = sequential_color(0.0)
        high = sequential_color(1.0)
        assert low != high

    def test_sequential_color_degenerate_range(self):
        assert sequential_color(5.0, low=3.0, high=3.0) == sequential_color(0.0)

    def test_level_palette_length(self):
        palette = level_palette(4)
        assert len(palette) == 5
        assert all(color.startswith("#") for color in palette)

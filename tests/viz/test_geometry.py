"""Unit tests for 2-D geometry helpers."""

import math

import pytest

from repro.viz.geometry import Point, Rect, bounding_box, polar


class TestPoint:
    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 1) == Point(2, 3)
        assert Point(1, 2).scaled(3) == Point(3, 6)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_tuple_and_immutability(self):
        point = Point(1.5, 2.5)
        assert point.as_tuple() == (1.5, 2.5)
        with pytest.raises(AttributeError):
            point.x = 9.0  # frozen dataclass


class TestRect:
    def test_center_and_extents(self):
        rect = Rect(10, 20, 100, 50)
        assert rect.center == Point(60, 45)
        assert rect.max_x == 110
        assert rect.max_y == 70

    def test_contains(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(Point(5, 5))
        assert rect.contains(Point(0, 10))
        assert not rect.contains(Point(11, 5))

    def test_inset(self):
        rect = Rect(0, 0, 100, 60)
        inner = rect.inset(10)
        assert inner == Rect(10, 10, 80, 40)

    def test_inset_clamps_to_empty(self):
        rect = Rect(0, 0, 10, 10)
        inner = rect.inset(100)
        assert inner.width == 0.0 and inner.height == 0.0

    def test_subdivide_grid_covers_count(self):
        rect = Rect(0, 0, 100, 100)
        cells = list(rect.subdivide_grid(7))
        assert len(cells) == 7
        for cell in cells:
            assert rect.contains(cell.center)

    def test_subdivide_zero(self):
        assert list(Rect(0, 0, 10, 10).subdivide_grid(0)) == []


class TestHelpers:
    def test_bounding_box(self):
        box = bounding_box([Point(1, 2), Point(5, 8), Point(-1, 0)], padding=1.0)
        assert box.x == -2.0
        assert box.y == -1.0
        assert box.max_x == 6.0
        assert box.max_y == 9.0

    def test_bounding_box_of_nothing(self):
        box = bounding_box([])
        assert box.width > 0 and box.height > 0

    def test_polar(self):
        point = polar(Point(0, 0), 2.0, math.pi / 2)
        assert point.x == pytest.approx(0.0, abs=1e-12)
        assert point.y == pytest.approx(2.0)

"""Byte parity: a sharded execution must be indistinguishable from unsharded.

Two layers:

* **Hypothesis suite (in-process)** — drives the exact code a shard
  worker runs (``_shard_warm`` + ``_shard_execute`` against a planner
  slice) for shard counts 1–4 and compares the *pickled bytes* of every
  result against the parent's own ``run_plan`` — rwr, metrics and
  ``query.path``, plus the scatter-gather RWR driver against the
  monolithic power kernel.  Pickle-equality is deliberately stricter
  than ``==``: it pins float bit patterns and dict iteration orders.
* **End-to-end (real pools)** — a sharded service and an inline service
  answer the same requests identically, across shard counts.
"""

import pickle

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.api.ops import OpContext, build_default_registry
from repro.api.plans import run_plan
from repro.core.builder import build_gtree
from repro.core.engine import GMineEngine
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.matrix import PreparedGraph
from repro.mining.rwr import steady_state_rwr
from repro.service import GMineService
from repro.service.datasets import DatasetContext
from repro.shard import ShardPlanner, scatter_rwr
from repro.shard.worker import _shard_execute, _shard_warm

pytestmark = pytest.mark.tier1


def _bits(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


@pytest.fixture(scope="module")
def world():
    data = generate_dblp(DBLPConfig(num_authors=240, seed=31))
    graph = data.graph
    tree = build_gtree(graph, fanout=3, levels=3, seed=31)
    prepared = PreparedGraph.from_graph(graph)
    plans = {
        n: ShardPlanner(n).plan(tree, graph, f"fp{n}", index=prepared.index)
        for n in (1, 2, 3, 4)
    }
    registry = build_default_registry()
    parent_ctx = OpContext(engine=GMineEngine(tree, graph=graph))
    canon_ctx = DatasetContext(tree)
    leaves = list(tree.leaves())
    # Warm every slice of every plan into this process's worker state
    # once; _shard_execute then runs the genuine worker code path.
    for n, plan in plans.items():
        for s in plan.shards:
            _shard_warm({
                "fingerprint": plan.fingerprint, "shard_id": s.shard_id,
                "tree": s.tree, "graph": s.graph,
            })
    return {
        "graph": graph, "tree": tree, "prepared": prepared,
        "plans": plans, "registry": registry, "parent_ctx": parent_ctx,
        "canon_ctx": canon_ctx, "leaves": leaves,
    }


def _roundtrip(world, operation, args, shard_count):
    """Parent run_plan vs in-process shard worker on the owning slice."""
    registry = world["registry"]
    parent_ctx = world["parent_ctx"]
    spec = registry.get(operation)
    canonical = spec.canonicalize(dict(args), world["canon_ctx"])
    plan = spec.plan(canonical)
    parent = run_plan(
        plan, parent_ctx.community_subgraph, parent_ctx.prepared_for
    )
    shard_plan = world["plans"][shard_count]
    if plan.scope is not None:
        owner = shard_plan.owner_of(plan.scope)
    else:
        owner = shard_plan.single_owner(plan.arg_dict.get("communities", ()))
    assert owner is not None, "test must pick a shard-owned scope"
    sharded = _shard_execute(shard_plan.fingerprint, owner, plan)
    return parent, sharded


class TestWorkerPathParity:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        shards=st.integers(1, 4),
        leaf=st.integers(0, 8),
        k=st.integers(1, 3),
    )
    def test_scoped_rwr_is_bitwise(self, world, shards, leaf, k):
        node = world["leaves"][leaf % len(world["leaves"])]
        sources = list(node.members[:k])
        parent, sharded = _roundtrip(
            world, "rwr",
            {"sources": sources, "community": node.label},
            shards,
        )
        assert _bits(parent) == _bits(sharded)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(shards=st.integers(1, 4), leaf=st.integers(0, 8))
    def test_scoped_metrics_is_bitwise(self, world, shards, leaf):
        node = world["leaves"][leaf % len(world["leaves"])]
        parent, sharded = _roundtrip(
            world, "metrics", {"community": node.label}, shards
        )
        assert _bits(parent) == _bits(sharded)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(shards=st.integers(1, 4), leaf=st.integers(0, 8))
    def test_scoped_path_query_is_bitwise(self, world, shards, leaf):
        node = world["leaves"][leaf % len(world["leaves"])]
        source = node.members[0]
        query = (
            f"community({node.label})/members/"
            f"rwr(sources=[{source!r}])/top(5)"
        )
        parent, sharded = _roundtrip(
            world, "query.path", {"path": query}, shards
        )
        assert _bits(parent) == _bits(sharded)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(shards=st.integers(2, 4), first=st.integers(0, 8), second=st.integers(0, 8))
    def test_multi_community_scope_is_bitwise(self, world, shards, first, second):
        leaves = world["leaves"]
        a = leaves[first % len(leaves)]
        b = leaves[second % len(leaves)]
        assume(a.label != b.label)
        shard_plan = world["plans"][shards]
        owner = shard_plan.single_owner([a.label, b.label])
        assume(owner is not None)
        union = len(set(a.members) | set(b.members))
        assume(union < len(shard_plan.shards[owner].members))
        query = f"community({a.label}, {b.label})/members/nodes"
        parent, sharded = _roundtrip(
            world, "query.path", {"path": query}, shards
        )
        assert _bits(parent) == _bits(sharded)


class TestScatterParity:
    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(shards=st.integers(1, 4), leaf=st.integers(0, 8), k=st.integers(1, 3))
    def test_scatter_rwr_matches_monolithic_power(self, world, shards, leaf, k):
        import numpy as np

        prepared = world["prepared"]
        node = world["leaves"][leaf % len(world["leaves"])]
        sources = list(node.members[:k])
        mono = steady_state_rwr(
            world["graph"], sources, solver="power", prepared=prepared
        )
        plan = world["plans"][shards]
        assume(plan.scatter_capable)
        W = prepared.transition
        slices = [
            (np.asarray(s.rows, dtype=np.int64),) for s in plan.shards
        ]
        mats = [(rows, W[rows, :]) for (rows,) in slices]

        def matvec(rank):
            product = np.empty_like(rank)
            for rows, mat in mats:
                product[rows, :] = mat @ rank
            return product

        result = scatter_rwr(prepared.index, matvec, sources)
        assert _bits(mono) == _bits(result)


class TestEndToEndParity:
    """Sharded and inline services must emit byte-identical wire envelopes.

    Results are compared through ``encode_result`` + the router's canonical
    ``dumps`` — the exact bytes ``/v1/compute`` would put on the wire.
    (Raw pickles can differ in memo structure: a result that crossed a
    worker boundary loses CPython string-interning identity without any
    value changing, so the wire form is the honest parity surface.)
    """

    @pytest.mark.parametrize("shards", [2, 3])
    def test_service_answers_are_byte_identical(self, shards):
        from repro.api.ops import encode_result
        from repro.api.router import dumps

        data = generate_dblp(DBLPConfig(num_authors=180, seed=7))
        tree = build_gtree(data.graph, fanout=3, levels=2, seed=7)
        answers = {}
        for backend in ("inline", f"sharded:{shards}"):
            with GMineService(backend=backend) as service:
                service.register_tree(tree, graph=data.graph, name="dblp")
                t = service.registry_of_datasets.get("dblp").tree
                node = max(t.leaves(), key=lambda n: len(n.members))
                sources = list(node.members[:2])
                calls = [
                    ("rwr", {"sources": sources}),  # widest -> scatter
                    ("rwr", {"sources": sources, "community": node.label}),
                    ("metrics", {"community": node.label}),
                    ("query.path", {"path": (
                        f"community({node.label})/members/"
                        f"rwr(sources=[{sources[0]!r}])/top(10)"
                    )}),
                ]
                answers[backend] = b"".join(
                    dumps(encode_result(
                        service.registry.get(op), service.call(op, **args)
                    )[0])
                    for op, args in calls
                )
                if backend.startswith("sharded"):
                    routed = service.stats()["backend"]["routed"]
                    assert routed["single_shard"] >= 3
                    assert routed["scatter"] == 1
        assert answers["inline"] == answers[f"sharded:{shards}"]

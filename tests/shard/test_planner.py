"""ShardPlanner invariants: placement, slice validity, owner maps, cross edges.

The planner's output is what the sharded backend's routing trusts blindly
— every invariant asserted here (whole-subtree ownership, exact member
partition, order-preserving slice graphs, exact row-block partition) is a
precondition of a byte-parity argument in ``repro.shard.backend``.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.gtree import GTree, GTreeNode
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.matrix import PreparedGraph
from repro.shard import ShardPlanError, ShardPlanner

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def dataset():
    data = generate_dblp(DBLPConfig(num_authors=240, seed=31))
    tree = build_gtree(data.graph, fanout=3, levels=3, seed=31)
    prepared = PreparedGraph.from_graph(data.graph)
    return data.graph, tree, prepared


class TestPlacement:
    def test_members_partition_the_root(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(3).plan(tree, graph, "fp", index=prepared.index)
        seen = [m for s in plan.shards for m in s.members]
        assert len(seen) == len(set(seen))
        assert set(seen) == set(tree.root.members)

    def test_whole_subtrees_share_one_owner(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(3).plan(tree, graph, "fp", index=prepared.index)
        for child in tree.children(tree.root.node_id):
            owner = plan.owner_of(child.node_id)
            assert owner is not None
            stack = [child]
            while stack:
                node = stack.pop()
                assert plan.owner_of(node.node_id) == owner
                assert plan.owner_of(node.label) == owner
                stack.extend(tree.children(node.node_id))

    def test_root_scope_never_owned(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(3).plan(tree, graph, "fp", index=prepared.index)
        assert plan.owner_of(None) is None
        assert plan.owner_of(tree.root.node_id) is None
        assert plan.owner_of(tree.root.label) is None

    def test_count_clamps_to_subtree_count(self, dataset):
        graph, tree, prepared = dataset
        wide = ShardPlanner(64).plan(tree, graph, "fp", index=prepared.index)
        assert len(wide.shards) == len(tree.children(tree.root.node_id))

    def test_greedy_balance_beats_worst_case(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(2).plan(tree, graph, "fp", index=prepared.index)
        sizes = sorted(len(s.members) for s in plan.shards)
        largest_subtree = max(
            len(c.members) for c in tree.children(tree.root.node_id)
        )
        # Largest-first/least-loaded: no shard exceeds the other by more
        # than the largest single subtree (the classic LPT bound).
        assert sizes[-1] - sizes[0] <= largest_subtree

    def test_leaf_only_root_is_unshardable(self, dataset):
        graph, _, _ = dataset
        flat = GTree(name="flat")
        flat.add_node(GTreeNode(
            node_id=0, label="root", level=0, parent_id=None,
            members=list(graph.nodes()),
        ))
        with pytest.raises(ShardPlanError):
            ShardPlanner(2).plan(flat, graph, "fp")

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardPlanError):
            ShardPlanner(0)


class TestSlices:
    def test_slice_trees_are_valid_and_navigable(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(2).plan(tree, graph, "fp", index=prepared.index)
        for s in plan.shards:
            s.tree.assert_valid()
            for label in {tree.node(nid).label for nid in s.node_ids}:
                assert s.tree.has_label(label)
            assert set(s.tree.root.members) == set(s.members)

    def test_slice_graphs_preserve_parent_order(self, dataset):
        """The keystone: a shard-local induced subgraph is bit-identical
        to the parent's induced subgraph on the same vertices."""
        graph, tree, prepared = dataset
        plan = ShardPlanner(3).plan(tree, graph, "fp", index=prepared.index)
        for s in plan.shards:
            assert list(s.graph.nodes()) == [
                n for n in graph.nodes() if n in set(s.members)
            ]
            probe = list(s.members[: min(40, len(s.members))])
            ours = s.graph.subgraph(probe, name="probe")
            parents = graph.subgraph(probe, name="probe")
            assert list(ours.nodes()) == list(parents.nodes())
            assert list(ours.edges()) == list(parents.edges())

    def test_rows_partition_the_vertex_index(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(4).plan(tree, graph, "fp", index=prepared.index)
        assert plan.scatter_capable
        rows = sorted(r for s in plan.shards for r in s.rows)
        assert rows == list(range(len(prepared.index)))

    def test_no_index_means_no_scatter(self, dataset):
        graph, tree, _ = dataset
        plan = ShardPlanner(2).plan(tree, graph, "fp", index=None)
        assert not plan.scatter_capable
        assert all(s.rows is None for s in plan.shards)


class TestCrossEdges:
    def test_cross_table_accounts_for_every_crossing_edge(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(3).plan(tree, graph, "fp", index=prepared.index)
        owner = {}
        for s in plan.shards:
            for m in s.members:
                owner[m] = s.shard_id
        crossing = [
            (u, v, w) for u, v, w in graph.edges() if owner[u] != owner[v]
        ]
        assert sum(e.edge_count for e in plan.cross_edges) == len(crossing)
        assert sum(e.total_weight for e in plan.cross_edges) == pytest.approx(
            sum(w for _, _, w in crossing)
        )
        for edge in plan.cross_edges:
            assert edge.shard_a < edge.shard_b

    def test_single_shard_plan_has_no_cross_edges(self, dataset):
        graph, tree, prepared = dataset
        plan = ShardPlanner(1).plan(tree, graph, "fp", index=prepared.index)
        assert plan.cross_edges == ()
        assert len(plan.shards) == 1

    def test_describe_is_json_friendly(self, dataset):
        import json

        graph, tree, prepared = dataset
        plan = ShardPlanner(2).plan(tree, graph, "fp", index=prepared.index)
        doc = json.loads(json.dumps(plan.describe()))
        assert doc["scatter_capable"] is True
        assert len(doc["shards"]) == 2

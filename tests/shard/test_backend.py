"""ShardedBackend behaviour: routing, chaos recovery, deadlines, breaker feedback.

The parity suite proves a sharded answer is the unsharded answer; this
file proves the *dispatch* claims — a single-community request touches
exactly one shard, a killed worker degrades to a correct parent answer
(never a torn merge) and the pool heals, overdue work cancelled inside a
worker is counted, and an open circuit breaker inflates the cost model's
view of the broken venue so routing flows around it.
"""

import os
import signal
import time

import pytest

from repro.api.ops import encode_result
from repro.api.router import dumps
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import WorkerDeadlineCancelled
from repro.service import GMineService
from repro.service.costmodel import BREAKER_OPEN_PENALTY, CostModel
from repro.service.executors import make_backend
from repro.shard import ShardedBackend

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def data():
    dataset = generate_dblp(DBLPConfig(num_authors=180, seed=7))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=7)
    return dataset.graph, tree


def _wire(service, operation, **args):
    value = service.call(operation, **args)
    return dumps(encode_result(service.registry.get(operation), value)[0])


def _routed(service):
    return service.stats()["backend"]["routed"]


class TestRouting:
    def test_single_community_touches_exactly_one_shard(self, data):
        graph, tree = data
        with GMineService(backend="sharded:2") as service:
            service.register_tree(tree, graph=graph, name="dblp")
            node = next(iter(tree.leaves()))
            service.rwr(node.members[:1], community=node.label)
            stats = service.stats()["backend"]
            assert stats["routed"] == {
                "single_shard": 1, "scatter": 0,
                "parent": 0, "parent_fallback": 0,
            }
            busy = [s for s, n in stats["per_shard"].items() if n]
            assert len(busy) == 1
            assert stats["per_shard"][busy[0]] == 1

    def test_multi_community_path_with_one_owner_routes_point_to_point(self, data):
        graph, tree = data
        with GMineService(backend="sharded:2") as service:
            service.register_tree(tree, graph=graph, name="dblp")
            state = next(iter(service.backend._datasets.values()))
            plan = state.plan
            pair = None
            for subtree in tree.children(tree.root.node_id):
                kids = tree.children(subtree.node_id)
                if len(kids) < 2:
                    continue
                a, b = kids[0], kids[1]
                owner = plan.single_owner([a.label, b.label])
                union = set(a.members) | set(b.members)
                if owner is not None and len(union) < len(plan.shards[owner].members):
                    pair = (a, b, owner)
                    break
            assert pair is not None, "levels-3 tree must offer same-subtree siblings"
            a, b, owner = pair
            service.call(
                "query.path", path=f"community({a.label}, {b.label})/members/nodes"
            )
            stats = service.stats()["backend"]
            assert stats["routed"]["single_shard"] == 1
            assert stats["per_shard"].get(str(owner)) == 1

    def test_cross_shard_communities_stay_on_the_parent(self, data):
        graph, tree = data
        with GMineService(backend="sharded:2") as service:
            service.register_tree(tree, graph=graph, name="dblp")
            state = next(iter(service.backend._datasets.values()))
            plan = state.plan
            by_owner = {}
            for leaf in tree.leaves():
                by_owner.setdefault(plan.owner_of(leaf.label), leaf)
            owners = [o for o in by_owner if o is not None]
            assert len(owners) >= 2
            a, b = by_owner[owners[0]], by_owner[owners[1]]
            service.call(
                "query.path", path=f"community({a.label}, {b.label})/members/nodes"
            )
            routed = _routed(service)
            assert routed["single_shard"] == 0
            assert routed["parent"] == 1


class TestChaos:
    def test_killed_worker_degrades_correctly_then_heals(self, data):
        graph, tree = data
        node = next(iter(tree.leaves()))
        m = node.members
        with GMineService(backend="inline") as reference:
            reference.register_tree(tree, graph=graph, name="dblp")
            expected = [
                _wire(reference, "rwr", sources=[m[i]], community=node.label)
                for i in range(3)
            ]
        with GMineService(backend="sharded:2") as service:
            service.register_tree(tree, graph=graph, name="dblp")
            state = next(iter(service.backend._datasets.values()))
            owner = state.plan.owner_of(node.label)
            assert owner is not None

            # Healthy: point-to-point.
            got = _wire(service, "rwr", sources=[m[0]], community=node.label)
            assert got == expected[0]
            assert _routed(service)["single_shard"] == 1

            # Kill the owning shard's worker out from under the pool.
            pid = state.reports[owner]["pid"]
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)

            # Degraded: the answer comes from the parent, whole and
            # byte-identical — never a torn or failed response.
            got = _wire(service, "rwr", sources=[m[1]], community=node.label)
            assert got == expected[1]
            routed = _routed(service)
            assert routed["parent_fallback"] == 1
            assert routed["single_shard"] == 1

            # Healed: the pool was rebuilt lazily and the slice re-warmed,
            # so the next request routes point-to-point again.
            got = _wire(service, "rwr", sources=[m[2]], community=node.label)
            assert got == expected[2]
            routed = _routed(service)
            assert routed["single_shard"] == 2
            assert routed["parent_fallback"] == 1


class TestDeadlines:
    class _FakeFuture:
        def __init__(self, error=None, cancelled=False):
            self._error = error
            self._cancelled = cancelled

        def cancelled(self):
            return self._cancelled

        def exception(self):
            return self._error

    def test_worker_cancellations_are_counted(self):
        backend = ShardedBackend(shards=1)
        try:
            note = backend._note_worker_cancelled
            note(self._FakeFuture(error=WorkerDeadlineCancelled("late")))
            note(self._FakeFuture(error=None))
            note(self._FakeFuture(error=ValueError("not a deadline")))
            note(self._FakeFuture(cancelled=True))
            assert backend.stats()["deadline"]["worker_cancelled"] == 1
        finally:
            backend.close()


class TestBreakerFeedback:
    def test_penalty_steers_the_cost_model_away(self):
        model = CostModel()
        model.observe("rwr", "process", 0.001)
        model.observe("rwr", "inline", 0.002)
        venue, basis = model.choose("rwr", ["inline", "process"], "process")
        assert venue == "process"
        venue, basis = model.choose(
            "rwr", ["inline", "process"], "process",
            penalties={"process": BREAKER_OPEN_PENALTY},
        )
        assert venue == "inline"
        assert basis["penalties"] == {"process": BREAKER_OPEN_PENALTY}

    def test_auto_backend_penalises_an_open_process_breaker(self):
        backend = make_backend("auto", cost_model=CostModel())
        try:
            if backend._process is None or backend._process.breaker is None:
                pytest.skip("auto backend built without a process delegate")
            breaker = backend._process.breaker
            assert backend._venue_penalties() is None
            while breaker.state != "open":
                breaker.record_failure()
            assert backend._venue_penalties() == {
                "process": BREAKER_OPEN_PENALTY
            }
        finally:
            backend.close()

    def test_sharded_backend_breaker_short_circuits_to_parent(self, data):
        graph, tree = data
        with GMineService(backend="sharded:2") as service:
            service.register_tree(tree, graph=graph, name="dblp")
            breaker = service.backend.breaker
            while breaker.state != "open":
                breaker.record_failure()
            node = next(iter(tree.leaves()))
            service.rwr(node.members[:1], community=node.label)
            routed = _routed(service)
            assert routed["parent_fallback"] == 1
            assert routed["single_shard"] == 0

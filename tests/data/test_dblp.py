"""Unit tests for the synthetic DBLP co-authorship generator."""

import pytest

from repro.data.dblp import (
    DBLPConfig,
    generate_dblp,
    load_coauthorship_edge_list,
    small_dblp,
)
from repro.errors import DatasetError
from repro.graph.validation import validate_graph
from repro.partition.metrics import edge_cut
from repro.mining.degree import degree_sequence


class TestConfig:
    def test_defaults_validate(self):
        DBLPConfig().validate()

    def test_paper_scale_matches_paper_counts(self):
        config = DBLPConfig.paper_scale()
        assert config.num_authors == 315_688
        assert config.num_communities == 5
        assert config.sub_communities_per_community == 5
        config.validate()

    def test_invalid_configs_rejected(self):
        with pytest.raises(DatasetError):
            DBLPConfig(num_authors=3, num_communities=5).validate()
        with pytest.raises(DatasetError):
            DBLPConfig(prolific_fraction=2.0).validate()
        with pytest.raises(DatasetError):
            DBLPConfig(casual_fraction=-0.1).validate()
        with pytest.raises(DatasetError):
            DBLPConfig(year_range=(2006, 1980)).validate()
        with pytest.raises(DatasetError):
            DBLPConfig(num_communities=0).validate()


class TestGeneration:
    def test_sizes_and_validity(self, dblp_dataset):
        graph = dblp_dataset.graph
        assert graph.num_nodes == 900
        assert graph.num_edges > 900  # denser than a tree
        assert validate_graph(graph) == []

    def test_deterministic(self):
        a = small_dblp(300, seed=5)
        b = small_dblp(300, seed=5)
        assert a.num_collaborations == b.num_collaborations
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_no_self_collaborations(self, dblp_dataset):
        assert all(u != v for u, v, _ in dblp_dataset.graph.edges())

    def test_every_author_has_name_attribute(self, dblp_dataset):
        graph = dblp_dataset.graph
        for author in list(graph.nodes())[:100]:
            assert graph.get_node_attr(author, "name") == dblp_dataset.name_of(author)

    def test_edges_carry_publication_years(self, dblp_dataset):
        graph = dblp_dataset.graph
        low, high = dblp_dataset.config.year_range
        for u, v, _ in list(graph.edges())[:200]:
            attrs = graph.edge_attrs(u, v)
            assert low <= attrs["first_year"] <= attrs["last_year"] <= high

    def test_community_structure_beats_random_cut(self, dblp_dataset):
        # Cutting along the planted communities must remove far fewer edges
        # than a random balanced cut of the same arity.
        import random

        graph = dblp_dataset.graph
        planted = {node: dblp_dataset.community_of[node] for node in graph.nodes()}
        planted_cut = edge_cut(graph, planted)
        rng = random.Random(0)
        labels = list(planted.values())
        rng.shuffle(labels)
        shuffled = dict(zip(planted.keys(), labels))
        random_cut = edge_cut(graph, shuffled)
        assert planted_cut < 0.75 * random_cut

    def test_degree_distribution_is_skewed(self, dblp_dataset):
        degrees = degree_sequence(dblp_dataset.graph)
        mean_degree = sum(degrees) / len(degrees)
        assert degrees[0] > 2.5 * mean_degree  # prolific hubs exist

    def test_membership_maps_cover_all_authors(self, dblp_dataset):
        assert set(dblp_dataset.community_of) == set(dblp_dataset.graph.nodes())
        assert set(dblp_dataset.sub_community_of) == set(dblp_dataset.graph.nodes())
        communities = set(dblp_dataset.community_of.values())
        assert communities == set(range(dblp_dataset.config.num_communities))


class TestDatasetQueries:
    def test_author_id_name_round_trip(self, dblp_dataset):
        name = dblp_dataset.name_of(17)
        assert dblp_dataset.author_id(name) == 17

    def test_unknown_author_raises(self, dblp_dataset):
        with pytest.raises(DatasetError):
            dblp_dataset.author_id("Nonexistent Person")
        with pytest.raises(DatasetError):
            dblp_dataset.name_of(10**9)

    def test_most_collaborative_authors_sorted(self, dblp_dataset):
        top = dblp_dataset.most_collaborative_authors(5)
        degrees = [degree for _, _, degree in top]
        assert degrees == sorted(degrees, reverse=True)
        assert len(top) == 5


class TestRealDataLoader:
    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "coauth.tsv"
        path.write_text("# comment\n0\t1\t3\n1\t2\n0\t1\t2\nAlice\tBob\n")
        graph = load_coauthorship_edge_list(path)
        assert graph.num_nodes == 5
        assert graph.edge_weight(0, 1) == 5.0  # accumulated
        assert graph.has_edge("Alice", "Bob")

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "coauth.tsv"
        path.write_text("1\t1\n1\t2\n")
        graph = load_coauthorship_edge_list(path)
        assert not graph.has_edge(1, 1)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_coauthorship_edge_list(tmp_path / "nope.tsv")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("onlyone\n")
        with pytest.raises(DatasetError):
            load_coauthorship_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2\tnot-a-number\n")
        with pytest.raises(DatasetError):
            load_coauthorship_edge_list(path)

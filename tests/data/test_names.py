"""Unit tests for author-name generation."""

from repro.data.names import generate_author_names


class TestAuthorNames:
    def test_count_and_uniqueness(self):
        names = generate_author_names(5000, seed=1)
        assert len(names) == 5000
        assert len(set(names)) == 5000

    def test_deterministic(self):
        assert generate_author_names(200, seed=7) == generate_author_names(200, seed=7)

    def test_different_seeds_differ(self):
        assert generate_author_names(200, seed=1) != generate_author_names(200, seed=2)

    def test_names_look_like_names(self):
        for name in generate_author_names(50, seed=3):
            parts = name.split()
            assert len(parts) >= 2
            assert all(part[0].isupper() for part in parts if part[0].isalpha())

    def test_zero_names(self):
        assert generate_author_names(0) == []

    def test_large_request_still_unique(self):
        names = generate_author_names(30_000, seed=4)
        assert len(set(names)) == 30_000

"""GPath compiler tests: tree folding, scope constant-folding, fusion.

The assertions here pin the properties the service layer builds on:

* a normalized plan contains no ``Filter``/``Limit`` nodes — predicates
  are pushed into ``Expand``/``Score``/``Metrics`` and limits fuse into
  ``Score.limit``/``Collect.limit``;
* a query anchored at ``community(X)`` that never leaves its subtree
  compiles with ``community=X`` (the partition cache-key scope), while
  ``ancestors`` and ``hops`` widen the scope to the root;
* the same text always compiles to the same plan object graph — the
  determinism the fingerprint-keyed cache requires.
"""

import pickle

import pytest

from repro.errors import InvalidArgumentError, NavigationError, QueryParseError
from repro.query import compile_query, lower, normalize, parse
from repro.query.plan import (
    Collect,
    Const,
    Expand,
    Filter,
    Limit,
    Metrics,
    Score,
    Seed,
    chain,
)

pytestmark = pytest.mark.tier1


def _compile(text, tree):
    return compile_query(parse(text), tree)


class TestTreeFolding:
    def test_tree_level_nodes_fold_to_const(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        compiled = _compile(f"community({leaf.label})/ancestors/nodes", query_tree)
        assert isinstance(compiled.plan, Const)
        labels = [n.label for n in query_tree.ancestors(leaf.node_id)]
        assert compiled.plan.items == tuple(sorted(labels))

    def test_tree_level_count_folds(self, query_tree):
        compiled = _compile("descendants/count", query_tree)
        assert isinstance(compiled.plan, Const)
        assert compiled.plan.kind == "count"
        assert compiled.plan.count == query_tree.num_tree_nodes - 1

    def test_leaves_axis_folds_to_leaf_labels(self, query_tree):
        compiled = _compile("leaves/nodes", query_tree)
        assert compiled.plan.items == tuple(
            sorted(n.label for n in query_tree.leaves())
        )

    def test_members_of_whole_scope_folds_to_open_seed(
        self, query_tree, query_leaf
    ):
        leaf, _ = query_leaf
        compiled = _compile(f"community({leaf.label})/members/nodes", query_tree)
        base = chain(compiled.plan)[0]
        # The selection equals the scope's member set, so the seed is the
        # "whole subgraph" sentinel and the kernel's fast path applies.
        assert base == Seed(vertices=None)

    def test_partial_selection_folds_to_explicit_seed(self, query_tree):
        # leaves of one child under an un-anchored root: a proper subset
        child = query_tree.children(query_tree.root.node_id)[0]
        compiled = _compile(f"community({child.label})/hops(1)/count", query_tree)
        base = chain(compiled.plan)[0]
        assert base.vertices == tuple(sorted(child.members))

    def test_unknown_community_is_navigation_error(self, query_tree):
        with pytest.raises(NavigationError, match="no community"):
            _compile("community(never-built)/members", query_tree)

    def test_no_tree_is_invalid_argument(self):
        with pytest.raises(InvalidArgumentError, match="requires a dataset tree"):
            compile_query(parse("members/count"), None)


class TestScopeConstantFolding:
    def test_anchored_descendant_closed_query_keeps_its_scope(
        self, query_tree, query_leaf
    ):
        leaf, members = query_leaf
        for text in (
            f"community({leaf.label})/members/nodes",
            f"community({leaf.label})/members/rwr(sources=[{members[0]}])",
            f"community({leaf.label})/metrics",
            f"community({leaf.label})/members/count",
        ):
            assert _compile(text, query_tree).community == leaf.label, text

    def test_hops_widen_the_scope_to_the_root(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/hops(1)/count", query_tree
        )
        assert compiled.community is None
        # ...and the seed stays the anchored community's members
        assert chain(compiled.plan)[0].vertices == tuple(sorted(leaf.members))

    def test_ancestors_widen_the_scope(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        compiled = _compile(
            f"community({leaf.label})/ancestors/members/count", query_tree
        )
        assert compiled.community is None

    def test_unanchored_query_has_no_scope(self, query_tree):
        assert _compile("members/count", query_tree).community is None

    def test_id_and_label_anchors_agree(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        by_label = _compile(f"community({leaf.label})/members/nodes", query_tree)
        by_id = _compile(f"community({leaf.node_id})/members/nodes", query_tree)
        assert by_label == by_id


class TestNormalization:
    def test_no_filter_or_limit_survives(self, query_tree, query_leaf):
        leaf, members = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/edges[weight > 0.5]/hops(2)/"
            f"rwr(sources=[{members[0]}])/top(5)",
            query_tree,
        )
        kinds = {type(node) for node in chain(compiled.plan)}
        assert Filter not in kinds
        assert Limit not in kinds

    def test_predicates_pushed_into_expand_and_score(
        self, query_tree, query_leaf
    ):
        leaf, members = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/edges[weight > 0.5]/hops(2)/"
            f"rwr(sources=[{members[0]}])",
            query_tree,
        )
        nodes = chain(compiled.plan)
        expand = next(n for n in nodes if isinstance(n, Expand))
        score = next(n for n in nodes if isinstance(n, Score))
        assert expand.predicates and expand.predicates[0].attr == "weight"
        assert score.predicates == expand.predicates

    def test_top_fuses_into_score_limit(self, query_tree, query_leaf):
        leaf, members = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/rwr(sources=[{members[0]}])/top(7)",
            query_tree,
        )
        score = chain(compiled.plan)[-1]
        assert isinstance(score, Score)
        assert score.limit == 7

    def test_top_fuses_into_collect_limit(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/top(3)", query_tree
        )
        collect = chain(compiled.plan)[-1]
        assert isinstance(collect, Collect)
        assert collect.kind == "nodes"
        assert collect.limit == 3

    def test_metrics_terminal_absorbs_predicates(self, query_tree, query_leaf):
        leaf, _ = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/edges[weight >= 1]/metrics",
            query_tree,
        )
        metrics = chain(compiled.plan)[-1]
        assert isinstance(metrics, Metrics)
        assert metrics.predicates[0].op == ">="

    def test_normalize_is_idempotent(self, query_tree, query_leaf):
        leaf, members = query_leaf
        lowered = lower(
            parse(
                f"community({leaf.label})/members/edges[weight > 0]/"
                f"rwr(sources=[{members[0]}])/top(4)"
            ),
            query_tree,
        )
        once = normalize(lowered.plan)
        assert normalize(once) == once


class TestDeterminism:
    def test_same_text_compiles_to_equal_plans(self, query_tree, query_leaf):
        leaf, members = query_leaf
        text = (
            f"community({leaf.label})/members/hops(2)/"
            f"rwr(sources=[{members[1]}, {members[0]}])/top(5)"
        )
        first = _compile(text, query_tree)
        second = _compile(text, query_tree)
        assert first == second
        assert repr(first.plan) == repr(second.plan)

    def test_equivalent_spellings_share_one_plan(self, query_tree, query_leaf):
        leaf, members = query_leaf
        a = _compile(
            f"community({leaf.label})/members/"
            f"rwr(sources=[{members[0]}, {members[1]}])",
            query_tree,
        )
        b = _compile(
            f" community( {leaf.label} ) / members / "
            f"rwr(sources=[{members[1]}, {members[0]}, {members[0]}]) ",
            query_tree,
        )
        assert a == b
        assert repr(a.plan) == repr(b.plan)

    def test_plans_are_picklable(self, query_tree, query_leaf):
        leaf, members = query_leaf
        compiled = _compile(
            f"community({leaf.label})/members/edges[weight > 0]/"
            f"rwr(sources=[{members[0]}])/top(5)",
            query_tree,
        )
        assert pickle.loads(pickle.dumps(compiled.plan)) == compiled.plan

    def test_parse_errors_propagate_unchanged(self, query_tree):
        with pytest.raises(QueryParseError):
            _compile("community(", query_tree)

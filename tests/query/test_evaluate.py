"""GPath evaluator tests: plan semantics on a handmade graph.

A small graph with labelled edge attributes makes every expansion and
filter outcome checkable by hand; the caveman fixture covers the compiled
end-to-end path.  The headline property: evaluating the *lowered* chain
(explicit ``Filter``/``Limit`` nodes) and the *normalized* chain (fused)
always produces the same result — fusion is a pure optimisation.
"""

import pytest

from repro.errors import InvalidArgumentError
from repro.graph.graph import Graph
from repro.mining.metrics_suite import compute_subgraph_metrics
from repro.mining.rwr import steady_state_rwr
from repro.query import compile_query, evaluate_path, lower, normalize, parse
from repro.query.plan import (
    Collect,
    EdgePredicate,
    Expand,
    Filter,
    Limit,
    Metrics,
    Score,
    Seed,
)

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def attr_graph():
    """A path a-b-c-d-e with a weighted shortcut and a typed attribute."""
    graph = Graph(name="attrs")
    graph.add_edge("a", "b", weight=1.0, kind="road")
    graph.add_edge("b", "c", weight=2.0, kind="road")
    graph.add_edge("c", "d", weight=3.0, kind="rail")
    graph.add_edge("d", "e", weight=1.0, kind="rail")
    graph.add_edge("a", "e", weight=9.0, kind="ferry")
    return graph


class TestPlanSemantics:
    def test_seed_none_selects_every_vertex(self, attr_graph):
        result = evaluate_path(attr_graph, Collect(child=Seed(), kind="nodes"))
        assert result.items == ("a", "b", "c", "d", "e")
        assert result.count == 5

    def test_explicit_seed_intersects_defensively(self, attr_graph):
        plan = Collect(
            child=Seed(vertices=("a", "ghost", "c")), kind="nodes"
        )
        result = evaluate_path(attr_graph, plan)
        assert result.items == ("a", "c")

    def test_expand_walks_bfs_hops(self, attr_graph):
        plan = Collect(
            child=Expand(child=Seed(vertices=("a",)), hops=2), kind="nodes"
        )
        # 1 hop: b, e (shortcut); 2 hops: c, d — everything
        result = evaluate_path(attr_graph, plan)
        assert result.items == ("a", "b", "c", "d", "e")

    def test_expand_respects_edge_predicates(self, attr_graph):
        pred = EdgePredicate(attr="weight", op="<=", value=2.0)
        plan = Collect(
            child=Expand(child=Seed(vertices=("a",)), hops=2,
                         predicates=(pred,)),
            kind="nodes",
        )
        # the a-e ferry (weight 9) and c-d rail (weight 3) are barred:
        # a -> b -> c and no further
        result = evaluate_path(attr_graph, plan)
        assert result.items == ("a", "b", "c")

    def test_string_attribute_predicates(self, attr_graph):
        pred = EdgePredicate(attr="kind", op="==", value="road")
        plan = Collect(
            child=Expand(child=Seed(vertices=("e",)), hops=3,
                         predicates=(pred,)),
            kind="nodes",
        )
        # every edge out of e is rail/ferry: expansion stalls immediately
        result = evaluate_path(attr_graph, plan)
        assert result.items == ("e",)

    def test_missing_attribute_fails_the_edge(self, attr_graph):
        pred = EdgePredicate(attr="tolls", op="==", value=0)
        plan = Collect(
            child=Expand(child=Seed(vertices=("a",)), hops=1,
                         predicates=(pred,)),
            kind="nodes",
        )
        assert evaluate_path(attr_graph, plan).items == ("a",)

    def test_incomparable_types_fail_the_edge(self, attr_graph):
        pred = EdgePredicate(attr="kind", op="<", value=5)
        plan = Collect(
            child=Expand(child=Seed(vertices=("a",)), hops=1,
                         predicates=(pred,)),
            kind="nodes",
        )
        assert evaluate_path(attr_graph, plan).items == ("a",)

    def test_count_terminal(self, attr_graph):
        plan = Collect(
            child=Expand(child=Seed(vertices=("a",)), hops=1), kind="count"
        )
        assert evaluate_path(attr_graph, plan).count == 3

    def test_score_matches_direct_rwr(self, attr_graph):
        plan = Score(child=Seed(), sources=("a",), restart=0.15)
        result = evaluate_path(attr_graph, plan)
        direct = steady_state_rwr(
            attr_graph, ["a"], restart_probability=0.15, solver="power"
        )
        assert result.kind == "scores"
        assert result.converged is direct.converged
        expected = direct.top(len(direct.scores))
        assert result.scores == tuple((n, float(s)) for n, s in expected)

    def test_score_limit_truncates_but_count_stays_total(self, attr_graph):
        plan = Score(child=Seed(), sources=("a",), restart=0.15, limit=2)
        result = evaluate_path(attr_graph, plan)
        assert len(result.scores) == 2
        assert result.count == 5

    def test_score_missing_source_is_invalid_argument(self, attr_graph):
        plan = Score(
            child=Seed(vertices=("a", "b")), sources=("e",), restart=0.15
        )
        with pytest.raises(InvalidArgumentError, match="sources not in"):
            evaluate_path(attr_graph, plan)

    def test_metrics_matches_direct_suite(self, attr_graph):
        result = evaluate_path(attr_graph, Metrics(child=Seed()))
        suite = compute_subgraph_metrics(
            attr_graph, hop_sample_size=None, pagerank_damping=0.85,
            top_k=10, seed=0,
        )
        assert result.kind == "metrics"
        assert result.metrics == suite.as_dict()

    def test_induced_subgraph_drops_failing_edges(self, attr_graph):
        # scoring over <=2 edges must not leak weight through the ferry
        pred = EdgePredicate(attr="weight", op="<=", value=2.0)
        plan = Score(
            child=Seed(vertices=("a", "b", "e")),
            sources=("a",), restart=0.15, predicates=(pred,),
        )
        result = evaluate_path(attr_graph, plan)
        scores = dict(result.scores)
        # e is only reachable via the barred ferry: isolated, zero mass
        assert scores["e"] == 0.0
        assert scores["b"] > 0.0


class TestLoweredNormalizedParity:
    CASES = [
        "members/nodes",
        "members/count",
        "members/top(4)",
        "members/edges[weight > 1]/hops(2)/count",
        "members/hops(1)/edges[weight <= 2]/hops(1)/nodes",
    ]

    @pytest.mark.parametrize("suffix", CASES)
    def test_lowered_equals_normalized(self, query_graph, query_tree,
                                       query_leaf, suffix):
        leaf, _ = query_leaf
        query = parse(f"community({leaf.label})/{suffix}")
        lowered = lower(query, query_tree)
        assert evaluate_path(query_graph, lowered.plan) == evaluate_path(
            query_graph, normalize(lowered.plan)
        )

    def test_lowered_equals_normalized_for_scoring(
        self, query_graph, query_tree, query_leaf
    ):
        leaf, members = query_leaf
        query = parse(
            f"community({leaf.label})/members/hops(1)/"
            f"rwr(sources=[{members[0]}])/top(6)"
        )
        lowered = lower(query, query_tree)
        assert evaluate_path(query_graph, lowered.plan) == evaluate_path(
            query_graph, normalize(lowered.plan)
        )

    def test_filter_and_limit_nodes_evaluate_directly(self, attr_graph):
        # the evaluator accepts the lowered shapes verbatim
        pred = EdgePredicate(attr="weight", op="<=", value=2.0)
        lowered = Limit(
            child=Collect(
                child=Expand(
                    child=Filter(child=Seed(vertices=("a",)),
                                 predicates=(pred,)),
                    hops=2,
                ),
                kind="nodes",
            ),
            count=2,
        )
        result = evaluate_path(attr_graph, lowered)
        assert result.items == ("a", "b")
        assert result.count == 3


class TestCompiledEndToEnd:
    def test_compiled_query_over_community_subgraph(
        self, query_graph, query_tree, query_leaf
    ):
        leaf, _ = query_leaf
        compiled = compile_query(
            parse(f"community({leaf.label})/members/nodes"), query_tree
        )
        assert compiled.community == leaf.label
        subgraph = leaf.subgraph if leaf.subgraph is not None else query_graph
        result = evaluate_path(subgraph, compiled.plan)
        assert set(result.items) == set(leaf.members)

    def test_const_plans_ignore_the_subgraph(self, query_graph, query_tree):
        compiled = compile_query(parse("leaves/count"), query_tree)
        result = evaluate_path(query_graph, compiled.plan)
        assert result.count == len(query_tree.leaves())

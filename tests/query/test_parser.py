"""GPath parser tests: grammar, canonicalization, spans, structure rules.

The parser is the protocol surface of the query subsystem: every error it
raises must carry the source text and a half-open character span (that is
what the wire layer forwards as structured 400 details), and its canonical
unparse must be a fixed point (that is what the registry cache-keys on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryParseError
from repro.query import canonical_text, parse, unparse
from repro.query.ast import (
    AxisStep,
    CommunityStep,
    CountStep,
    EdgeFilterStep,
    HopsStep,
    MetricsStep,
    NodesStep,
    RwrStep,
    TopStep,
)

pytestmark = pytest.mark.tier1


class TestGrammar:
    def test_full_pipeline_parses(self):
        query = parse(
            'community(s0.1)/descendants/members/hops(2)/'
            'edges[weight >= 2.5]/rwr(sources=[3, 7], restart=0.2)/top(10)'
        )
        kinds = [type(step).__name__ for step in query.steps]
        assert kinds == [
            "CommunityStep", "AxisStep", "AxisStep", "HopsStep",
            "EdgeFilterStep", "RwrStep", "TopStep",
        ]

    def test_community_accepts_int_name_and_string(self):
        assert parse("community(7)/members").steps[0].ref == 7
        assert parse("community(s0.1)/members").steps[0].ref == "s0.1"
        assert parse('community("odd label!")/members').steps[0].ref == (
            "odd label!"
        )

    def test_neighbors_desugars_to_hops_one(self):
        sugar = parse("members/neighbors/count")
        plain = parse("members/hops(1)/count")
        assert unparse(sugar) == unparse(plain)
        assert isinstance(sugar.steps[1], HopsStep)
        assert sugar.steps[1].hops == 1

    def test_rwr_sources_dedup_and_order_normalise(self):
        spellings = [
            "members/rwr(sources=[3, 1, 2])",
            "members/rwr(sources=[2, 3, 1, 1])",
            "members/rwr(sources=[1, 2, 3, 2])",
        ]
        assert len({canonical_text(s) for s in spellings}) == 1

    def test_whitespace_is_insignificant(self):
        dense = canonical_text("community(s0)/members/rwr(sources=[1,2])")
        spaced = canonical_text(
            "  community( s0 ) / members / rwr( sources = [ 1 , 2 ] )  "
        )
        assert dense == spaced

    def test_edge_filter_operators(self):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            step = parse(f"members/edges[weight {op} 2]/count").steps[1]
            assert isinstance(step, EdgeFilterStep)
            assert step.op == op

    def test_quoted_string_escapes_round_trip(self):
        text = 'community("a \\"quoted\\" \\\\ label")/members'
        query = parse(text)
        assert query.steps[0].ref == 'a "quoted" \\ label'
        assert parse(unparse(query)).steps[0].ref == query.steps[0].ref

    def test_restart_bounds(self):
        assert parse("members/rwr(sources=[1], restart=0.5)").steps[1].restart == 0.5
        with pytest.raises(QueryParseError, match="strictly between 0 and 1"):
            parse("members/rwr(sources=[1], restart=1.0)")
        with pytest.raises(QueryParseError, match="strictly between 0 and 1"):
            parse("members/rwr(sources=[1], restart=0)")

    def test_counts_must_be_positive(self):
        with pytest.raises(QueryParseError, match="k >= 1"):
            parse("members/hops(0)")
        with pytest.raises(QueryParseError, match="k >= 1"):
            parse("members/rwr(sources=[1])/top(0)")


class TestErrorSpans:
    def _span_of(self, text):
        with pytest.raises(QueryParseError) as excinfo:
            parse(text)
        error = excinfo.value
        assert error.source == text
        assert error.span is not None
        start, end = error.span
        assert 0 <= start <= end <= len(text)
        return error

    def test_unknown_step_points_at_the_name(self):
        error = self._span_of("community(s0)/teleport")
        start, end = error.span
        assert "community(s0)/teleport"[start:end] == "teleport"
        assert "unknown step" in str(error)

    def test_unexpected_character_points_at_it(self):
        error = self._span_of("members/edges[weight ~ 2]")
        start, end = error.span
        assert "members/edges[weight ~ 2]"[start:end] == "~"

    def test_missing_paren_points_at_the_break(self):
        error = self._span_of("community(/members")
        assert error.span == (10, 11)

    def test_unterminated_string_spans_to_the_end(self):
        text = 'community("never closed'
        error = self._span_of(text)
        assert error.span[1] == len(text)
        assert "unterminated" in str(error)

    def test_truncated_query_reports_end_of_input(self):
        error = self._span_of("members/rwr(sources=[1]")
        assert error.span[0] == len("members/rwr(sources=[1]")

    def test_empty_query_rejected(self):
        with pytest.raises(QueryParseError, match="empty query"):
            parse("   ")

    def test_non_string_rejected(self):
        with pytest.raises(QueryParseError, match="must be a string"):
            parse(["community(s0)"])

    def test_wire_details_shape(self):
        error = self._span_of("community(s0)/bogus")
        details = error.wire_details()
        assert details["source"] == "community(s0)/bogus"
        assert details["span"] == [14, 19]


class TestStructureRules:
    def test_community_only_first(self):
        with pytest.raises(QueryParseError, match="first step"):
            parse("members/community(s0)")

    def test_tree_axes_invalid_after_vertex_conversion(self):
        for text in (
            "members/hops(1)/descendants",
            "community(s0)/members/leaves",
            "members/edges[weight > 1]/ancestors",
        ):
            with pytest.raises(QueryParseError, match="not valid after"):
                parse(text)

    def test_rwr_followed_only_by_top(self):
        parse("members/rwr(sources=[1])/top(3)")  # legal
        with pytest.raises(QueryParseError, match="only be followed by top"):
            parse("members/rwr(sources=[1])/count")
        with pytest.raises(QueryParseError, match="only be followed by top"):
            parse("members/rwr(sources=[1])/hops(1)")

    def test_terminals_must_be_final(self):
        for terminal in ("metrics", "count", "nodes", "top(2)"):
            with pytest.raises(QueryParseError, match="final step"):
                parse(f"members/{terminal}/hops(1)")

    def test_rwr_requires_sources(self):
        with pytest.raises(QueryParseError, match="at least one source"):
            parse("members/rwr(sources=[])")
        with pytest.raises(QueryParseError, match="sources"):
            parse("members/rwr(restart=0.5)")


# ----------------------------------------------------------------------- #
# hypothesis: canonical text is a fixed point of parse -> unparse
# ----------------------------------------------------------------------- #

_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.\-]{0,8}", fullmatch=True)
_literals = st.one_of(
    st.integers(-999, 999),
    _names,
    st.text(
        st.characters(min_codepoint=32, max_codepoint=126), max_size=8
    ).filter(lambda s: s.strip()),
)


@st.composite
def gpath_queries(draw):
    """Structurally valid GPath source texts, assembled by the rules."""
    parts = []
    if draw(st.booleans()):
        parts.append(f"community({_render(draw(_literals))})")
    for _ in range(draw(st.integers(0, 2))):
        parts.append(draw(st.sampled_from(["descendants", "leaves"])))
    parts.append("members")
    for _ in range(draw(st.integers(0, 2))):
        if draw(st.booleans()):
            parts.append(f"hops({draw(st.integers(1, 3))})")
        else:
            op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
            value = _render(draw(_literals))
            parts.append(f"edges[{draw(_names)} {op} {value}]")
    terminal = draw(st.sampled_from(["nodes", "count", "metrics", "rwr", "top"]))
    if terminal == "rwr":
        sources = draw(st.lists(st.integers(0, 99), min_size=1, max_size=4))
        rendered = ", ".join(str(s) for s in sources)
        parts.append(f"rwr(sources=[{rendered}])")
        if draw(st.booleans()):
            parts.append(f"top({draw(st.integers(1, 20))})")
    elif terminal == "top":
        parts.append(f"top({draw(st.integers(1, 20))})")
    elif terminal != "nodes" or draw(st.booleans()):
        parts.append(terminal)
    return "/".join(parts)


def _render(value):
    if isinstance(value, int):
        return str(value)
    import re

    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.\-]*", value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


class TestCanonicalProperties:
    @settings(max_examples=120, derandomize=True, deadline=None)
    @given(source=gpath_queries())
    def test_canonical_text_is_a_fixed_point(self, source):
        canonical = canonical_text(source)
        assert canonical_text(canonical) == canonical

    @settings(max_examples=120, derandomize=True, deadline=None)
    @given(source=gpath_queries())
    def test_parse_unparse_parse_is_stable(self, source):
        first = parse(source)
        second = parse(unparse(first))
        assert unparse(second) == unparse(first)
        assert [type(s) for s in second.steps] == [
            type(s) for s in first.steps
        ]

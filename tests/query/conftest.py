"""Shared fixtures for the GPath subsystem tests.

One small caveman graph with obvious community structure, its G-Tree, and
a few derived handles (largest leaf, two of its members) — enough to
exercise tree folding, scope constant-folding and plan evaluation without
touching the service layer.
"""

import pytest

from repro.core.builder import build_gtree
from repro.graph.generators import connected_caveman


@pytest.fixture(scope="module")
def query_graph():
    return connected_caveman(6, 8, seed=5)


@pytest.fixture(scope="module")
def query_tree(query_graph):
    return build_gtree(query_graph, fanout=3, levels=3, seed=5)


@pytest.fixture(scope="module")
def query_leaf(query_tree):
    """The largest leaf community and two of its members."""
    leaf = max(query_tree.leaves(), key=lambda node: node.size)
    return leaf, sorted(leaf.members)[:2]

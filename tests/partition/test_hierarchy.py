"""Unit tests for recursive hierarchical partitioning."""

import pytest

from repro.errors import PartitionError
from repro.graph.generators import connected_caveman, erdos_renyi
from repro.partition.hierarchy import (
    flat_partition_from_hierarchy,
    hierarchy_summary,
    recursive_partition,
)
from repro.partition.kway import KWayOptions
from repro.partition.metrics import validate_assignment


@pytest.fixture(scope="module")
def hierarchy():
    graph = erdos_renyi(300, 0.03, seed=40)
    return graph, recursive_partition(
        graph, fanout=3, levels=3, options=KWayOptions(seed=40)
    )


class TestRecursivePartition:
    def test_root_holds_every_vertex(self, hierarchy):
        graph, tree = hierarchy
        assert set(tree.root.members) == set(graph.nodes())

    def test_children_partition_parent(self, hierarchy):
        _, tree = hierarchy
        for node in tree.all_nodes():
            if node.is_leaf:
                continue
            union = []
            for child in node.children:
                union.extend(child.members)
            assert sorted(union, key=repr) == sorted(node.members, key=repr)
            # Disjointness: total count equals union size.
            assert len(union) == len(set(union))

    def test_levels_and_fanout(self, hierarchy):
        _, tree = hierarchy
        assert tree.levels == 3
        assert tree.fanout == 3
        assert all(len(node.children) <= 3 for node in tree.all_nodes())

    def test_leaf_count_matches_fanout_power(self, hierarchy):
        _, tree = hierarchy
        # 3-way, 3 levels -> at most 3^2 = 9 leaves (fewer only if a branch stopped early).
        assert 1 <= len(tree.leaf_communities()) <= 9

    def test_labels_follow_paper_convention(self, hierarchy):
        _, tree = hierarchy
        assert tree.root.label == "s0"
        for child in tree.root.children:
            assert child.label.startswith("s0")
            assert len(child.label) == len(tree.root.label) + 1

    def test_min_community_size_stops_recursion(self):
        graph = connected_caveman(3, 6, seed=0)
        tree = recursive_partition(
            graph, fanout=2, levels=6, min_community_size=10,
            options=KWayOptions(seed=1),
        )
        for leaf in tree.leaf_communities():
            # A leaf either met the size bound or its parent could not split further.
            assert len(leaf.members) <= 18

    def test_invalid_parameters(self):
        graph = erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(PartitionError):
            recursive_partition(graph, fanout=1, levels=2)
        with pytest.raises(PartitionError):
            recursive_partition(graph, fanout=2, levels=0)

    def test_custom_partition_fn(self):
        graph = erdos_renyi(60, 0.1, seed=2)

        def halves(subgraph, k):
            nodes = list(subgraph.nodes())
            return {node: index % k for index, node in enumerate(nodes)}

        tree = recursive_partition(graph, fanout=2, levels=2, partition_fn=halves)
        assert len(tree.root.children) == 2


class TestHierarchyQueries:
    def test_membership_at_level_covers_graph(self, hierarchy):
        graph, tree = hierarchy
        membership = tree.membership_at_level(1)
        assert set(membership) == set(graph.nodes())

    def test_flat_partition_is_valid(self, hierarchy):
        graph, tree = hierarchy
        flat = flat_partition_from_hierarchy(tree, 1)
        k = len(set(flat.values()))
        validate_assignment(graph, flat, k)

    def test_summary_fields(self, hierarchy):
        _, tree = hierarchy
        summary = hierarchy_summary(tree)
        assert summary["leaf_communities"] == len(tree.leaf_communities())
        assert summary["paper_communities"] == summary["leaf_communities"] + 1
        assert summary["min_leaf_size"] <= summary["mean_leaf_size"] <= summary["max_leaf_size"]

    @pytest.mark.slow
    def test_paper_parameterisation_bookkeeping(self):
        # fanout 5, levels 3 on a graph big enough to split fully: 25 leaves,
        # 'paper count' 26 (the paper's 5 levels give 5^4 + 1 = 626).
        graph = erdos_renyi(600, 0.02, seed=41)
        tree = recursive_partition(graph, fanout=5, levels=3, options=KWayOptions(seed=41))
        assert len(tree.leaf_communities()) == 25
        assert tree.paper_community_count() == 26

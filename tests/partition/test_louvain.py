"""Unit tests for Louvain modularity community detection."""

import pytest

from repro.graph.generators import complete_graph, connected_caveman, erdos_renyi
from repro.graph.graph import Graph
from repro.partition.hierarchy import recursive_partition
from repro.partition.louvain import (
    compare_partitions,
    louvain_communities,
    louvain_partition_fn,
)
from repro.partition.metrics import groups, modularity, validate_assignment


class TestLouvainCommunities:
    def test_covers_every_vertex(self, random_graph):
        assignment = louvain_communities(random_graph, seed=1)
        assert set(assignment) == set(random_graph.nodes())

    def test_community_ids_are_dense(self, random_graph):
        assignment = louvain_communities(random_graph, seed=1)
        ids = set(assignment.values())
        assert ids == set(range(len(ids)))

    def test_recovers_caveman_cliques(self):
        graph = connected_caveman(5, 8, seed=0)
        assignment = louvain_communities(graph, seed=2)
        # Each clique should end up in a single community.
        for clique in range(5):
            members = {assignment[clique * 8 + i] for i in range(8)}
            assert len(members) == 1
        assert modularity(graph, assignment) > 0.6

    def test_positive_modularity_on_planted_structure(self):
        graph = connected_caveman(4, 10, seed=0)
        assignment = louvain_communities(graph, seed=3)
        random_assignment = {node: node % 4 for node in graph.nodes()}
        result = compare_partitions(graph, assignment, random_assignment)
        assert result["modularity_a"] > result["modularity_b"]

    def test_complete_graph_single_community(self):
        graph = complete_graph(12)
        assignment = louvain_communities(graph, seed=1)
        assert len(set(assignment.values())) == 1

    def test_edgeless_graph(self):
        graph = Graph()
        graph.add_nodes_from(range(5))
        assignment = louvain_communities(graph, seed=1)
        assert set(assignment.values()) == {0}

    def test_deterministic_given_seed(self, random_graph):
        assert louvain_communities(random_graph, seed=9) == louvain_communities(
            random_graph, seed=9
        )


class TestLouvainPartitionFn:
    def test_produces_exactly_k_parts(self):
        graph = connected_caveman(6, 8, seed=0)
        partition = louvain_partition_fn(seed=1)
        for k in (2, 3, 4):
            assignment = partition(graph, k)
            validate_assignment(graph, assignment, k)
            assert all(part for part in groups(assignment, k))

    def test_plugs_into_recursive_partition(self):
        graph = erdos_renyi(120, 0.08, seed=10)
        hierarchy = recursive_partition(
            graph, fanout=3, levels=3, partition_fn=louvain_partition_fn(seed=4)
        )
        assert set(hierarchy.root.members) == set(graph.nodes())
        assert 1 <= len(hierarchy.root.children) <= 3

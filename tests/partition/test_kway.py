"""Unit tests for k-way partitioning and its baselines."""

import pytest

from repro.errors import PartitionError
from repro.graph.generators import connected_caveman, erdos_renyi, grid_2d
from repro.graph.graph import Graph
from repro.partition.kway import KWayOptions, bfs_kway, kway_partition, random_kway
from repro.partition.metrics import balance, edge_cut, part_sizes, validate_assignment


class TestKWayPartition:
    def test_all_vertices_assigned_and_valid(self, random_graph):
        assignment = kway_partition(random_graph, 4, KWayOptions(seed=1))
        validate_assignment(random_graph, assignment, 4)

    def test_k_equal_one(self, random_graph):
        assignment = kway_partition(random_graph, 1)
        assert set(assignment.values()) == {0}

    def test_k_two_matches_bisection_contract(self, random_graph):
        assignment = kway_partition(random_graph, 2, KWayOptions(seed=2))
        assert set(assignment.values()) == {0, 1}

    def test_every_part_non_empty(self):
        graph = erdos_renyi(60, 0.08, seed=30)
        for k in (3, 5, 7):
            assignment = kway_partition(graph, k, KWayOptions(seed=3))
            sizes = part_sizes(assignment, k)
            assert all(size > 0 for size in sizes), (k, sizes)

    def test_balance_within_tolerance(self):
        graph = erdos_renyi(200, 0.04, seed=31)
        for k in (3, 5):
            assignment = kway_partition(graph, k, KWayOptions(seed=4))
            assert balance(assignment, k) <= 1.35

    def test_recovers_caveman_communities(self):
        graph = connected_caveman(5, 12, seed=0)
        assignment = kway_partition(graph, 5, KWayOptions(seed=5))
        # Ideal cut severs only the 5 ring edges; allow a little slack.
        assert edge_cut(graph, assignment) <= 10.0

    def test_beats_random_and_bfs_baselines(self):
        graph = connected_caveman(6, 10, seed=0)
        ours = edge_cut(graph, kway_partition(graph, 3, KWayOptions(seed=6)))
        rand = edge_cut(graph, random_kway(graph, 3, seed=6))
        bfs = edge_cut(graph, bfs_kway(graph, 3))
        assert ours < rand
        assert ours <= bfs + 1e-9

    def test_deterministic_given_seed(self, random_graph):
        a = kway_partition(random_graph, 3, KWayOptions(seed=7))
        b = kway_partition(random_graph, 3, KWayOptions(seed=7))
        assert a == b

    def test_non_power_of_two_k(self):
        graph = grid_2d(9, 9)
        assignment = kway_partition(graph, 5, KWayOptions(seed=8))
        validate_assignment(graph, assignment, 5)
        assert balance(assignment, 5) <= 1.4

    def test_invalid_k_raises(self, random_graph):
        with pytest.raises(PartitionError):
            kway_partition(random_graph, 0)

    def test_more_parts_than_vertices_raises(self):
        graph = Graph()
        graph.add_edge(1, 2)
        with pytest.raises(PartitionError):
            kway_partition(graph, 5)


class TestBaselines:
    def test_random_kway_balanced(self, random_graph):
        assignment = random_kway(random_graph, 4, seed=1)
        sizes = part_sizes(assignment, 4)
        assert max(sizes) - min(sizes) <= 1

    def test_random_kway_invalid_k(self, random_graph):
        with pytest.raises(PartitionError):
            random_kway(random_graph, 0)

    def test_bfs_kway_covers_graph(self, caveman_graph):
        assignment = bfs_kway(caveman_graph, 3)
        validate_assignment(caveman_graph, assignment, 3)

    def test_bfs_kway_handles_disconnected_graph(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(10, 11)
        graph.add_node(99)
        assignment = bfs_kway(graph, 2)
        assert len(assignment) == 5

    def test_bfs_kway_empty_graph(self):
        assert bfs_kway(Graph(), 3) == {}

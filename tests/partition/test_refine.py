"""Unit tests for FM bisection refinement and greedy k-way refinement."""

import pytest

from repro.graph.generators import connected_caveman, erdos_renyi
from repro.graph.graph import Graph
from repro.partition.kway import random_kway
from repro.partition.metrics import balance, edge_cut
from repro.partition.multilevel import random_bisection
from repro.partition.refine import fm_refine_bisection, greedy_kway_refine


def unit_weights(graph):
    return {node: 1.0 for node in graph.nodes()}


class TestFMRefine:
    def test_never_increases_cut(self):
        graph = erdos_renyi(120, 0.06, seed=11)
        start = random_bisection(graph, seed=0)
        refined = fm_refine_bisection(graph, start, unit_weights(graph))
        assert edge_cut(graph, refined) <= edge_cut(graph, start)

    def test_substantially_improves_random_split_on_caveman(self):
        graph = connected_caveman(2, 15, seed=0)
        start = random_bisection(graph, seed=1)
        refined = fm_refine_bisection(graph, start, unit_weights(graph))
        assert edge_cut(graph, refined) < edge_cut(graph, start)

    def test_does_not_mutate_input(self):
        graph = erdos_renyi(50, 0.1, seed=12)
        start = random_bisection(graph, seed=2)
        snapshot = dict(start)
        fm_refine_bisection(graph, start, unit_weights(graph))
        assert start == snapshot

    def test_balance_respected(self):
        graph = erdos_renyi(100, 0.08, seed=13)
        start = random_bisection(graph, seed=3)
        refined = fm_refine_bisection(
            graph, start, unit_weights(graph), balance_tolerance=1.1
        )
        assert balance(refined, 2) <= 1.15

    def test_already_optimal_partition_untouched(self):
        # Two disjoint cliques, perfectly split: the cut is zero and must stay zero.
        graph = Graph()
        for base in (0, 10):
            for i in range(5):
                for j in range(i + 1, 5):
                    graph.add_edge(base + i, base + j)
        start = {node: 0 if node < 10 else 1 for node in graph.nodes()}
        refined = fm_refine_bisection(graph, start, unit_weights(graph))
        assert edge_cut(graph, refined) == 0.0

    def test_respects_target_fraction(self):
        graph = erdos_renyi(90, 0.08, seed=14)
        start = {node: (0 if index < 30 else 1) for index, node in enumerate(graph.nodes())}
        refined = fm_refine_bisection(
            graph, start, unit_weights(graph), target_fraction=1.0 / 3.0
        )
        size0 = sum(1 for part in refined.values() if part == 0)
        assert size0 <= 0.40 * graph.num_nodes


class TestGreedyKWayRefine:
    def test_never_increases_cut(self):
        graph = erdos_renyi(150, 0.05, seed=15)
        start = random_kway(graph, 4, seed=0)
        refined = greedy_kway_refine(graph, start, 4)
        assert edge_cut(graph, refined) <= edge_cut(graph, start)

    def test_part_ids_stay_in_range(self):
        graph = erdos_renyi(80, 0.08, seed=16)
        refined = greedy_kway_refine(graph, random_kway(graph, 3, seed=1), 3)
        assert set(refined.values()) <= {0, 1, 2}

    def test_balance_tolerance_respected(self):
        graph = connected_caveman(6, 8, seed=0)
        start = random_kway(graph, 3, seed=2)
        refined = greedy_kway_refine(graph, start, 3, balance_tolerance=1.1)
        assert balance(refined, 3) <= 1.25  # small slack for integer rounding

    def test_input_not_mutated(self):
        graph = erdos_renyi(60, 0.1, seed=17)
        start = random_kway(graph, 3, seed=3)
        snapshot = dict(start)
        greedy_kway_refine(graph, start, 3)
        assert start == snapshot

"""Unit tests for partition quality metrics."""

import pytest

from repro.errors import InvalidPartitionError
from repro.graph.generators import complete_graph, connected_caveman
from repro.graph.graph import Graph
from repro.partition.metrics import (
    assignment_from_groups,
    balance,
    cut_ratio,
    edge_cut,
    edge_cut_count,
    groups,
    modularity,
    part_sizes,
    part_weights,
    validate_assignment,
)


@pytest.fixture
def square_graph():
    graph = Graph()
    graph.add_edge(0, 1, weight=1.0)
    graph.add_edge(1, 2, weight=2.0)
    graph.add_edge(2, 3, weight=3.0)
    graph.add_edge(3, 0, weight=4.0)
    return graph


class TestEdgeCut:
    def test_cut_of_perfect_split(self, square_graph):
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert edge_cut(square_graph, assignment) == pytest.approx(2.0 + 4.0)
        assert edge_cut_count(square_graph, assignment) == 2

    def test_cut_of_single_part_is_zero(self, square_graph):
        assignment = {node: 0 for node in square_graph.nodes()}
        assert edge_cut(square_graph, assignment) == 0.0

    def test_cut_ratio(self, square_graph):
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert cut_ratio(square_graph, assignment) == pytest.approx(6.0 / 10.0)

    def test_cut_ratio_empty_graph(self):
        graph = Graph()
        graph.add_node(1)
        assert cut_ratio(graph, {1: 0}) == 0.0


class TestBalanceAndSizes:
    def test_part_sizes(self):
        assignment = {0: 0, 1: 0, 2: 1, 3: 2}
        assert part_sizes(assignment, 3) == [2, 1, 1]

    def test_part_weights_with_vertex_weights(self):
        assignment = {0: 0, 1: 1}
        weights = part_weights(assignment, 2, vertex_weights={0: 3.0, 1: 1.0})
        assert weights == [3.0, 1.0]

    def test_balance_perfect(self):
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert balance(assignment, 2) == pytest.approx(1.0)

    def test_balance_skewed(self):
        assignment = {0: 0, 1: 0, 2: 0, 3: 1}
        assert balance(assignment, 2) == pytest.approx(1.5)

    def test_balance_empty(self):
        assert balance({}, 3) == 0.0


class TestGroupConversions:
    def test_groups_and_back(self):
        assignment = {0: 1, 1: 0, 2: 1}
        parts = groups(assignment, 2)
        assert sorted(parts[1]) == [0, 2]
        assert assignment_from_groups(parts) == assignment

    def test_duplicate_membership_rejected(self):
        with pytest.raises(InvalidPartitionError):
            assignment_from_groups([[1, 2], [2, 3]])


class TestValidateAssignment:
    def test_valid(self, square_graph):
        validate_assignment(square_graph, {0: 0, 1: 0, 2: 1, 3: 1}, 2)

    def test_missing_vertex(self, square_graph):
        with pytest.raises(InvalidPartitionError, match="missing"):
            validate_assignment(square_graph, {0: 0, 1: 0, 2: 1}, 2)

    def test_out_of_range_part(self, square_graph):
        with pytest.raises(InvalidPartitionError, match="out of range"):
            validate_assignment(square_graph, {0: 0, 1: 0, 2: 1, 3: 5}, 2)

    def test_bad_k(self, square_graph):
        with pytest.raises(InvalidPartitionError):
            validate_assignment(square_graph, {}, 0)


class TestModularity:
    def test_planted_communities_have_positive_modularity(self):
        graph = connected_caveman(4, 6, seed=0)
        assignment = {node: node // 6 for node in graph.nodes()}
        assert modularity(graph, assignment) > 0.5

    def test_single_part_modularity_is_zero(self):
        graph = complete_graph(5)
        assignment = {node: 0 for node in graph.nodes()}
        assert modularity(graph, assignment) == pytest.approx(0.0)

    def test_empty_graph_modularity(self):
        graph = Graph()
        graph.add_node(1)
        assert modularity(graph, {1: 0}) == 0.0

"""Unit tests for the coarsening phase."""

import random

import pytest

from repro.graph.generators import connected_caveman, erdos_renyi, star_graph
from repro.graph.graph import Graph
from repro.partition.coarsen import (
    coarsen,
    contract,
    heavy_edge_matching,
    initial_level,
    random_matching,
)


class TestMatching:
    def test_matching_is_symmetric_and_disjoint(self, caveman_graph):
        level = initial_level(caveman_graph)
        matching = heavy_edge_matching(caveman_graph, level.vertex_weights, random.Random(0))
        for node, partner in matching.items():
            assert matching[partner] == node
            assert node != partner

    def test_heavy_edge_prefers_heavier_edges(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_edge("a", "c", weight=10.0)
        matching = heavy_edge_matching(graph, {"a": 1.0, "b": 1.0, "c": 1.0}, random.Random(0))
        assert matching.get("a") == "c"

    def test_max_vertex_weight_respected(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=5.0)
        weights = {"a": 10.0, "b": 10.0}
        matching = heavy_edge_matching(graph, weights, random.Random(0), max_vertex_weight=15.0)
        assert matching == {}

    def test_random_matching_is_valid(self, random_graph):
        level = initial_level(random_graph)
        matching = random_matching(random_graph, level.vertex_weights, random.Random(1))
        for node, partner in matching.items():
            assert matching[partner] == node


class TestContract:
    def test_vertex_weight_is_conserved(self, caveman_graph):
        level = initial_level(caveman_graph)
        matching = heavy_edge_matching(caveman_graph, level.vertex_weights, random.Random(0))
        coarser = contract(caveman_graph, level.vertex_weights, matching)
        assert sum(coarser.vertex_weights.values()) == pytest.approx(
            caveman_graph.num_nodes
        )

    def test_total_crossing_weight_conserved(self):
        # Contracting one matched pair keeps the weight of all other edges.
        graph = Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=3.0)
        graph.add_edge(0, 2, weight=5.0)
        matching = {0: 1, 1: 0}
        coarser = contract(graph, {0: 1.0, 1: 1.0, 2: 1.0}, matching)
        assert coarser.graph.num_nodes == 2
        # Edges 1-2 and 0-2 merge into one super edge of weight 8.
        assert coarser.graph.total_edge_weight() == pytest.approx(8.0)

    def test_projection_covers_every_vertex(self, random_graph):
        level = initial_level(random_graph)
        matching = heavy_edge_matching(random_graph, level.vertex_weights, random.Random(2))
        coarser = contract(random_graph, level.vertex_weights, matching)
        assert set(coarser.projection) == set(random_graph.nodes())
        assert set(coarser.projection.values()) == set(coarser.graph.nodes())


class TestCoarsenPipeline:
    def test_levels_shrink(self):
        graph = erdos_renyi(400, 0.02, seed=5)
        levels = coarsen(graph, target_size=50, seed=1)
        sizes = [level.graph.num_nodes for level in levels]
        assert sizes[0] == 400
        assert all(later < earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_reaches_target_or_stalls(self):
        graph = connected_caveman(8, 8, seed=0)
        levels = coarsen(graph, target_size=10, seed=1)
        assert levels[-1].graph.num_nodes <= 32  # cannot stall too early on this graph

    def test_star_graph_terminates(self):
        # A star can only shrink by one vertex per level; the stall guard
        # must terminate coarsening rather than looping forever.
        graph = star_graph(50)
        levels = coarsen(graph, target_size=5, max_levels=10, seed=1)
        assert len(levels) <= 11

    def test_weight_conserved_across_all_levels(self):
        graph = erdos_renyi(200, 0.03, seed=6)
        levels = coarsen(graph, target_size=20, seed=2)
        for level in levels:
            assert sum(level.vertex_weights.values()) == pytest.approx(graph.num_nodes)

    def test_random_matching_variant_runs(self):
        graph = erdos_renyi(200, 0.03, seed=7)
        levels = coarsen(graph, target_size=30, matching="random", seed=3)
        assert levels[-1].graph.num_nodes < 200

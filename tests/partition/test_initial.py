"""Unit tests for initial bisection strategies."""

import random

import pytest

from repro.graph.generators import connected_caveman, erdos_renyi, grid_2d
from repro.graph.graph import Graph
from repro.partition.initial import (
    best_initial_bisection,
    greedy_graph_growing,
    spectral_bisection,
)
from repro.partition.metrics import balance, edge_cut


def unit_weights(graph):
    return {node: 1.0 for node in graph.nodes()}


class TestGreedyGraphGrowing:
    def test_produces_two_parts(self, caveman_graph):
        assignment = greedy_graph_growing(caveman_graph, unit_weights(caveman_graph), random.Random(0))
        assert set(assignment.values()) == {0, 1}
        assert len(assignment) == caveman_graph.num_nodes

    def test_roughly_balanced(self, random_graph):
        assignment = greedy_graph_growing(random_graph, unit_weights(random_graph), random.Random(1))
        assert balance(assignment, 2) <= 1.2

    def test_respects_target_fraction(self, random_graph):
        assignment = greedy_graph_growing(
            random_graph, unit_weights(random_graph), random.Random(2), target_fraction=0.25
        )
        sizes = [list(assignment.values()).count(part) for part in (0, 1)]
        assert sizes[0] < sizes[1]

    def test_handles_disconnected_graph(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(4, 5)
        assignment = greedy_graph_growing(graph, unit_weights(graph), random.Random(0))
        assert set(assignment.values()) == {0, 1}

    def test_empty_graph(self):
        assert greedy_graph_growing(Graph(), {}, random.Random(0)) == {}


class TestSpectralBisection:
    def test_splits_grid_in_half(self):
        graph = grid_2d(6, 6)
        assignment = spectral_bisection(graph, unit_weights(graph))
        assert assignment is not None
        assert balance(assignment, 2) == pytest.approx(1.0, abs=0.1)
        # The spectral cut of a grid should be near the optimal 6 edges.
        assert edge_cut(graph, assignment) <= 12

    def test_tiny_graph_returns_none(self):
        graph = Graph()
        graph.add_edge(0, 1)
        assert spectral_bisection(graph, unit_weights(graph)) is None


class TestBestInitialBisection:
    def test_recovers_caveman_split(self):
        graph = connected_caveman(2, 12, seed=0)
        assignment = best_initial_bisection(graph, unit_weights(graph), seed=1)
        # The two cliques should separate with a cut of exactly the 2 ring edges.
        assert edge_cut(graph, assignment) <= 2.0

    def test_beats_or_matches_single_attempt(self):
        graph = erdos_renyi(150, 0.05, seed=8)
        weights = unit_weights(graph)
        single = greedy_graph_growing(graph, weights, random.Random(0))
        best = best_initial_bisection(graph, weights, seed=0, attempts=6)
        assert edge_cut(graph, best) <= edge_cut(graph, single) + 1e-9

    def test_deterministic_given_seed(self, random_graph):
        weights = unit_weights(random_graph)
        a = best_initial_bisection(random_graph, weights, seed=3)
        b = best_initial_bisection(random_graph, weights, seed=3)
        assert a == b

"""Property-based tests for the partitioning subsystem."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi
from repro.partition.kway import KWayOptions, kway_partition
from repro.partition.metrics import balance, edge_cut, part_sizes
from repro.partition.multilevel import BisectionOptions, multilevel_bisection
from repro.partition.refine import fm_refine_bisection


@given(
    n=st.integers(min_value=8, max_value=80),
    p=st.floats(min_value=0.05, max_value=0.3),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_bisection_always_covers_and_balances(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    assignment = multilevel_bisection(graph, BisectionOptions(seed=seed))
    assert set(assignment) == set(graph.nodes())
    assert set(assignment.values()) <= {0, 1}
    assert balance(assignment, 2) <= 1.4


@given(
    n=st.integers(min_value=12, max_value=70),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_kway_partition_invariants(n, k, seed):
    graph = erdos_renyi(n, 0.15, seed=seed)
    assignment = kway_partition(graph, k, KWayOptions(seed=seed))
    # Cover, range, non-empty parts.
    assert set(assignment) == set(graph.nodes())
    sizes = part_sizes(assignment, k)
    assert sum(sizes) == n
    assert all(size > 0 for size in sizes)


@given(
    n=st.integers(min_value=10, max_value=60),
    p=st.floats(min_value=0.1, max_value=0.4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_fm_refinement_never_worsens_the_cut(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    nodes = list(graph.nodes())
    start = {node: (0 if index < n // 2 else 1) for index, node in enumerate(nodes)}
    refined = fm_refine_bisection(graph, start, {node: 1.0 for node in nodes})
    assert edge_cut(graph, refined) <= edge_cut(graph, start) + 1e-9

"""Unit tests for the multilevel bisection driver."""

import pytest

from repro.errors import PartitionError
from repro.graph.generators import connected_caveman, erdos_renyi, grid_2d, star_graph
from repro.graph.graph import Graph
from repro.partition.metrics import balance, edge_cut
from repro.partition.multilevel import (
    BisectionOptions,
    bisection_cut,
    multilevel_bisection,
    random_bisection,
)


class TestMultilevelBisection:
    def test_every_vertex_assigned_to_two_parts(self, random_graph):
        assignment = multilevel_bisection(random_graph, BisectionOptions(seed=1))
        assert set(assignment) == set(random_graph.nodes())
        assert set(assignment.values()) == {0, 1}

    def test_balanced(self, random_graph):
        assignment = multilevel_bisection(random_graph, BisectionOptions(seed=1))
        assert balance(assignment, 2) <= 1.15

    def test_recovers_two_cliques(self):
        graph = connected_caveman(2, 20, seed=0)
        assignment = multilevel_bisection(graph, BisectionOptions(seed=2))
        assert edge_cut(graph, assignment) <= 2.0

    def test_beats_random_baseline(self):
        graph = connected_caveman(4, 12, seed=0)
        options = BisectionOptions(seed=3)
        ours = edge_cut(graph, multilevel_bisection(graph, options))
        baseline = edge_cut(graph, random_bisection(graph, seed=3))
        assert ours < baseline

    def test_grid_cut_is_near_optimal(self):
        graph = grid_2d(10, 10)
        assignment = multilevel_bisection(graph, BisectionOptions(seed=4))
        # Optimal bisection of a 10x10 grid cuts 10 edges; allow 2x slack.
        assert edge_cut(graph, assignment) <= 20

    def test_deterministic_given_seed(self, random_graph):
        a = multilevel_bisection(random_graph, BisectionOptions(seed=5))
        b = multilevel_bisection(random_graph, BisectionOptions(seed=5))
        assert a == b

    def test_two_vertex_graph(self):
        graph = Graph()
        graph.add_edge("x", "y")
        assignment = multilevel_bisection(graph)
        assert sorted(assignment.values()) == [0, 1]

    def test_too_small_graph_raises(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(PartitionError):
            multilevel_bisection(graph)

    def test_star_graph_does_not_hang(self):
        graph = star_graph(60)
        assignment = multilevel_bisection(graph, BisectionOptions(seed=6))
        assert set(assignment.values()) == {0, 1}

    def test_coarsening_disabled_still_works(self):
        graph = erdos_renyi(80, 0.08, seed=20)
        options = BisectionOptions(seed=1, coarsen_enabled=False)
        assignment = multilevel_bisection(graph, options)
        assert set(assignment.values()) == {0, 1}

    def test_refinement_disabled_still_valid(self):
        graph = erdos_renyi(80, 0.08, seed=21)
        options = BisectionOptions(seed=1, refine=False)
        assignment = multilevel_bisection(graph, options)
        assert set(assignment) == set(graph.nodes())

    def test_unbalanced_target_fraction(self):
        graph = erdos_renyi(100, 0.06, seed=22)
        options = BisectionOptions(seed=2, target_fraction=0.3)
        assignment = multilevel_bisection(graph, options)
        share = sum(1 for part in assignment.values() if part == 0) / graph.num_nodes
        assert 0.2 <= share <= 0.42

    def test_bisection_cut_helper(self):
        graph = connected_caveman(2, 10, seed=0)
        assert bisection_cut(graph, BisectionOptions(seed=0)) <= 2.0


class TestRandomBisection:
    def test_balanced_and_total(self, random_graph):
        assignment = random_bisection(random_graph, seed=9)
        assert len(assignment) == random_graph.num_nodes
        sizes = [list(assignment.values()).count(part) for part in (0, 1)]
        assert abs(sizes[0] - sizes[1]) <= 1

"""Integration tests: whole-pipeline scenarios across every subsystem."""

import pytest

from repro.core.builder import build_gtree
from repro.core.engine import GMineEngine
from repro.core.tomahawk import tomahawk_context
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.io import read_json, write_json
from repro.graph.validation import graphs_equal
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.components import number_weak_components
from repro.storage.gtree_store import GTreeStore, save_gtree
from repro.viz.render import render_subgraph, render_tomahawk_view
from repro.viz.svg import scene_to_svg, write_svg


class TestGenerateBuildStoreNavigate:
    """Dataset → G-Tree → single-file store → lazy navigation → rendering."""

    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        dataset = generate_dblp(DBLPConfig(num_authors=700, seed=33))
        tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=33)
        store_path = tmp_path_factory.mktemp("integration") / "dblp.gtree"
        save_gtree(tree, store_path)
        return dataset, tree, store_path

    def test_memory_engine_and_store_engine_agree(self, pipeline):
        dataset, tree, store_path = pipeline
        memory_engine = GMineEngine(tree, graph=dataset.graph)
        with GTreeStore(store_path) as store:
            store_engine = GMineEngine.from_store(store)
            author = dataset.name_of(123)
            memory_result = memory_engine.label_query(author)
            store_result = store_engine.label_query(author)
            assert memory_result.leaf_label == store_result.leaf_label
            assert memory_result.path_labels == store_result.path_labels

    def test_lazy_navigation_touches_few_leaves(self, pipeline):
        _, tree, store_path = pipeline
        with GTreeStore(store_path, cache_capacity=4) as store:
            engine = GMineEngine.from_store(store)
            engine.focus_root()
            visited = tree.leaves()[:2]
            for leaf in visited:
                engine.focus_community(leaf.label)
                engine.community_subgraph()
            assert store.stats.leaves_loaded == len(visited)
            assert store.stats.leaves_loaded < tree.num_leaves

    def test_community_metrics_from_store_match_memory(self, pipeline):
        dataset, tree, store_path = pipeline
        leaf = tree.leaves()[0]
        memory_engine = GMineEngine(tree, graph=dataset.graph)
        memory_metrics = memory_engine.community_metrics(leaf.node_id)
        with GTreeStore(store_path) as store:
            store_engine = GMineEngine.from_store(store)
            store_metrics = store_engine.community_metrics(leaf.node_id)
        assert memory_metrics.degree_stats.num_nodes == store_metrics.degree_stats.num_nodes
        assert memory_metrics.num_weak_components == store_metrics.num_weak_components
        assert memory_metrics.diameter == store_metrics.diameter

    def test_render_from_store(self, pipeline, tmp_path):
        _, tree, store_path = pipeline
        with GTreeStore(store_path) as store:
            engine = GMineEngine.from_store(store)
            context = engine.focus_root()
            scene = render_tomahawk_view(store.tree, context)
            path = write_svg(scene, tmp_path / "root.svg")
            assert path.exists()
            assert scene.visual_item_count() > 0


class TestExtractionPipeline:
    """Extraction → partition-of-the-extract → navigation (figure 6 flow)."""

    def test_extract_partition_navigate(self, dblp_dataset):
        graph = dblp_dataset.graph
        hubs = [author for author, _, _ in dblp_dataset.most_collaborative_authors(3)]
        extraction = extract_connection_subgraph(graph, hubs, budget=120)
        extract = extraction.subgraph
        assert extraction.contains_all_sources()
        assert number_weak_components(extract) == 1

        tree = build_gtree(extract, fanout=3, levels=2, seed=1)
        engine = GMineEngine(tree, graph=extract)
        context = engine.focus_root()
        assert 1 <= len(context.children) <= 3

        # Drill to a leaf and confirm we reach actual graph vertices.
        while not engine.focus.is_leaf:
            context = engine.drill_down(0)
        leaf_subgraph = engine.community_subgraph()
        assert set(leaf_subgraph.nodes()) <= set(extract.nodes())

    def test_extraction_view_renders(self, dblp_dataset):
        graph = dblp_dataset.graph
        hubs = [author for author, _, _ in dblp_dataset.most_collaborative_authors(2)]
        extraction = extract_connection_subgraph(graph, hubs, budget=25)
        scene = render_subgraph(
            extraction.subgraph, highlight=extraction.sources,
            node_scores=extraction.goodness,
        )
        assert "<svg" in scene_to_svg(scene)


class TestRoundTripThroughFiles:
    def test_graph_json_survives_build(self, tmp_path, dblp_dataset):
        path = tmp_path / "dblp.json"
        write_json(dblp_dataset.graph, path)
        loaded = read_json(path)
        assert graphs_equal(dblp_dataset.graph, loaded)
        tree = build_gtree(loaded, fanout=3, levels=2, seed=2)
        assert tree.num_graph_vertices() == dblp_dataset.graph.num_nodes


class TestTomahawkAcrossTheTree:
    def test_every_focus_point_is_renderable(self, dblp_dataset, dblp_gtree):
        # Sanity: the Tomahawk view never fails anywhere in the hierarchy.
        for node in list(dblp_gtree.nodes())[:20]:
            context = tomahawk_context(dblp_gtree, node.node_id)
            scene = render_tomahawk_view(dblp_gtree, context, graph=dblp_dataset.graph)
            assert scene.visual_item_count() >= context.size

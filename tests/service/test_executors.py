"""Execution backend tests: plans, venues, parity, fallbacks, cost classes.

The contract under test is the heart of execution engine v2: every backend
— inline, thread, process — executes the *same* picklable
:class:`~repro.api.plans.ComputePlan` through the same kernels, so the
encoded protocol payloads are byte-identical whichever venue computed them.
"""

import pickle

import pytest

from repro.api import GMineClient, plan_for, run_plan
from repro.api.ops import DEFAULT_REGISTRY
from repro.errors import ServiceError
from repro.service import (
    BACKEND_NAMES,
    DatasetExecSpec,
    GMineService,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)

pytestmark = pytest.mark.tier1


# --------------------------------------------------------------------------- #
# plans
# --------------------------------------------------------------------------- #
class TestComputePlans:
    def test_every_expensive_dataset_op_is_plannable(self):
        # session-scoped variants delegate to their dataset twin's plan,
        # so plannability is a dataset-scope property
        for spec in DEFAULT_REGISTRY:
            if spec.scope != "dataset":
                assert not spec.plannable, f"{spec.name} delegates: no plan"
            elif spec.cost == "expensive":
                assert spec.plannable, f"{spec.name} must compile to a plan"
            else:
                assert not spec.plannable, f"{spec.name} is cheap: no plan"

    def test_plan_is_picklable_and_pure(self, hot_leaf):
        leaf, members = hot_leaf
        spec = DEFAULT_REGISTRY.get("rwr")
        canonical = spec.canonicalize(
            {"sources": list(members), "community": leaf.label}
        )
        plan = spec.plan(canonical)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.operation == "rwr" and clone.scope == leaf.label
        assert clone.arg_dict["sources"] == sorted(set(members), key=repr)

    def test_run_plan_rejects_unknown_kernel(self):
        plan = plan_for("bogus", "no-such-kernel", {"community": None})
        with pytest.raises(ServiceError):
            run_plan(plan, lambda scope: None)

    def test_registry_describe_reports_plannability(self):
        table = {row["name"]: row["plannable"] for row in DEFAULT_REGISTRY.describe()}
        assert table["rwr"] is True
        assert table["connectivity"] is False


# --------------------------------------------------------------------------- #
# backend construction
# --------------------------------------------------------------------------- #
class TestMakeBackend:
    def test_names_resolve(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)
        assert isinstance(make_backend(None), InlineBackend)
        from repro.service import AutoBackend

        auto = make_backend("auto")
        assert isinstance(auto, AutoBackend)
        auto.close()
        from repro.shard import ShardedBackend

        sharded = make_backend("sharded:2")
        assert isinstance(sharded, ShardedBackend)
        sharded.close()
        assert set(BACKEND_NAMES) == {
            "inline", "thread", "process", "auto", "sharded"
        }

    def test_worker_count_suffix(self):
        backend = make_backend("thread:7")
        assert backend.workers == 7
        backend = make_backend("process:2", workers=9)
        assert backend.workers == 2

    def test_instances_pass_through(self):
        backend = InlineBackend()
        assert make_backend(backend) is backend

    def test_bad_selectors_raise(self):
        with pytest.raises(ServiceError):
            make_backend("gpu")
        with pytest.raises(ServiceError):
            make_backend("thread:lots")
        with pytest.raises(ServiceError):
            ThreadBackend(workers=0)


# --------------------------------------------------------------------------- #
# cross-backend byte parity
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def parity_payloads(service_dataset, store_path):
    """The canonical wire bytes of a mixed request set, per backend."""
    _, tree = service_dataset
    leaf = max(tree.leaves(), key=lambda node: node.size)
    members = list(leaf.members[:2])
    requests = [
        ("rwr", {"sources": members, "community": leaf.label}),
        ("metrics", {"community": leaf.label}),
        ("connection_subgraph",
         {"sources": members, "community": leaf.label, "budget": 10}),
        ("connectivity", {}),
    ]
    payloads = {}
    for backend in BACKEND_NAMES:
        with GMineService(backend=f"{backend}:2") as service:
            service.register_store(store_path, name="dblp")
            client = GMineClient.in_process(service)
            payloads[backend] = [
                client.query_raw(op, args=args) for op, args in requests
            ]
            payloads[f"{backend}__stats"] = service.backend.stats()
    return payloads


class TestBackendParity:
    def test_all_backends_byte_identical(self, parity_payloads):
        assert (
            parity_payloads["inline"]
            == parity_payloads["thread"]
            == parity_payloads["process"]
            == parity_payloads["auto"]
        )

    def test_process_backend_actually_shipped(self, parity_payloads):
        stats = parity_payloads["process__stats"]
        # three expensive ops shipped; the cheap connectivity op never is
        assert stats["shipped"] == 3
        assert stats["executed"] == 3
        assert stats["fallbacks"] == 0

    def test_cheap_ops_bypass_backends(self, parity_payloads):
        for backend in BACKEND_NAMES:
            assert parity_payloads[f"{backend}__stats"]["executed"] == 3


# --------------------------------------------------------------------------- #
# process-backend fallbacks and warm reload safety
# --------------------------------------------------------------------------- #
class TestProcessFallbacks:
    def test_tree_dataset_falls_back_to_parent(self, service_dataset):
        dataset, tree = service_dataset
        leaf = max(tree.leaves(), key=lambda node: node.size)
        with GMineService(backend="process:2") as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            value = service.rwr(list(leaf.members[:2]), community=leaf.label)
            assert value.converged
            stats = service.backend.stats()
            assert stats["fallbacks"] == 1 and stats["shipped"] == 0

    def test_live_graph_without_path_falls_back(self, service_dataset, store_path):
        dataset, tree = service_dataset
        leaf = max(tree.leaves(), key=lambda node: node.size)
        with GMineService(backend="process:2") as service:
            # graph attached but not reloadable by file -> not process capable
            service.register_store(store_path, graph=dataset.graph, name="dblp")
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            stats = service.backend.stats()
            assert stats["fallbacks"] == 1 and stats["shipped"] == 0

    def test_exec_spec_capability_rules(self):
        assert DatasetExecSpec("d", "fp", store_path="/x.gtree").process_capable
        assert not DatasetExecSpec("d", "fp").process_capable
        assert not DatasetExecSpec(
            "d", "fp", store_path="/x.gtree", has_graph=True
        ).process_capable
        assert DatasetExecSpec(
            "d", "fp", store_path="/x.gtree", graph_path="/x.json", has_graph=True
        ).process_capable


class TestStaleDatasetFallback:
    """A hot-reload racing a dispatched request must not surface errors."""

    def test_worker_context_preserves_warm_state_on_stale_plan(self, store_path):
        from repro.service import StaleDatasetError
        from repro.service.executors import _WORKER_DATASETS, _worker_context
        from repro.storage.gtree_store import GTreeStore

        with GTreeStore(store_path) as probe:
            real_fingerprint = probe.fingerprint
        key = (str(store_path), None)
        good = DatasetExecSpec("dblp", real_fingerprint, store_path=str(store_path))
        try:
            warm = _worker_context(good)
            stale = DatasetExecSpec("dblp", "0" * 16, store_path=str(store_path))
            with pytest.raises(StaleDatasetError):
                _worker_context(stale)
            # the stale probe must not have evicted the warm context
            assert _worker_context(good) is warm
        finally:
            cached = _WORKER_DATASETS.pop(key, None)
            if cached is not None:
                cached[1].engine.store.close()

    def test_failed_graph_load_keeps_old_warm_context(self, tmp_path):
        import os

        from repro.core.builder import build_gtree
        from repro.graph.generators import connected_caveman
        from repro.graph.io import write_json
        from repro.service.executors import _WORKER_DATASETS, _worker_context
        from repro.storage.gtree_store import GTreeStore, save_gtree

        store_file = tmp_path / "w.gtree"
        graph_file = tmp_path / "w.json"
        graph_v1 = connected_caveman(3, 6, seed=1)
        save_gtree(build_gtree(graph_v1, fanout=3, levels=2, seed=1), store_file)
        write_json(graph_v1, graph_file)

        def spec_for(fingerprint):
            return DatasetExecSpec(
                "w", fingerprint, store_path=str(store_file),
                graph_path=str(graph_file), has_graph=True,
            )

        key = (str(store_file), str(graph_file))
        try:
            with GTreeStore(store_file) as probe:
                fp_v1 = probe.fingerprint
            warm = _worker_context(spec_for(fp_v1))
            # Rebuild the store (new fingerprint) and corrupt the graph
            # file, as a torn rebuild would.
            graph_v2 = connected_caveman(4, 5, seed=2)
            staging = tmp_path / "w2.gtree"
            save_gtree(build_gtree(graph_v2, fanout=3, levels=2, seed=2), staging)
            os.replace(staging, store_file)
            with GTreeStore(store_file) as probe:
                fp_v2 = probe.fingerprint
            graph_file.write_text("{not json", encoding="utf-8")
            with pytest.raises(Exception):
                _worker_context(spec_for(fp_v2))
            # The failed replacement must not have closed or evicted the
            # old context: stale-fingerprint plans still find it warm.
            again = _worker_context(spec_for(fp_v1))
            assert again is warm
            assert again.engine.store.fingerprint == fp_v1
        finally:
            cached = _WORKER_DATASETS.pop(key, None)
            if cached is not None:
                cached[1].engine.store.close()

    def test_stale_plan_falls_back_to_parent(self, store_path, hot_leaf):
        leaf, members = hot_leaf
        rwr_spec = DEFAULT_REGISTRY.get("rwr")
        plan = rwr_spec.plan(
            rwr_spec.canonicalize(
                {"sources": list(members), "community": leaf.label}
            )
        )
        stale = DatasetExecSpec("dblp", "not-the-real-fp", store_path=str(store_path))
        backend = ProcessBackend(workers=1)
        try:
            value = backend.run(stale, plan, lambda: "served-by-parent")
            assert value == "served-by-parent"
            stats = backend.stats()
            assert stats["fallbacks"] == 1 and stats["shipped"] == 0
            assert stats["errors"] == 0
        finally:
            backend.close()


class TestWorkerErrors:
    def test_worker_errors_surface_as_typed_envelopes(self, store_path, hot_leaf):
        leaf, _ = hot_leaf
        with GMineService(backend="process:2") as service:
            service.register_store(store_path, name="dblp")
            result = service.execute(
                {"op": "rwr",
                 "args": {"sources": ["no-such-vertex"],
                          "community": leaf.label}}
            )
            assert not result.ok
            assert result.code == "MINING_ERROR"
            # the failed plan still shipped and is counted as a worker error
            stats = service.backend.stats()
            assert stats["shipped"] == 1 and stats["errors"] == 1

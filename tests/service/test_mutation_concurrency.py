"""Concurrency stress for the write path: edits vs. streaming readers.

A writer thread toggles an edit back and forth through ``dataset.apply``
while reader threads walk RWR result cursors page by page (one service
round-trip per page, resuming from ``next_cursor``) and a third thread
fires hot-reloads.  The bar, on every execution backend:

* a completed stream reassembles to **exactly** one of the two content
  versions' payloads — never a torn vector mixing pages across versions;
* a stream interrupted by an incompatible edit fails with the structured
  ``CURSOR_EXPIRED`` envelope, nothing else;
* readers pinned to a community the writer never touches keep their
  cursors valid across every edit and reload (partition-scoped
  fingerprints are the pin), completing with zero expiries.
"""

import threading

import pytest

from repro.api import GMineClient, dumps
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.service import BACKEND_NAMES, GMineService

pytestmark = pytest.mark.tier1

WRITER_TOGGLES = 8


@pytest.fixture(scope="module")
def mutable_dataset():
    dataset = generate_dblp(DBLPConfig(num_authors=200, seed=31))
    tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=31)
    return dataset, tree


def _intra_leaf_edge(graph, leaf):
    members = set(leaf.members)
    return next(
        (u, v, w) for u, v, w in graph.edges() if u in members and v in members
    )


def _read_one_stream(client, args, chunk_size):
    """Walk a stream one page per service call; return ("done", merged),
    ("expired", None) or ("failed", code)."""
    pages = []
    cursor = None
    while True:
        iterator = client.stream("rwr", args=args, chunk_size=chunk_size,
                                 cursor=cursor)
        try:
            chunk = next(iterator)
        finally:
            iterator.close()
        if not chunk.ok:
            if chunk.error.code == "CURSOR_EXPIRED":
                return "expired", None
            return "failed", chunk.error.code
        pages.append(chunk)
        cursor = chunk.next_cursor
        if cursor is None:
            field = pages[0].page["field"]
            merged = dict(pages[0].result)
            merged[field] = [
                item for page in pages for item in page.result[field]
            ]
            return "done", dumps(merged)


class TestWriterVsStreamingReaders:
    @pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
    def test_streams_are_never_torn_across_edits_and_reloads(
        self, mutable_dataset, backend
    ):
        dataset, tree = mutable_dataset
        with GMineService(backend=f"{backend}:2", max_workers=8) as service:
            service.register_tree(tree, graph=dataset.graph, name="g")
            client = GMineClient.in_process(service)

            # The writer toggles one intra-leaf edge weight between two
            # content versions, A (original) and B (+1.0).  A quiet leaf —
            # any leaf other than the edited one — anchors the
            # partition-scoped readers.
            leaves = tree.leaves()
            edited_leaf = leaves[0]
            quiet_leaf = leaves[-1]
            u, v, w0 = _intra_leaf_edge(dataset.graph, edited_leaf)
            edit_to_b = [{"action": "add_edge", "u": u, "v": v, "weight": w0 + 1.0}]
            edit_to_a = [{"action": "add_edge", "u": u, "v": v, "weight": w0}]

            root_args = {"sources": sorted(dataset.graph.nodes(), key=repr)[:2]}
            quiet_args = {
                "sources": list(quiet_leaf.members[:2]),
                "community": quiet_leaf.label,
            }

            # Reference payloads for both versions, via the same reassembly.
            fingerprint_a = service.fingerprint("g")
            reference = {
                "A": dumps(client.stream_result("rwr", args=root_args,
                                                chunk_size=10_000)),
            }
            assert service.apply_dataset("g", edit_to_b)["changed"]
            reference["B"] = dumps(client.stream_result("rwr", args=root_args,
                                                        chunk_size=10_000))
            assert reference["A"] != reference["B"]
            restored = service.apply_dataset("g", edit_to_a)
            assert restored["fingerprint"] == fingerprint_a
            quiet_reference = dumps(
                client.stream_result("rwr", args=quiet_args, chunk_size=5)
            )

            stop = threading.Event()
            failures = []
            root_outcomes, quiet_outcomes = [], []

            def writer():
                try:
                    for toggle in range(WRITER_TOGGLES):
                        script = edit_to_b if toggle % 2 == 0 else edit_to_a
                        service.apply_dataset("g", script)
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append(("writer", repr(error)))
                finally:
                    stop.set()

            def reloader():
                try:
                    while not stop.is_set():
                        report = service.reload_dataset("g")
                        assert report["changed"] is False
                        stop.wait(0.002)
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append(("reloader", repr(error)))

            def reader(args, outcomes, chunk_size):
                try:
                    while True:
                        outcomes.append(
                            _read_one_stream(client, args, chunk_size)
                        )
                        if stop.is_set():
                            return
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append(("reader", repr(error)))

            threads = [
                threading.Thread(target=writer),
                threading.Thread(target=reloader),
                threading.Thread(target=reader, args=(root_args, root_outcomes, 25)),
                threading.Thread(target=reader, args=(root_args, root_outcomes, 40)),
                threading.Thread(target=reader, args=(quiet_args, quiet_outcomes, 5)),
                threading.Thread(target=reader, args=(quiet_args, quiet_outcomes, 7)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, f"concurrent mutation stress failed: {failures}"

            # Root-scope readers: every completed stream is exactly version
            # A or version B — pages from different versions never mix.
            assert root_outcomes
            for status, payload in root_outcomes:
                assert status in ("done", "expired"), status
                if status == "done":
                    assert payload in (reference["A"], reference["B"]), (
                        "reassembled stream matches neither content version: torn"
                    )

            # Quiet-community readers: their partition was never touched, so
            # no cursor may expire and every pass serves identical bytes.
            assert quiet_outcomes
            for status, payload in quiet_outcomes:
                assert status == "done", (
                    f"cursor over an untouched partition must survive edits, "
                    f"got {status}"
                )
                assert payload == quiet_reference

            # The writer ended on version A (even toggle count): the service
            # serves the original fingerprint and fresh queries agree.
            assert service.fingerprint("g") == fingerprint_a
            final = dumps(
                client.stream_result("rwr", args=root_args, chunk_size=10_000)
            )
            assert final == reference["A"]

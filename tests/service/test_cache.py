"""Unit tests for the thread-safe LRU+TTL result cache."""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import ResultCache, canonical_args, make_cache_key

pytestmark = pytest.mark.tier1


class TestCanonicalArgs:
    def test_dict_order_does_not_matter(self):
        assert canonical_args({"a": 1, "b": 2}) == canonical_args({"b": 2, "a": 1})

    def test_list_and_tuple_collide(self):
        assert canonical_args([1, 2, 3]) == canonical_args((1, 2, 3))

    def test_sets_are_order_free(self):
        assert canonical_args({3, 1, 2}) == canonical_args({2, 3, 1})

    def test_nested_structures_are_hashable(self):
        key = make_cache_key("fp", "op", {"sources": [1, 2], "opts": {"x": [3]}})
        hash(key)  # must not raise

    def test_different_args_different_keys(self):
        assert make_cache_key("fp", "op", {"a": 1}) != make_cache_key("fp", "op", {"a": 2})
        assert make_cache_key("fp", "op1", {}) != make_cache_key("fp", "op2", {})
        assert make_cache_key("fp1", "op", {}) != make_cache_key("fp2", "op", {})


class TestHitMissAccounting:
    def test_first_access_misses_then_hits(self):
        cache = ResultCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
            assert value == "v"
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_failed_compute_is_not_cached(self):
        cache = ResultCache(capacity=4)

        def boom():
            raise RuntimeError("flaky")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        # the next attempt retries and can succeed
        assert cache.get_or_compute("k", lambda: 42) == 42
        assert cache.stats.misses == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=0)
        with pytest.raises(ServiceError):
            ResultCache(ttl=-1.0)


class TestLRUEviction:
    def test_capacity_is_enforced_lru(self):
        cache = ResultCache(capacity=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a; b becomes LRU
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.stats.evictions == 1
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalidate_fingerprint_drops_only_that_tree(self):
        cache = ResultCache(capacity=8)
        cache.put(make_cache_key("fp1", "op", {"x": 1}), "one")
        cache.put(make_cache_key("fp1", "op", {"x": 2}), "two")
        cache.put(make_cache_key("fp2", "op", {"x": 1}), "other")
        assert cache.invalidate_fingerprint("fp1") == 2
        assert len(cache) == 1


class TestTTL:
    def test_entries_expire_after_ttl(self, clock):
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.get_or_compute("k", lambda: "v1")
        clock.advance(9.0)
        assert cache.get_or_compute("k", lambda: "v2") == "v1"
        clock.advance(2.0)  # now 11s past insert
        assert cache.get_or_compute("k", lambda: "v2") == "v2"
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 2

    def test_sweep_collects_expired_entries(self, clock):
        cache = ResultCache(capacity=8, ttl=5.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(6.0)
        cache.put("c", 3)
        assert cache.sweep() == 2
        assert len(cache) == 1
        assert cache.stats.expirations == 2


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self):
        cache = ResultCache(capacity=4)
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(timeout=5)
            return "answer"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_compute("k", slow_compute))
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        started.wait(timeout=5)
        time.sleep(0.05)  # let the other threads pile up behind the in-flight entry
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert results == ["answer"] * 6
        assert len(calls) == 1, "exactly one thread performs the computation"
        assert cache.stats.misses == 1
        assert cache.stats.hits + cache.stats.coalesced == 5

    def test_failure_propagates_to_coalesced_waiters(self):
        cache = ResultCache(capacity=4)
        barrier = threading.Barrier(3)
        outcomes = []

        def failing_compute():
            time.sleep(0.05)
            raise ValueError("shared failure")

        def worker():
            barrier.wait(timeout=5)
            try:
                cache.get_or_compute("k", failing_compute)
                outcomes.append("ok")
            except ValueError:
                outcomes.append("error")

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert outcomes.count("error") >= 1
        assert "ok" not in outcomes
        assert "k" not in cache


class TestStoreFailureResilience:
    def test_store_put_failure_serves_value_and_releases_inflight(self):
        cache = ResultCache(capacity=4)

        def broken_put(key, fingerprint, value, ttl):
            raise RuntimeError("disk full")

        cache.store.put = broken_put
        # The computed value is served even though residency failed...
        assert cache.get_or_compute("k", lambda: 41) == 41
        # ...and the in-flight entry was released: the next call computes
        # again (nothing resident) instead of hanging on a stranded flight.
        assert cache.get_or_compute("k", lambda: 42) == 42
        assert cache.stats.misses == 2

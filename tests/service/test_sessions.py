"""Session lifecycle: create, resume, touch, expire, serialise, restore."""

import pytest

from repro.errors import SessionExpiredError, SessionNotFoundError
from repro.service import GMineService

pytestmark = pytest.mark.tier1


class TestLifecycle:
    def test_create_then_resume_returns_same_session(self, service):
        session = service.open_session("dblp")
        resumed = service.resume_session(session.session_id)
        assert resumed is session
        assert resumed.touches == 1

    def test_unknown_session_raises_not_found(self, service):
        with pytest.raises(SessionNotFoundError):
            service.resume_session("never-issued")

    def test_close_is_idempotent(self, service):
        session = service.open_session("dblp")
        service.close_session(session.session_id)
        service.close_session(session.session_id)
        with pytest.raises(SessionNotFoundError):
            service.resume_session(session.session_id)

    def test_sessions_get_distinct_ids_and_engines(self, service):
        first = service.open_session("dblp")
        second = service.open_session("dblp")
        assert first.session_id != second.session_id
        assert first.engine is not second.engine
        # ... but they share the one tree and store
        assert first.engine.tree is second.engine.tree
        assert first.engine.store is second.engine.store

    def test_independent_focus_per_session(self, service, service_dataset):
        _, tree = service_dataset
        leaves = tree.leaves()
        first = service.open_session("dblp", focus=leaves[0].label)
        second = service.open_session("dblp", focus=leaves[1].label)
        assert first.engine.focus.label == leaves[0].label
        assert second.engine.focus.label == leaves[1].label


class TestExpiry:
    def test_session_expires_after_ttl(self, clock):
        with GMineService(session_ttl=60.0, clock=clock) as service:
            _register_tiny_dataset(service)
            session = service.open_session()
            clock.advance(59.0)
            service.resume_session(session.session_id)  # touch refreshes the TTL
            clock.advance(59.0)
            service.resume_session(session.session_id)
            clock.advance(61.0)
            with pytest.raises(SessionExpiredError):
                service.resume_session(session.session_id)

    def test_sweep_reports_expired_ids(self, clock):
        with GMineService(session_ttl=30.0, clock=clock) as service:
            _register_tiny_dataset(service)
            kept = service.open_session()
            dropped = service.open_session()
            clock.advance(20.0)
            service.resume_session(kept.session_id)
            clock.advance(15.0)
            expired = service.sessions.sweep()
            assert expired == [dropped.session_id]
            assert service.sessions.active_ids() == [kept.session_id]

    def test_ttl_none_never_expires(self, clock):
        with GMineService(session_ttl=None, clock=clock) as service:
            _register_tiny_dataset(service)
            session = service.open_session()
            clock.advance(10_000_000.0)
            assert service.resume_session(session.session_id) is session


class TestSerialisableState:
    def test_state_round_trips_through_restore(self, service, service_dataset):
        _, tree = service_dataset
        leaf = tree.leaves()[2]
        session = service.open_session("dblp", focus=leaf.label)
        session.recording.bookmark("hot", note="worth revisiting")
        state = session.state_dict()
        assert state["dataset"] == "dblp"
        assert state["focus"] == leaf.label

        restored = service.restore_session(state)
        assert restored.session_id != session.session_id
        assert restored.engine.focus.label == leaf.label
        assert restored.recording.bookmarks["hot"].community_label == leaf.label
        assert [step.action for step in restored.recording.steps] == ["focus"]

    def test_state_is_json_serialisable(self, service, service_dataset):
        import json

        _, tree = service_dataset
        session = service.open_session("dblp", focus=tree.leaves()[0].label)
        payload = json.loads(json.dumps(session.state_dict()))
        restored = service.restore_session(payload)
        assert restored.engine.focus.label == tree.leaves()[0].label


def _register_tiny_dataset(service: GMineService) -> None:
    """Give a service a minimal in-memory dataset for session bookkeeping."""
    from repro.core.builder import build_gtree
    from repro.graph.generators import connected_caveman

    graph = connected_caveman(3, 6, seed=9)
    tree = build_gtree(graph, fanout=3, levels=2, seed=9)
    service.register_tree(tree, graph=graph)

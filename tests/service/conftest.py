"""Shared fixtures for the query-service test suite."""

from __future__ import annotations

import pytest

from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.service import GMineService
from repro.storage.gtree_store import GTreeStore, save_gtree


@pytest.fixture(scope="session")
def service_dataset():
    """A small DBLP dataset + G-Tree shared by the service tests."""
    dataset = generate_dblp(DBLPConfig(num_authors=500, seed=23))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=23)
    return dataset, tree


@pytest.fixture(scope="session")
def store_path(service_dataset, tmp_path_factory):
    """The shared dataset persisted to a single-file store."""
    _, tree = service_dataset
    path = tmp_path_factory.mktemp("service") / "service.gtree"
    save_gtree(tree, path)
    return path


@pytest.fixture
def service(service_dataset, store_path):
    """A fresh service over the shared store (cache/session state isolated)."""
    dataset, _ = service_dataset
    with GMineService(max_workers=8) as svc:
        with GTreeStore(store_path, cache_capacity=16) as store:
            svc.register_store(store, graph=dataset.graph, name="dblp")
            yield svc


@pytest.fixture
def hot_leaf(service_dataset):
    """The largest leaf community (a natural hot spot) and two of its members."""
    _, tree = service_dataset
    leaf = max(tree.leaves(), key=lambda node: node.size)
    return leaf, leaf.members[:2]


class ManualClock:
    """Deterministic, manually advanced time source for TTL tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return ManualClock()

"""Dataset lifecycle tests: registry, hot-reload, and the protocol routes.

Hot-reload is the contract that makes long-lived services safe to run over
datasets that get rebuilt on disk: ``POST /v1/datasets/<name>/reload``
reopens the store, swaps the fingerprint, and drops every cached result
keyed by the old fingerprint, so a rebuilt tree never serves stale answers
— over any transport and any execution backend.
"""

import pytest

from repro.api import GMineClient
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import DatasetNotFoundError
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1


@pytest.fixture
def rebuildable_store(tmp_path):
    """A store file we can rebuild in place with different content."""
    path = tmp_path / "rebuild.gtree"

    def build(seed: int):
        dataset = generate_dblp(DBLPConfig(num_authors=200, seed=seed))
        tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=seed)
        save_gtree(tree, path)
        return tree

    first = build(3)
    return path, first, build


class TestReload:
    def test_reload_unchanged_file_keeps_fingerprint(self, rebuildable_store):
        path, _, _ = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            before = service.fingerprint("d")
            report = service.reload_dataset("d")
            assert report["changed"] is False
            assert report["invalidated"] == 0
            assert service.fingerprint("d") == before

    def test_reload_rebuilt_file_swaps_fingerprint_and_invalidates(
        self, rebuildable_store
    ):
        path, first_tree, rebuild = rebuildable_store
        leaf = max(first_tree.leaves(), key=lambda node: node.size)
        with GMineService() as service:
            service.register_store(path, name="d")
            old_fingerprint = service.fingerprint("d")
            service.metrics(community=leaf.label, dataset="d")
            service.connectivity(dataset="d")
            assert len(service.cache) == 2

            rebuild(seed=4)  # different content under the same path
            report = service.reload_dataset("d")

            assert report["changed"] is True
            assert report["previous_fingerprint"] == old_fingerprint
            assert report["fingerprint"] != old_fingerprint
            assert report["invalidated"] == 2
            assert len(service.cache) == 0
            assert service.fingerprint("d") == report["fingerprint"]
            # the reopened tree serves queries keyed by the new fingerprint
            fresh = service.execute({"op": "connectivity", "dataset": "d"})
            assert fresh.ok and not fresh.cached

    def test_reload_in_memory_tree_refreshes_fingerprint(self, service_dataset):
        dataset, tree = service_dataset
        with GMineService() as service:
            service.register_tree(tree, graph=dataset.graph, name="mem")
            report = service.reload_dataset("mem")
            assert report["kind"] == "tree"
            assert report["changed"] is False

    def test_reload_unknown_dataset_raises(self, service):
        with pytest.raises(DatasetNotFoundError):
            service.reload_dataset("never-registered")


class TestDatasetRoutes:
    def test_datasets_table_over_both_transports(self, service):
        client = GMineClient.in_process(service)
        table = client.datasets()
        assert len(table) == 1
        row = table[0]
        assert row["name"] == "dblp"
        assert row["kind"] == "store"
        assert row["fingerprint"] == service.fingerprint("dblp")
        assert row["store_path"].endswith(".gtree")

    def test_reload_route_returns_report(self, rebuildable_store):
        path, _, _ = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            client = GMineClient.in_process(service)
            report = client.reload_dataset("d")
            assert report["dataset"] == "d"
            assert report["changed"] is False
            assert "fingerprint" in report and "invalidated" in report

    def test_reload_route_unknown_dataset_is_404(self, service):
        client = GMineClient.in_process(service)
        status, payload = client.transport.router.handle(
            "POST", "/v1/datasets/nope/reload", None
        )
        assert status == 404
        assert payload["error"]["code"] == "DATASET_NOT_FOUND"

    def test_stats_surface_backend_and_store(self, service):
        client = GMineClient.in_process(service)
        stats = client.stats()
        assert stats["backend"]["name"] == "inline"
        assert stats["cache"]["store"]["kind"] == "memory"
        assert stats["dataset_info"][0]["name"] == "dblp"

"""Dataset lifecycle tests: registry, hot-reload, and the protocol routes.

Hot-reload is the contract that makes long-lived services safe to run over
datasets that get rebuilt on disk: ``POST /v1/datasets/<name>/reload``
reopens the store, swaps the fingerprint, and drops every cached result
keyed by the old fingerprint, so a rebuilt tree never serves stale answers
— over any transport and any execution backend.
"""

import pytest

from repro.api import GMineClient
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import DatasetNotFoundError
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1


@pytest.fixture
def rebuildable_store(tmp_path):
    """A store file we can rebuild with different content.

    Rebuilds are atomic (write-then-rename): the open pager of a store
    that predates the rebuild keeps reading the old inode, which is what
    lets retired stores serve live sessions after a hot-reload.
    """
    import os

    path = tmp_path / "rebuild.gtree"

    def build(seed: int):
        dataset = generate_dblp(DBLPConfig(num_authors=200, seed=seed))
        tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=seed)
        staging = tmp_path / f"rebuild.gtree.tmp{seed}"
        save_gtree(tree, staging)
        os.replace(staging, path)
        return tree

    first = build(3)
    return path, first, build


class TestReload:
    def test_reload_unchanged_file_keeps_fingerprint(self, rebuildable_store):
        path, _, _ = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            before = service.fingerprint("d")
            report = service.reload_dataset("d")
            assert report["changed"] is False
            assert report["invalidated"] == 0
            assert service.fingerprint("d") == before

    def test_reload_rebuilt_file_swaps_fingerprint_and_invalidates(
        self, rebuildable_store
    ):
        path, first_tree, rebuild = rebuildable_store
        leaf = max(first_tree.leaves(), key=lambda node: node.size)
        with GMineService() as service:
            service.register_store(path, name="d")
            old_fingerprint = service.fingerprint("d")
            service.metrics(community=leaf.label, dataset="d")
            service.connectivity(dataset="d")
            assert len(service.cache) == 2

            rebuild(seed=4)  # different content under the same path
            report = service.reload_dataset("d")

            assert report["changed"] is True
            assert report["previous_fingerprint"] == old_fingerprint
            assert report["fingerprint"] != old_fingerprint
            assert report["invalidated"] == 2
            assert len(service.cache) == 0
            assert service.fingerprint("d") == report["fingerprint"]
            # the reopened tree serves queries keyed by the new fingerprint
            fresh = service.execute({"op": "connectivity", "dataset": "d"})
            assert fresh.ok and not fresh.cached

    def test_reload_in_memory_tree_refreshes_fingerprint(self, service_dataset):
        dataset, tree = service_dataset
        with GMineService() as service:
            service.register_tree(tree, graph=dataset.graph, name="mem")
            report = service.reload_dataset("mem")
            assert report["kind"] == "tree"
            assert report["changed"] is False

    def test_reload_unknown_dataset_raises(self, service):
        with pytest.raises(DatasetNotFoundError):
            service.reload_dataset("never-registered")


class TestReloadSafety:
    """Reload swaps immutable handles; it never yanks resources from users."""

    def test_live_session_keeps_serving_after_reload(self, rebuildable_store):
        path, first_tree, rebuild = rebuildable_store
        leaf = max(first_tree.leaves(), key=lambda node: node.size)
        with GMineService() as service:
            service.register_store(path, name="d")
            session = service.open_session("d")
            rebuild(seed=4)
            report = service.reload_dataset("d")
            assert report["changed"] is True
            # The session's engine still reads the *retired* store (the
            # old inode, thanks to the atomic rebuild).  This uncached
            # leaf load must succeed against the old pager, not die with
            # 'I/O operation on closed file' — and must return the OLD
            # tree's community, consistent with the session's snapshot.
            subgraph = session.engine.community_subgraph(leaf.label)
            assert set(subgraph.nodes()) == set(leaf.members)
            assert service.registry_of_datasets.retired_store_count() == 1

    def test_unchanged_reload_retires_nothing(self, rebuildable_store):
        path, _, _ = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            before = service._dataset("d")
            report = service.reload_dataset("d")
            assert report["changed"] is False
            # Same content: the original handle keeps serving and no file
            # handle is parked, so periodic no-op reloads cost nothing.
            assert service._dataset("d") is before
            assert service.registry_of_datasets.retired_store_count() == 0

    def test_handle_resolved_before_reload_stays_consistent(
        self, rebuildable_store
    ):
        path, _, rebuild = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            handle = service._dataset("d")  # a request mid-dispatch holds this
            old_fingerprint = handle.fingerprint
            old_tree = handle.tree
            rebuild(seed=4)
            service.reload_dataset("d")
            # The snapshot is frozen: fingerprint, tree and store still
            # describe the pre-reload dataset as one consistent unit...
            assert handle.fingerprint == old_fingerprint
            assert handle.tree is old_tree
            # ...while the registry now serves the replacement.
            fresh = service._dataset("d")
            assert fresh is not handle
            assert fresh.fingerprint != old_fingerprint
            assert fresh.store is not handle.store
            # Finishing the old request computes against the old tree and
            # caches under the old fingerprint — a correct pair.
            value, cached, _degraded = service._dispatch(handle, "connectivity", {})
            assert value is not None and not cached

    def test_close_drains_retired_stores(self, rebuildable_store):
        path, _, rebuild = rebuildable_store
        service = GMineService()
        service.register_store(path, name="d")
        rebuild(seed=4)
        service.reload_dataset("d")
        retired = service.registry_of_datasets.retired_store_count()
        assert retired == 1
        service.close()
        assert service.registry_of_datasets.retired_store_count() == 0


class TestDatasetRoutes:
    def test_datasets_table_over_both_transports(self, service):
        client = GMineClient.in_process(service)
        table = client.datasets()
        assert len(table) == 1
        row = table[0]
        assert row["name"] == "dblp"
        assert row["kind"] == "store"
        assert row["fingerprint"] == service.fingerprint("dblp")
        assert row["store_path"].endswith(".gtree")

    def test_reload_route_returns_report(self, rebuildable_store):
        path, _, _ = rebuildable_store
        with GMineService() as service:
            service.register_store(path, name="d")
            client = GMineClient.in_process(service)
            report = client.reload_dataset("d")
            assert report["dataset"] == "d"
            assert report["changed"] is False
            assert "fingerprint" in report and "invalidated" in report

    def test_reload_route_unknown_dataset_is_404(self, service):
        client = GMineClient.in_process(service)
        status, payload = client.transport.router.handle(
            "POST", "/v1/datasets/nope/reload", None
        )
        assert status == 404
        assert payload["error"]["code"] == "DATASET_NOT_FOUND"

    def test_stats_surface_backend_and_store(self, service):
        client = GMineClient.in_process(service)
        stats = client.stats()
        assert stats["backend"]["name"] == "inline"
        assert stats["cache"]["store"]["kind"] == "memory"
        assert stats["dataset_info"][0]["name"] == "dblp"

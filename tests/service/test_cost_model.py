"""Measured-cost venue selection: EWMA model, persistence, bench seeding.

The safety contract is conservative displacement: the auto backend's
static rule is the baseline, and a venue may displace it only when both
have measurements and the challenger's prediction is strictly lower.
An empty model must therefore behave exactly like the static rule.
"""

import json
from pathlib import Path

import pytest

from repro.service import AutoBackend, CostModel, GMineService
from repro.service.costmodel import COST_MODEL_VERSION

pytestmark = pytest.mark.tier1

REPO_BENCH = Path(__file__).resolve().parents[2] / "benchmarks"


class TestEwma:
    def test_first_observation_is_taken_verbatim(self):
        model = CostModel()
        model.observe("rwr", "inline", 0.25)
        assert model.predict("rwr", "inline") == 0.25

    def test_later_observations_fold_in_with_alpha(self):
        model = CostModel(alpha=0.5)
        model.observe("rwr", "inline", 1.0)
        model.observe("rwr", "inline", 0.0)
        assert model.predict("rwr", "inline") == pytest.approx(0.5)
        model.observe("rwr", "inline", 0.5)
        assert model.predict("rwr", "inline") == pytest.approx(0.5)

    def test_negative_latencies_are_ignored(self):
        model = CostModel()
        model.observe("rwr", "inline", -1.0)
        assert model.predict("rwr", "inline") is None

    def test_seed_never_overwrites_observations(self):
        model = CostModel()
        model.observe("rwr", "inline", 0.2)
        model.seed("rwr", "inline", 9.9)
        assert model.predict("rwr", "inline") == 0.2

    def test_observation_replaces_seed(self):
        model = CostModel(alpha=0.5)
        model.seed("rwr", "inline", 9.9)
        model.observe("rwr", "inline", 0.1)
        # a real measurement restarts the EWMA; the seed leaves no trace
        assert model.predict("rwr", "inline") == pytest.approx(0.1)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)


class TestChoose:
    def test_empty_model_is_the_static_rule(self):
        model = CostModel()
        venue, basis = model.choose("rwr", ["inline", "thread", "process"],
                                    static="process")
        assert venue == "process"
        assert basis["rule"] == "static"

    def test_unmeasured_static_choice_is_never_displaced(self):
        model = CostModel()
        model.observe("rwr", "inline", 0.0001)  # challenger measured, static not
        venue, basis = model.choose("rwr", ["inline", "process"], static="process")
        assert venue == "process"
        assert basis["rule"] == "static"

    def test_strictly_cheaper_venue_displaces_static(self):
        model = CostModel()
        model.observe("rwr", "process", 0.5)
        model.observe("rwr", "inline", 0.1)
        venue, basis = model.choose("rwr", ["inline", "process"], static="process")
        assert venue == "inline"
        assert basis["rule"] == "measured"
        assert basis["predicted_seconds"]["inline"] == pytest.approx(0.1)

    def test_ties_keep_the_static_choice(self):
        model = CostModel()
        model.observe("rwr", "process", 0.1)
        model.observe("rwr", "inline", 0.1)
        venue, _ = model.choose("rwr", ["inline", "process"], static="process")
        assert venue == "process"

    def test_chosen_venue_never_predicted_worse_than_static(self):
        # the never-worse acceptance gate, swept over synthetic tables
        import itertools

        latencies = [0.01, 0.1, 0.1, 1.0]
        eligible = ["inline", "thread", "process"]
        for values in itertools.permutations(latencies, 3):
            model = CostModel()
            for venue, seconds in zip(eligible, values):
                model.observe("op", venue, seconds)
            for static in eligible:
                venue, _ = model.choose("op", eligible, static)
                assert model.predict("op", venue) <= model.predict("op", static)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cost.json")
        model = CostModel(path=path)
        model.observe("rwr", "process", 0.5)
        model.seed("metrics", "inline", 0.01)
        model.save()
        doc = json.loads(Path(path).read_text())
        assert doc["version"] == COST_MODEL_VERSION
        reloaded = CostModel(path=path)
        assert reloaded.predict("rwr", "process") == 0.5
        assert reloaded.predict("metrics", "inline") == 0.01
        assert reloaded.describe()["entries"]["rwr|process"]["source"] == "observed"

    def test_unversioned_or_corrupt_files_load_empty(self, tmp_path):
        path = tmp_path / "cost.json"
        path.write_text("{not json")
        assert len(CostModel(path=str(path))) == 0
        path.write_text(json.dumps({"version": 999, "entries": {}}))
        assert len(CostModel(path=str(path))) == 0

    def test_close_persists(self, tmp_path):
        path = str(tmp_path / "cost.json")
        model = CostModel(path=path)
        model.observe("rwr", "thread", 0.2)
        model.close()
        assert CostModel(path=path).predict("rwr", "thread") == 0.2

    def test_service_wires_model_next_to_the_cache_db(self, tmp_path):
        cache_path = tmp_path / "cache.db"
        with GMineService(backend="auto:2", cache_path=cache_path) as service:
            assert isinstance(service.backend, AutoBackend)
            model = service.backend.cost_model
            assert model is not None
            assert model.path == f"{cache_path}.cost.json"
            model.observe("rwr", "inline", 0.123)
        # close() persisted the table for the next restart
        assert CostModel(path=f"{cache_path}.cost.json").predict(
            "rwr", "inline"
        ) == 0.123


class TestBenchSeeding:
    @pytest.mark.skipif(
        not (REPO_BENCH / "BENCH_exec.json").exists(),
        reason="benchmark artifact not checked in",
    )
    def test_seeds_from_the_repo_exec_bench(self):
        model = CostModel()
        seeded = model.seed_from_bench(str(REPO_BENCH / "BENCH_exec.json"), None)
        assert seeded > 0
        table = model.describe()["entries"]
        assert any(key.startswith("rwr|") for key in table)
        assert all(entry["source"] == "bench_exec" for entry in table.values())
        assert all(entry["count"] == 0 for entry in table.values())

    @pytest.mark.skipif(
        not (REPO_BENCH / "BENCH_kernels.json").exists(),
        reason="benchmark artifact not checked in",
    )
    def test_kernel_bench_fills_inline_estimates(self):
        model = CostModel()
        model.seed_from_bench(None, str(REPO_BENCH / "BENCH_kernels.json"))
        assert model.predict("rwr", "inline") is not None

    def test_missing_files_seed_nothing(self, tmp_path):
        model = CostModel()
        assert model.seed_from_bench(
            str(tmp_path / "none.json"), str(tmp_path / "none2.json")
        ) == 0
        assert len(model) == 0


class TestAutoBackendIntegration:
    def test_model_redirects_traffic_it_measured_cheaper(self, store_path):
        model = CostModel()
        # measurements say inline beats the pool for rwr on this host
        model.observe("rwr", "process", 5.0)
        model.observe("rwr", "inline", 0.0001)
        backend = AutoBackend(workers=2, cpu_count=4, cost_model=model)
        with GMineService(backend=backend) as service:
            service.register_store(store_path, name="dblp")
            leaf = max(
                service.registry_of_datasets.get("dblp").tree.leaves(),
                key=lambda node: node.size,
            )
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            stats = service.stats()["backend"]
            assert stats["choices"] == {"rwr:inline": 1}
            decision = stats["decisions"]["rwr"]
            assert decision["venue"] == "inline"
            assert decision["rule"] == "measured"
            assert decision["static"] == "process"
            assert stats["cost_model"]["entries"]["rwr|inline"]["count"] >= 1

    def test_empty_model_keeps_static_behaviour(self, store_path):
        backend = AutoBackend(workers=2, cpu_count=4, cost_model=CostModel())
        with GMineService(backend=backend) as service:
            service.register_store(store_path, name="dblp")
            leaf = max(
                service.registry_of_datasets.get("dblp").tree.leaves(),
                key=lambda node: node.size,
            )
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            stats = service.stats()["backend"]
            assert stats["choices"] == {"rwr:process": 1}
            assert stats["decisions"]["rwr"]["rule"] == "static"

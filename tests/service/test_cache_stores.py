"""CacheStore seam tests: memory/SQLite parity, persistence, invalidation.

The two stores must be behaviourally interchangeable under the
:class:`~repro.service.cache.ResultCache` policy layer — same eviction and
TTL accounting — while the SQLite store additionally survives process
restarts and is shared across processes, which is what turns a service
restart into a warm start.
"""

import pytest

from repro.service import (
    GMineService,
    MemoryCacheStore,
    ResultCache,
    SQLiteCacheStore,
    make_cache_key,
)

pytestmark = pytest.mark.tier1


def _store_pair(tmp_path, clock, capacity=2):
    """One store of each kind, driven by the same deterministic clock."""
    return {
        "memory": MemoryCacheStore(capacity=capacity, clock=clock),
        "sqlite": SQLiteCacheStore(
            tmp_path / "parity.db", capacity=capacity, clock=clock
        ),
    }


class TestStoreParity:
    def test_eviction_accounting_matches(self, tmp_path, clock):
        for kind, store in _store_pair(tmp_path, clock).items():
            cache = ResultCache(store=store)
            cache.get_or_compute("a", lambda: 1)
            cache.get_or_compute("b", lambda: 2)
            cache.get_or_compute("a", lambda: 1)  # refresh a; b becomes LRU
            cache.get_or_compute("c", lambda: 3)  # evicts b
            assert cache.stats.evictions == 1, kind
            assert "a" in cache and "c" in cache and "b" not in cache, kind
            assert len(cache) == 2, kind
            cache.close()

    def test_ttl_accounting_matches(self, tmp_path, clock):
        for kind, store in _store_pair(tmp_path, clock, capacity=8).items():
            cache = ResultCache(ttl=10.0, store=store)
            cache.get_or_compute("k", lambda: "v1")
            clock.advance(9.0)
            assert cache.get_or_compute("k", lambda: "v2") == "v1", kind
            clock.advance(2.0)
            assert cache.get_or_compute("k", lambda: "v2") == "v2", kind
            assert cache.stats.expirations == 1, kind
            assert cache.stats.misses == 2, kind
            clock.advance(20.0)
            assert cache.sweep() == 1, kind
            assert cache.stats.expirations == 2, kind
            cache.close()
            clock.advance(-31.0)  # rewind for the next store

    def test_fingerprint_invalidation_matches(self, tmp_path, clock):
        for kind, store in _store_pair(tmp_path, clock, capacity=8).items():
            cache = ResultCache(store=store)
            cache.put(make_cache_key("fp1", "op", {"x": 1}), "one")
            cache.put(make_cache_key("fp1", "op", {"x": 2}), "two")
            cache.put(make_cache_key("fp2", "op", {"x": 1}), "other")
            assert cache.invalidate_fingerprint("fp1") == 2, kind
            assert len(cache) == 1, kind
            assert make_cache_key("fp2", "op", {"x": 1}) in cache, kind
            cache.close()

    def test_describe_reports_kind(self, tmp_path, clock):
        stores = _store_pair(tmp_path, clock)
        assert stores["memory"].describe()["kind"] == "memory"
        description = stores["sqlite"].describe()
        assert description["kind"] == "sqlite"
        assert description["path"].endswith("parity.db")
        stores["sqlite"].close()


class TestSQLitePersistence:
    def test_round_trip_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        store = SQLiteCacheStore(path, capacity=8)
        key = make_cache_key("fp", "rwr", {"sources": [1, 2]})
        store.put(key, "fp", {"answer": [1.5, 2.5]}, ttl=None)
        store.close()

        reopened = SQLiteCacheStore(path, capacity=8)
        status, value = reopened.get(key)
        assert status == "hit"
        assert value == {"answer": [1.5, 2.5]}
        reopened.close()

    def test_two_stores_share_one_file(self, tmp_path):
        path = tmp_path / "shared.db"
        writer = SQLiteCacheStore(path, capacity=8)
        reader = SQLiteCacheStore(path, capacity=8)
        writer.put("k", "fp", "shared-value", ttl=None)
        assert reader.get("k") == ("hit", "shared-value")
        assert reader.invalidate_fingerprint("fp") == 1
        assert writer.get("k") == ("miss", None)
        writer.close()
        reader.close()

    def test_corrupt_pickle_degrades_to_miss(self, tmp_path):
        path = tmp_path / "corrupt.db"
        store = SQLiteCacheStore(path, capacity=8)
        store.put("k", "fp", "value", ttl=None)
        store._conn.execute(
            "UPDATE results SET value = ? WHERE key = ?", (b"\x80garbage", repr("k"))
        )
        store._conn.commit()
        assert store.get("k") == ("miss", None)
        assert len(store) == 0  # the poisoned row was dropped
        store.close()


class TestServiceWarmRestart:
    def test_restart_serves_from_sqlite(self, store_path, hot_leaf, tmp_path):
        leaf, members = hot_leaf
        cache_db = tmp_path / "service-cache.db"
        request = {"op": "rwr",
                   "args": {"sources": list(members), "community": leaf.label}}

        with GMineService(cache_path=cache_db) as service:
            service.register_store(store_path, name="dblp")
            first = service.execute(request)
            assert first.ok and not first.cached

        # a brand-new service process over the same store + cache file
        with GMineService(cache_path=cache_db) as service:
            service.register_store(store_path, name="dblp")
            warm = service.execute(request)
            assert warm.ok and warm.cached
            assert warm.value.scores == first.value.scores
            assert service.stats()["cache"]["store"]["kind"] == "sqlite"

"""Batch execution: in-flight dedup, worker-pool fan-out, error isolation."""

import pytest

from repro.service import QueryRequest

pytestmark = pytest.mark.tier1


class TestDedup:
    def test_identical_requests_compute_once(self, service, hot_leaf):
        leaf, _ = hot_leaf
        request = {"op": "metrics", "args": {"community": leaf.label}}
        results = service.batch([request] * 6)
        assert all(result.ok for result in results)
        assert service.compute_counts.get("metrics") == 1
        # the duplicates are flagged as served without fresh computation
        assert sum(1 for result in results if result.cached) >= 5
        values = {id(result.value) for result in results}
        assert len(values) == 1, "every duplicate shares the one computed value"

    def test_equivalent_spellings_dedup(self, service, hot_leaf):
        leaf, members = hot_leaf
        results = service.batch(
            [
                {"op": "rwr", "args": {"community": leaf.label, "sources": members}},
                QueryRequest(
                    "rwr",
                    {"community": leaf.label, "sources": list(reversed(members))},
                ),
                {
                    "op": "rwr",
                    "args": {
                        "sources": members,
                        "community": leaf.label,
                        "solver": "power",
                    },
                },
            ]
        )
        assert all(result.ok for result in results)
        assert service.compute_counts.get("rwr") == 1

    def test_independent_requests_all_run(self, service, service_dataset):
        _, tree = service_dataset
        leaves = tree.leaves()[:5]
        results = service.batch(
            [{"op": "metrics", "args": {"community": leaf.label}} for leaf in leaves]
        )
        assert all(result.ok for result in results)
        assert service.compute_counts.get("metrics") == len(leaves)
        components = [result.value.num_weak_components for result in results]
        assert all(count >= 1 for count in components)

    def test_results_keep_submission_order(self, service, service_dataset):
        _, tree = service_dataset
        leaves = [leaf.label for leaf in tree.leaves()[:4]]
        requests = [{"op": "metrics", "args": {"community": label}} for label in leaves]
        results = service.batch(requests)
        assert [result.request.args["community"] for result in results] == leaves


class TestErrorIsolation:
    def test_one_bad_request_does_not_poison_the_batch(self, service, hot_leaf):
        leaf, members = hot_leaf
        results = service.batch(
            [
                {"op": "metrics", "args": {"community": leaf.label}},
                {"op": "metrics", "args": {"community": "no-such-community"}},
                {"op": "rwr", "args": {"community": leaf.label, "sources": members}},
                {"op": "teleport", "args": {}},
            ]
        )
        assert [result.ok for result in results] == [True, False, True, False]
        assert results[1].error_type == "NavigationError"
        assert "no-such-community" in results[1].error
        assert results[3].error_type == "UnknownOperationError"
        # failures surface through unwrap() but values come straight out
        assert results[0].unwrap().num_weak_components >= 1
        with pytest.raises(Exception):
            results[1].unwrap()

    def test_service_remains_usable_after_failed_batch(self, service, hot_leaf):
        leaf, _ = hot_leaf
        service.batch([{"op": "metrics", "args": {"community": "missing"}}] * 3)
        follow_up = service.metrics(community=leaf.label)
        assert follow_up.num_weak_components >= 1

    def test_failed_requests_are_never_cached(self, service):
        first = service.batch([{"op": "metrics", "args": {"community": "missing"}}])
        second = service.batch([{"op": "metrics", "args": {"community": "missing"}}])
        assert not first[0].ok and not second[0].ok
        # both attempts actually executed (no stale failure was served)
        assert not second[0].cached


class TestWorkers:
    def test_worker_pool_is_resized_on_demand(self, service, service_dataset):
        _, tree = service_dataset
        leaves = tree.leaves()
        results = service.batch(
            [{"op": "metrics", "args": {"community": leaf.label}} for leaf in leaves],
            max_workers=2,
        )
        assert all(result.ok for result in results)
        assert service.max_workers == 2


class TestMalformedRequests:
    def test_malformed_entry_is_isolated_not_fatal(self, service, hot_leaf):
        leaf, _ = hot_leaf
        results = service.batch(
            [
                {"op": "metrics", "args": {"community": leaf.label}},
                {"args": {"community": leaf.label}},  # no op/operation key
                {"op": "metrics", "args": {"community": leaf.label}},
            ]
        )
        assert [result.ok for result in results] == [True, False, True]
        assert results[1].request.operation == "<malformed>"
        assert results[1].error_type == "ServiceError"
        # the two well-formed twins still deduped onto one computation
        assert service.compute_counts.get("metrics") == 1

"""Shared prepared graphs through the service: publish, ship, attach, retire.

End-to-end ownership story: the registry publishes the widest prepared
view into a shared segment at warm time, ``DatasetExecSpec`` carries the
manifest, pool workers attach zero-copy (their warm reports prove it in
``/v1/stats``), and service close provably unlinks every segment.
"""

import glob
import os
import time

import pytest

from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import GraphError
from repro.graph import SharedPreparedGraph, shared_memory_available
from repro.graph.io import write_json
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = [
    pytest.mark.tier1,
    pytest.mark.skipif(
        not shared_memory_available(), reason="platform lacks shared memory"
    ),
]


@pytest.fixture(scope="module")
def shippable_dataset(tmp_path_factory):
    """A store + graph file pair workers can reopen by path."""
    dataset = generate_dblp(DBLPConfig(num_authors=240, seed=31))
    tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=31)
    root = tmp_path_factory.mktemp("shared")
    store_file = root / "shared.gtree"
    graph_file = root / "shared.json"
    save_gtree(tree, store_file)
    write_json(dataset.graph, graph_file)
    return dataset, store_file, graph_file


def _largest_leaf(service, name="dblp"):
    tree = service.registry_of_datasets.get(name).tree
    return max(tree.leaves(), key=lambda node: node.size)


def _dev_shm_segments():
    if not os.path.isdir("/dev/shm"):
        return None
    return set(glob.glob("/dev/shm/psm_*"))


class TestRegistryPublishes:
    def test_process_backend_registers_a_shared_view(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        with GMineService(backend="process:2") as service:
            service.register_store(
                store_file, name="dblp", graph_path=str(graph_file)
            )
            handle = service.registry_of_datasets.get("dblp")
            assert handle.share_prepared
            prepared = handle.prepared_graph()
            assert isinstance(prepared, SharedPreparedGraph)
            assert prepared.owner and not prepared.released
            spec = handle.exec_spec()
            assert spec.prepared_manifest == prepared.manifest
            stats = service.stats()["prepared_shared"]
            assert stats["enabled"]
            assert stats["prepares"] >= 1 and stats["segment_bytes"] > 0

    def test_inline_backend_never_publishes(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        with GMineService() as service:  # inline: no workers to share with
            service.register_store(
                store_file, name="dblp", graph_path=str(graph_file)
            )
            handle = service.registry_of_datasets.get("dblp")
            assert not handle.share_prepared
            prepared = handle.prepared_graph()
            assert not isinstance(prepared, SharedPreparedGraph)
            assert handle.exec_spec().prepared_manifest is None
            assert not service.stats()["prepared_shared"]["enabled"]

    def test_shared_prepared_flag_overrides_the_default(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        with GMineService(backend="process:2", shared_prepared=False) as service:
            service.register_store(
                store_file, name="dblp", graph_path=str(graph_file)
            )
            assert not service.registry_of_datasets.share_prepared
            assert service.registry_of_datasets.get(
                "dblp"
            ).exec_spec().prepared_manifest is None


class TestWorkersAttach:
    def test_warm_workers_attach_instead_of_rebuilding(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        with GMineService(backend="process:2", max_workers=2) as service:
            service.register_store(
                store_file, name="dblp", graph_path=str(graph_file)
            )
            leaf = _largest_leaf(service)
            result = service.rwr(list(leaf.members[:2]), community=leaf.label)
            assert result.converged
            # warm reports land asynchronously; wait for at least one
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                worker_shm = service.stats()["backend"]["worker_shm"]
                if worker_shm["attaches"] >= 1:
                    break
                time.sleep(0.1)
            assert worker_shm["attaches"] >= 1
            assert worker_shm["attach_fallbacks"] == 0
            assert worker_shm["workers_reporting"] >= 1

    def test_results_match_inline_backend_bitwise(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        answers = {}
        for backend in ("inline", "process:2"):
            with GMineService(backend=backend) as service:
                service.register_store(
                    store_file, name="dblp", graph_path=str(graph_file)
                )
                leaf = _largest_leaf(service)
                result = service.rwr(list(leaf.members[:2]), community=leaf.label)
                answers[backend] = result.scores
        assert answers["inline"] == answers["process:2"]


class TestRetirement:
    def test_close_unlinks_every_segment(self, shippable_dataset):
        _, store_file, graph_file = shippable_dataset
        segments_before = _dev_shm_segments()
        service = GMineService(backend="process:2")
        service.register_store(store_file, name="dblp", graph_path=str(graph_file))
        handle = service.registry_of_datasets.get("dblp")
        prepared = handle.prepared_graph()
        manifest = prepared.manifest
        service.close()
        assert prepared.released
        with pytest.raises(GraphError):
            SharedPreparedGraph.attach(manifest)
        if segments_before is not None:
            assert _dev_shm_segments() == segments_before

    def test_reload_retires_the_old_segment(self, shippable_dataset):
        dataset, store_file, graph_file = shippable_dataset
        with GMineService(backend="process:2") as service:
            service.register_store(
                store_file, name="dblp", graph_path=str(graph_file)
            )
            handle = service.registry_of_datasets.get("dblp")
            old = handle.prepared_graph()
            assert isinstance(old, SharedPreparedGraph)
            service.reload_dataset("dblp")
            # same content fingerprint -> the prepared view survives reload
            renewed = service.registry_of_datasets.get("dblp").prepared_graph()
            assert renewed is old and not old.released

"""Property suite for the registry write path (``dataset.apply``).

The acceptance bar for mutable datasets: applying a random edit script
through the service must leave a G-Tree **byte-identical** — root
fingerprint, Merkle partition map, and every observable query payload
(metrics, RWR, connectivity) — to one obtained by editing a private clone
out-of-band and serving it fresh.  The incremental path (partition-scoped
invalidation, surviving cache entries, copy-on-write swap) must be
undetectable from the outside.

A second property pins reversibility: applying a script and then its
inverse returns the dataset to the original root fingerprint and partition
map exactly.

The deterministic tests at the bottom pin the tentpole's cache-survival
criterion: a single-edge edit invalidates only the partitions it touched,
and every untouched community's cached entry is served again afterwards.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GMineClient, dumps
from repro.core.builder import build_gtree
from repro.core.editing import GraphEditor, apply_edit_script
from repro.graph.generators import connected_caveman
from repro.service import GMineService

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def pristine():
    """One graph + tree shared by every example (``apply`` is copy-on-write,
    so the registered originals are never mutated)."""
    graph = connected_caveman(4, 8, seed=11)
    tree = build_gtree(graph, fanout=4, levels=2, seed=11)
    return graph, tree


def _make_script(graph, tree, rng, length, invertible=False):
    """A valid random edit script plus the inverse that undoes it.

    The generator walks a model of the evolving graph (edge weights, the
    live vertex set) so every step is applicable when its turn comes.  The
    returned inverse is already reversed — applying ``script`` then
    ``inverse`` is a no-op by construction.  ``invertible`` restricts the
    action mix to edits whose inverses the model can express exactly.
    """
    present = set(graph.nodes())
    edges = {}
    for u, v, w in graph.edges():
        edges[frozenset((u, v))] = w
    leaf_labels = [leaf.label for leaf in tree.leaves()]
    next_node = max(present) + 1
    removals_left = 2  # keep leaves populated; emptied leaves are pinned elsewhere
    actions = ["add_edge", "add_edge", "remove_edge", "add_node"]
    if not invertible:
        actions += ["remove_node", "update_node_attrs"]
    script, inverse = [], []
    for _ in range(length):
        action = rng.choice(actions)
        if action == "add_edge":
            u, v = rng.sample(sorted(present), 2)
            weight = round(rng.uniform(0.5, 4.0), 3)
            key = frozenset((u, v))
            previous = edges.get(key)
            script.append({"action": "add_edge", "u": u, "v": v, "weight": weight})
            if previous is None:
                inverse.append({"action": "remove_edge", "u": u, "v": v})
            else:
                inverse.append(
                    {"action": "add_edge", "u": u, "v": v, "weight": previous}
                )
            edges[key] = weight
        elif action == "remove_edge":
            if not edges:
                continue
            key = rng.choice(sorted(edges, key=sorted))
            u, v = sorted(key)
            weight = edges.pop(key)
            script.append({"action": "remove_edge", "u": u, "v": v})
            inverse.append(
                {"action": "add_edge", "u": u, "v": v, "weight": weight}
            )
        elif action == "add_node":
            node = next_node
            next_node += 1
            community = rng.choice(leaf_labels)
            script.append(
                {"action": "add_node", "node": node, "community": community,
                 "attrs": {"name": f"author-{node}"}}
            )
            inverse.append({"action": "remove_node", "node": node})
            present.add(node)
        elif action == "remove_node" and removals_left > 0:
            node = rng.choice(sorted(present))
            script.append({"action": "remove_node", "node": node})
            present.discard(node)
            for key in [key for key in edges if node in key]:
                del edges[key]
            removals_left -= 1
        elif action == "update_node_attrs":
            node = rng.choice(sorted(present))
            script.append(
                {"action": "update_node_attrs", "node": node,
                 "attrs": {"name": f"renamed-{rng.randrange(1000)}"}}
            )
    inverse.reverse()
    return script, inverse


def _probe_payloads(service, tree, graph):
    """Canonical bytes of every observable answer over ``service``."""
    client = GMineClient.in_process(service)
    sources = sorted(graph.nodes(), key=repr)[:2]
    payloads = [dumps(client.query("connectivity").unwrap())]
    payloads.append(
        dumps(client.query("rwr", args={"sources": sources}).unwrap())
    )
    for leaf in tree.leaves():
        payloads.append(
            dumps(
                client.query("metrics", args={"community": leaf.label}).unwrap()
            )
        )
    return payloads


class TestApplyMatchesFromScratch:
    @settings(max_examples=12, derandomize=True, deadline=None)
    @given(seed=st.integers(0, 2**16), length=st.integers(1, 6))
    def test_edited_dataset_is_byte_identical_to_a_fresh_rebuild(
        self, pristine, seed, length
    ):
        graph, tree = pristine
        script, _ = _make_script(graph, tree, random.Random(seed), length)
        with GMineService() as incremental, GMineService() as rebuilt:
            incremental.register_tree(tree, graph=graph, name="g")
            report = incremental.apply_dataset("g", script)
            assert report["edits"] == len(script)

            # Out-of-band reference: same script on a private clone, served
            # by a service that never saw the original content.
            reference_graph = graph.copy()
            reference_tree = tree.clone()
            apply_edit_script(
                GraphEditor(reference_graph, reference_tree), script
            )
            reference_tree.assert_valid()
            rebuilt.register_tree(reference_tree, graph=reference_graph, name="g")

            handle = incremental.registry_of_datasets.get("g")
            reference = rebuilt.registry_of_datasets.get("g")
            assert handle.fingerprint == reference.fingerprint
            assert handle.fingerprint == reference_tree.fingerprint()
            assert dict(handle.partition_fingerprints) == (
                reference_tree.partition_fingerprints()
            )
            assert _probe_payloads(incremental, reference_tree, reference_graph) == (
                _probe_payloads(rebuilt, reference_tree, reference_graph)
            )

    @settings(max_examples=12, derandomize=True, deadline=None)
    @given(seed=st.integers(0, 2**16), length=st.integers(1, 6))
    def test_warm_cache_and_fresh_service_answer_identically(
        self, pristine, seed, length
    ):
        """Entries surviving the edit serve the same bytes a cold service
        computes — survival is a latency optimisation, never a different
        answer."""
        graph, tree = pristine
        script, _ = _make_script(graph, tree, random.Random(seed), length)
        with GMineService() as warm, GMineService() as cold:
            warm.register_tree(tree, graph=graph, name="g")
            # Warm every partition-scoped entry *before* the edit.
            for leaf in tree.leaves():
                warm.call("metrics", community=leaf.label)
            warm.apply_dataset("g", script)

            reference_graph = graph.copy()
            reference_tree = tree.clone()
            apply_edit_script(
                GraphEditor(reference_graph, reference_tree), script
            )
            cold.register_tree(reference_tree, graph=reference_graph, name="g")
            assert _probe_payloads(warm, reference_tree, reference_graph) == (
                _probe_payloads(cold, reference_tree, reference_graph)
            )


class TestUndoRestoresTheOriginal:
    @settings(max_examples=15, derandomize=True, deadline=None)
    @given(seed=st.integers(0, 2**16), length=st.integers(1, 5))
    def test_inverse_script_returns_to_the_original_fingerprint(
        self, pristine, seed, length
    ):
        graph, tree = pristine
        original_fingerprint = tree.fingerprint()
        original_partitions = tree.partition_fingerprints()
        script, inverse = _make_script(
            graph, tree, random.Random(seed), length, invertible=True
        )
        with GMineService() as service:
            service.register_tree(tree, graph=graph, name="g")
            forward = service.apply_dataset("g", script)
            if forward["changed"]:
                assert forward["fingerprint"] != original_fingerprint
            backward = service.apply_dataset("g", inverse)
            handle = service.registry_of_datasets.get("g")
            assert handle.fingerprint == original_fingerprint
            assert dict(handle.partition_fingerprints) == original_partitions
            if forward["changed"]:
                assert backward["changed"]
                assert backward["fingerprint"] == original_fingerprint


class TestPartitionScopedSurvival:
    def test_intra_leaf_edit_recomputes_only_the_touched_leaf(self, pristine):
        graph, tree = pristine
        with GMineService() as service:
            service.register_tree(tree, graph=graph, name="g")
            leaves = tree.leaves()
            for leaf in leaves:
                service.call("metrics", community=leaf.label)
            computed_before = service.compute_counts.get("metrics", 0)
            assert computed_before == len(leaves)

            # Re-weight an edge strictly inside the first leaf.
            target = leaves[0]
            members = set(target.members)
            u, v, w = next(
                (u, v, w) for u, v, w in graph.edges()
                if u in members and v in members
            )
            report = service.apply_dataset(
                "g",
                [{"action": "add_edge", "u": u, "v": v, "weight": w + 1.0}],
            )
            assert report["changed"]
            assert target.label in report["changed_partitions"]

            for leaf in leaves:
                service.call("metrics", community=leaf.label)
            recomputed = service.compute_counts.get("metrics", 0) - computed_before
            assert recomputed == 1, (
                "only the edited partition may recompute; every sibling "
                "entry must survive the edit"
            )

    def test_cross_partition_edit_preserves_every_leaf_entry(self, pristine):
        graph, tree = pristine
        with GMineService() as service:
            service.register_tree(tree, graph=graph, name="g")
            leaves = tree.leaves()
            for leaf in leaves:
                service.call("metrics", community=leaf.label)
            computed_before = service.compute_counts.get("metrics", 0)

            # A brand-new edge between two partitions changes their common
            # ancestors' connectivity — but no leaf subgraph, so every
            # leaf-scoped metrics entry stays warm.
            u = next(
                member for member in leaves[0].members
                if all(
                    other not in set(leaves[2].members)
                    for other in graph.neighbors(member)
                )
            )
            v = leaves[2].members[0]
            report = service.apply_dataset(
                "g", [{"action": "add_edge", "u": u, "v": v, "weight": 2.0}]
            )
            assert report["changed"]
            changed_leaves = [
                leaf for leaf in leaves
                if leaf.label in report["changed_partitions"]
            ]
            assert changed_leaves == []

            for leaf in leaves:
                service.call("metrics", community=leaf.label)
            assert service.compute_counts.get("metrics", 0) == computed_before, (
                "a pure cross-partition edit must not evict any leaf entry"
            )
            # The widest scope did change: connectivity recomputes fresh.
            service.call("connectivity")
            assert service.compute_counts.get("connectivity", 0) == 1

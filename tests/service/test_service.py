"""Service-level caching: hit/miss accounting across sessions and operations."""

import pytest

from repro.errors import ServiceError, UnknownOperationError
from repro.mining.metrics_suite import SubgraphMetrics
from repro.mining.rwr import RWRResult

pytestmark = pytest.mark.tier1


class TestRWRCaching:
    def test_second_identical_rwr_performs_zero_new_power_iterations(
        self, service, hot_leaf
    ):
        """Acceptance criterion: repeat RWR = pure cache hit, no new iterations."""
        leaf, members = hot_leaf
        first = service.rwr(members, community=leaf.label)
        assert isinstance(first, RWRResult)
        assert first.iterations > 0, "the first request really iterates"
        assert service.compute_counts.get("rwr") == 1
        hits_before = service.cache.stats.hits

        second = service.rwr(members, community=leaf.label)
        assert second is first, "the cached steady state is returned as-is"
        assert service.compute_counts.get("rwr") == 1, (
            "zero new power iterations were performed for the repeat request"
        )
        assert service.cache.stats.hits == hits_before + 1

    def test_source_order_and_container_do_not_defeat_the_cache(
        self, service, hot_leaf
    ):
        leaf, members = hot_leaf
        first = service.rwr(members, community=leaf.label)
        second = service.rwr(tuple(reversed(members)), community=leaf.label)
        assert second is first
        assert service.compute_counts.get("rwr") == 1

    def test_different_restart_probability_is_a_different_entry(self, service, hot_leaf):
        leaf, members = hot_leaf
        service.rwr(members, community=leaf.label, restart_probability=0.15)
        service.rwr(members, community=leaf.label, restart_probability=0.25)
        assert service.compute_counts.get("rwr") == 2


class TestMetricsCaching:
    def test_second_identical_metrics_request_is_a_cache_hit(self, service, hot_leaf):
        leaf, _ = hot_leaf
        first = service.metrics(community=leaf.label)
        assert isinstance(first, SubgraphMetrics)
        assert service.compute_counts.get("metrics") == 1
        second = service.metrics(community=leaf.label)
        assert second is first
        assert service.compute_counts.get("metrics") == 1
        assert service.cache.stats.hits >= 1

    def test_session_metrics_share_the_service_cache(self, service, hot_leaf):
        """A session's interactive metrics call reuses the direct-call entry."""
        leaf, _ = hot_leaf
        direct = service.metrics(community=leaf.label)
        session = service.open_session("dblp", focus=leaf.label)
        via_session = session.recording.community_metrics()
        assert via_session is direct
        assert service.compute_counts.get("metrics") == 1

    def test_id_and_label_addressing_share_one_entry(self, service, hot_leaf):
        leaf, _ = hot_leaf
        by_label = service.metrics(community=leaf.label)
        by_id = service.metrics(community=leaf.node_id)
        assert by_id is by_label
        assert service.compute_counts.get("metrics") == 1

    def test_distinct_communities_are_distinct_entries(self, service, service_dataset):
        _, tree = service_dataset
        leaves = tree.leaves()
        service.metrics(community=leaves[0].label)
        service.metrics(community=leaves[1].label)
        assert service.compute_counts.get("metrics") == 2


class TestOtherOperations:
    def test_connectivity_and_inspect_edge_are_cached(self, service, service_dataset):
        _, tree = service_dataset
        edges = service.connectivity()  # root's children
        assert service.connectivity() is edges
        if edges:
            a = tree.node(edges[0].source).label
            b = tree.node(edges[0].target).label
            inspection = service.inspect_edge(a, b)
            # symmetric pair ordering shares the entry
            assert service.inspect_edge(b, a) is inspection
            assert service.compute_counts.get("inspect_edge") == 1

    def test_connection_subgraph_is_cached(self, service, hot_leaf):
        leaf, members = hot_leaf
        result = service.connection_subgraph(members, community=leaf.label, budget=12)
        again = service.connection_subgraph(
            list(reversed(members)), community=leaf.label, budget=12
        )
        assert again is result
        assert service.compute_counts.get("connection_subgraph") == 1

    def test_unknown_operation_rejected(self, service):
        with pytest.raises(UnknownOperationError):
            service.call("teleport")

    def test_unknown_dataset_rejected(self, service):
        with pytest.raises(ServiceError):
            service.metrics(dataset="nope")


class TestStructuredErrors:
    """The protocol error taxonomy surfaces through the service layer itself."""

    def test_execute_records_stable_error_codes(self, service):
        from repro.errors import NavigationError

        result = service.execute(
            {"op": "metrics", "args": {"community": "no-such-community"}}
        )
        assert not result.ok
        assert result.code == "NAVIGATION_ERROR"
        assert result.error_type == "NavigationError"
        with pytest.raises(NavigationError):
            result.unwrap()

    def test_unwrap_raises_typed_exceptions_from_the_taxonomy(self, service):
        unknown_op = service.execute({"op": "teleport", "args": {}})
        with pytest.raises(UnknownOperationError):
            unknown_op.unwrap()

        from repro.errors import DatasetNotFoundError, InvalidArgumentError

        bad_dataset = service.execute({"op": "metrics", "dataset": "nope"})
        assert bad_dataset.code == "DATASET_NOT_FOUND"
        with pytest.raises(DatasetNotFoundError):
            bad_dataset.unwrap()

        bad_args = service.execute({"op": "rwr", "args": {"sources": []}})
        assert bad_args.code == "INVALID_ARGUMENT"
        with pytest.raises(InvalidArgumentError):
            bad_args.unwrap()

    def test_unknown_argument_is_rejected_by_the_registry(self, service, hot_leaf):
        from repro.errors import InvalidArgumentError

        leaf, _ = hot_leaf
        with pytest.raises(InvalidArgumentError, match="unknown argument"):
            service.call("connectivity", community=leaf.label, verbose=True)

    def test_resuming_expired_session_raises_typed_error(
        self, service_dataset, store_path, clock
    ):
        from repro.errors import SessionExpiredError, SessionNotFoundError
        from repro.service import GMineService

        dataset, _ = service_dataset
        with GMineService(session_ttl=30.0, clock=clock) as svc:
            svc.register_store(store_path, graph=dataset.graph, name="dblp")
            session = svc.open_session()
            clock.advance(31.0)
            with pytest.raises(SessionExpiredError):
                svc.resume_session(session.session_id)
            with pytest.raises(SessionNotFoundError):
                svc.resume_session("never-issued")


class TestEviction:
    def test_cache_eviction_accounting_under_small_capacity(
        self, service_dataset, store_path
    ):
        from repro.service import GMineService

        dataset, tree = service_dataset
        with GMineService(cache_capacity=2) as small:
            small.register_store(store_path, graph=dataset.graph, name="dblp")
            leaves = tree.leaves()[:4]
            for leaf in leaves:
                small.metrics(community=leaf.label)
            assert small.cache.stats.evictions == 2
            assert small.cache.stats.misses == 4
            # the oldest entry was evicted; asking again recomputes
            small.metrics(community=leaves[0].label)
            assert small.compute_counts.get("metrics") == 5

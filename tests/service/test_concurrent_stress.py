"""Threaded stress: many sessions over one shared store == sequential runs."""

import threading

import pytest

from repro.service import GMineService
from repro.storage.gtree_store import GTreeStore

pytestmark = pytest.mark.tier1

NUM_SESSIONS = 10  # acceptance criterion asks for >= 8


def _workload(tree):
    """A deterministic per-session script: (leaf label, rwr sources)."""
    leaves = tree.leaves()
    scripts = []
    for position in range(NUM_SESSIONS):
        leaf = leaves[position % len(leaves)]
        sources = leaf.members[: 2 if leaf.size >= 2 else 1]
        scripts.append((leaf.label, sources))
    return scripts


def _run_one(service, script):
    """Execute one session's script and summarise its observable answers."""
    leaf_label, sources = script
    session = service.open_session("dblp", focus=leaf_label)
    metrics = session.recording.community_metrics()
    rwr = service.rwr(sources, community=leaf_label)
    connectivity = service.connectivity()
    return {
        "focus": session.engine.focus.label,
        "weak": metrics.num_weak_components,
        "diameter": metrics.diameter,
        "degree_hist": dict(metrics.degree_histogram),
        "rwr_scores": {repr(node): round(score, 10) for node, score in rwr.scores.items()},
        "connectivity": len(connectivity),
    }


class TestConcurrentSessions:
    def test_concurrent_sessions_match_sequential_results(
        self, service_dataset, store_path
    ):
        dataset, tree = service_dataset
        scripts = _workload(tree)

        # --- sequential reference: a fresh service, one session at a time --- #
        with GMineService(max_workers=1) as reference:
            with GTreeStore(store_path, cache_capacity=4) as store:
                reference.register_store(store, graph=dataset.graph, name="dblp")
                expected = [_run_one(reference, script) for script in scripts]

        # --- concurrent run: one shared store, tiny buffer pool ------------- #
        with GMineService(max_workers=NUM_SESSIONS) as service:
            with GTreeStore(store_path, cache_capacity=2) as store:
                service.register_store(store, graph=dataset.graph, name="dblp")
                observed = [None] * NUM_SESSIONS
                failures = []

                def worker(position):
                    try:
                        observed[position] = _run_one(service, scripts[position])
                    except Exception as error:  # pragma: no cover - diagnostic
                        failures.append((position, repr(error)))

                threads = [
                    threading.Thread(target=worker, args=(position,))
                    for position in range(NUM_SESSIONS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)

                assert not failures, f"concurrent sessions failed: {failures}"
                assert observed == expected, (
                    "concurrent answers must be identical to the sequential run"
                )
                assert len(service.sessions) == NUM_SESSIONS

                # the cache demonstrably deduped: distinct questions were
                # computed once each, every repeat was served from memory
                distinct_leaves = len({script[0] for script in scripts})
                assert service.compute_counts.get("metrics") == distinct_leaves
                assert service.compute_counts.get("rwr") == distinct_leaves
                assert service.compute_counts.get("connectivity") == 1
                stats = service.cache.stats
                assert stats.hits + stats.coalesced > 0

    def test_concurrent_identical_sessions_compute_each_question_once(
        self, service_dataset, store_path
    ):
        """All sessions asking the same question => exactly one computation."""
        dataset, tree = service_dataset
        hot = max(tree.leaves(), key=lambda leaf: leaf.size)
        barrier = threading.Barrier(NUM_SESSIONS)

        with GMineService(max_workers=NUM_SESSIONS) as service:
            with GTreeStore(store_path, cache_capacity=2) as store:
                service.register_store(store, graph=dataset.graph, name="dblp")
                answers = [None] * NUM_SESSIONS

                def worker(position):
                    barrier.wait(timeout=30)
                    session = service.open_session("dblp", focus=hot.label)
                    answers[position] = session.recording.community_metrics()

                threads = [
                    threading.Thread(target=worker, args=(position,))
                    for position in range(NUM_SESSIONS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)

                assert all(answer is answers[0] for answer in answers), (
                    "every session shares the single computed metrics object"
                )
                assert service.compute_counts.get("metrics") == 1

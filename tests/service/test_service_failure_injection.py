"""Failure injection for concurrent store access through the service.

A leaf read that fails mid-batch (page corruption, I/O error) must poison
only the request that touched it — never the service, the batch's other
requests, or other live sessions.
"""

import threading

import pytest

from repro.errors import CorruptStoreError
from repro.service import GMineService
from repro.storage.gtree_store import GTreeStore

pytestmark = pytest.mark.tier1


class FlakyStore(GTreeStore):
    """A store whose configured leaves fail to load, optionally only N times."""

    def __init__(self, path, poisoned=None, fail_times=None, **kwargs):
        super().__init__(path, **kwargs)
        self.poisoned = set(poisoned or ())
        self.fail_times = fail_times  # None = always fail
        self.failures = 0
        self._failure_lock = threading.Lock()

    def load_leaf_subgraph(self, node_id):
        if node_id in self.poisoned:
            with self._failure_lock:
                if self.fail_times is None or self.failures < self.fail_times:
                    self.failures += 1
                    raise CorruptStoreError(
                        f"injected failure reading leaf {node_id}"
                    )
        return super().load_leaf_subgraph(node_id)


@pytest.fixture
def flaky_setup(service_dataset, store_path):
    """A service over a store where the largest leaf is poisoned."""
    dataset, tree = service_dataset
    bad_leaf = max(tree.leaves(), key=lambda leaf: leaf.size)
    good_leaves = [leaf for leaf in tree.leaves() if leaf.node_id != bad_leaf.node_id]
    store = FlakyStore(store_path, poisoned={bad_leaf.node_id}, cache_capacity=4)
    # No full graph on purpose: every subgraph must come through the store.
    with GMineService(max_workers=6) as service:
        service.register_store(store, name="dblp")
        yield service, store, bad_leaf, good_leaves
    store.close()


class TestBatchIsolation:
    def test_failing_leaf_poisons_only_its_own_request(self, flaky_setup):
        service, store, bad_leaf, good_leaves = flaky_setup
        requests = [{"op": "metrics", "args": {"community": bad_leaf.label}}]
        requests += [
            {"op": "metrics", "args": {"community": leaf.label}}
            for leaf in good_leaves[:4]
        ]
        results = service.batch(requests)
        assert [result.ok for result in results] == [False, True, True, True, True]
        assert results[0].error_type == "CorruptStoreError"
        assert "injected failure" in results[0].error
        assert store.failures == 1

    def test_concurrent_sessions_survive_another_sessions_failure(self, flaky_setup):
        service, _, bad_leaf, good_leaves = flaky_setup
        outcomes = [None] * 6

        def worker(position):
            target = bad_leaf if position == 0 else good_leaves[position - 1]
            try:
                session = service.open_session("dblp", focus=target.label)
                metrics = session.recording.community_metrics()
                outcomes[position] = ("ok", metrics.num_weak_components)
            except CorruptStoreError:
                outcomes[position] = ("error", None)

        threads = [threading.Thread(target=worker, args=(p,)) for p in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert outcomes[0] == ("error", None)
        assert all(status == "ok" for status, _ in outcomes[1:]), (
            "one session hitting a bad leaf must not affect the others"
        )
        # the service is still fully operational afterwards
        follow_up = service.metrics(community=good_leaves[0].label)
        assert follow_up.num_weak_components >= 1

    def test_transient_failure_is_retried_not_cached(self, flaky_setup):
        service, store, bad_leaf, _ = flaky_setup
        store.fail_times = 1  # fail exactly once, then heal
        first = service.batch([{"op": "metrics", "args": {"community": bad_leaf.label}}])
        assert not first[0].ok
        second = service.batch([{"op": "metrics", "args": {"community": bad_leaf.label}}])
        assert second[0].ok, "failures are not cached; the retry reaches the store"
        assert second[0].value.num_weak_components >= 1

    def test_coalesced_waiters_see_the_same_failure_then_recover(self, flaky_setup):
        service, store, bad_leaf, _ = flaky_setup
        barrier = threading.Barrier(4)
        errors = []

        def worker():
            barrier.wait(timeout=30)
            result = service.execute(
                {"op": "metrics", "args": {"community": bad_leaf.label}}
            )
            if not result.ok:
                errors.append(result.error_type)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(errors) == 4, "every concurrent asker observes the failure"
        # heal the leaf; the very next request computes cleanly
        store.poisoned.clear()
        recovered = service.metrics(community=bad_leaf.label)
        assert recovered.num_weak_components >= 1

"""``--backend auto``: per-op venue selection from cost class + cpu_count.

The satellite contract: ``auto`` never changes *what* is computed (byte
parity is covered by the executor suite), only *where* — process pools
when the host has cores and the dataset is reopenable by path, threads
when it is not, inline on a single-core host — and every decision is
surfaced through ``/v1/stats`` so an operator can audit it.
"""

import pytest

from repro.api import GMineClient
from repro.api.ops import DEFAULT_REGISTRY
from repro.service import AutoBackend, DatasetExecSpec, GMineService, make_backend
from repro.storage.gtree_store import GTreeStore

pytestmark = pytest.mark.tier1


def _rwr_plan(members, leaf):
    spec = DEFAULT_REGISTRY.get("rwr")
    return spec.plan(
        spec.canonicalize({"sources": list(members), "community": leaf.label})
    )


class TestAutoSelection:
    def test_single_core_host_runs_inline(self, service_dataset):
        dataset, tree = service_dataset
        leaf = max(tree.leaves(), key=lambda node: node.size)
        with GMineService(backend=AutoBackend(cpu_count=1)) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            stats = service.stats()["backend"]
            assert stats["name"] == "auto"
            assert stats["cpu_count"] == 1
            assert stats["choices"] == {"rwr:inline": 1}
            assert stats["shipped"] == 0

    def test_process_capable_dataset_goes_to_the_pool(self, store_path):
        with GMineService(backend=AutoBackend(workers=2, cpu_count=4)) as service:
            service.register_store(store_path, name="dblp")
            leaf = max(
                service.registry_of_datasets.get("dblp").tree.leaves(),
                key=lambda node: node.size,
            )
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            stats = service.stats()["backend"]
            assert stats["choices"] == {"rwr:process": 1}
            assert stats["shipped"] == 1
            assert "process" in stats["delegates"]

    def test_unshippable_dataset_falls_back_to_threads(self, service_dataset):
        dataset, tree = service_dataset
        leaf = max(tree.leaves(), key=lambda node: node.size)
        with GMineService(backend=AutoBackend(workers=2, cpu_count=4)) as service:
            # in-memory tree: workers cannot reopen it by path
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            service.rwr(list(leaf.members[:2]), community=leaf.label)
            service.metrics(community=leaf.label)
            stats = service.stats()["backend"]
            assert stats["choices"] == {"metrics:thread": 1, "rwr:thread": 1}
            assert stats["delegates"]["thread"]["executed"] == 2

    def test_cheap_ops_never_reach_the_backend(self, service_dataset):
        dataset, tree = service_dataset
        with GMineService(backend=AutoBackend(cpu_count=4)) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            service.connectivity()
            stats = service.stats()["backend"]
            assert stats["choices"] == {}
            assert stats["executed"] == 0

    def test_choice_ledger_surfaces_over_the_protocol(self, store_path):
        with GMineService(backend="auto:2") as service:
            service.register_store(store_path, name="dblp")
            client = GMineClient.in_process(service)
            leaf = max(
                service.registry_of_datasets.get("dblp").tree.leaves(),
                key=lambda node: node.size,
            )
            client.call("rwr", sources=list(leaf.members[:2]),
                        community=leaf.label)
            backend = client.stats()["backend"]
            assert backend["name"] == "auto"
            assert "cpu_count" in backend and "choices" in backend
            assert sum(backend["choices"].values()) == 1

    def test_stale_dataset_falls_back_but_choices_stay_consistent(
        self, store_path, hot_leaf
    ):
        # A hot-reload racing a dispatched request: auto still *chooses*
        # process (the choice ledger records intent), the process delegate
        # serves from the parent, and the aggregated counters agree.
        leaf, members = hot_leaf
        plan = _rwr_plan(members, leaf)
        stale = DatasetExecSpec(
            "dblp", "not-the-real-fp", store_path=str(store_path)
        )
        backend = AutoBackend(workers=1, cpu_count=4)
        try:
            value = backend.run(stale, plan, lambda: "served-by-parent")
            assert value == "served-by-parent"
            stats = backend.stats()
            assert stats["choices"] == {"rwr:process": 1}
            assert stats["fallbacks"] == 1 and stats["shipped"] == 0
            assert stats["errors"] == 0
            assert sum(stats["choices"].values()) == stats["executed"]
        finally:
            backend.close()

    def test_broken_pool_falls_back_then_recovers(self, store_path, hot_leaf):
        leaf, members = hot_leaf
        plan = _rwr_plan(members, leaf)
        with GTreeStore(store_path) as probe:
            fingerprint = probe.fingerprint
        spec = DatasetExecSpec("dblp", fingerprint, store_path=str(store_path))
        backend = AutoBackend(workers=1, cpu_count=4)
        try:
            first = backend.run(
                spec, plan, lambda: pytest.fail("healthy pool must ship")
            )
            # Hard-kill the pool's workers (OOM killer stand-in): the next
            # dispatch sees BrokenProcessPool and the parent serves it.
            pool = backend._process._pool
            for process in pool._processes.values():
                process.terminate()
            value = backend.run(spec, plan, lambda: "served-by-parent")
            assert value == "served-by-parent"
            stats = backend.stats()
            assert stats["choices"] == {"rwr:process": 2}
            assert stats["shipped"] == 1
            assert stats["fallbacks"] == 1 and stats["errors"] == 1
            assert sum(stats["choices"].values()) == stats["executed"]
            # the delegate recreates its pool lazily and ships again
            again = backend.run(
                spec, plan, lambda: pytest.fail("recreated pool must ship")
            )
            assert again.scores == first.scores
            assert backend.stats()["shipped"] == 2
        finally:
            backend.close()

    def test_worker_suffix_and_aggregated_counters(self):
        backend = make_backend("auto:3")
        try:
            assert isinstance(backend, AutoBackend)
            assert backend.workers == 3
            stats = backend.stats()
            assert {"executed", "shipped", "fallbacks", "errors",
                    "choices", "delegates", "cpu_count"} <= set(stats)
        finally:
            backend.close()

"""The ``dataset.ingest`` loading pipeline: files -> tree -> live dataset.

Covers the CSV reader added to :mod:`repro.graph.io` (header detection,
weight accumulation, malformed rows), the service-level pipeline
(duplicate names, empty/unreadable files, store persistence) and the
registered op over both the in-process and HTTP front-ends — an ingested
dataset must immediately serve every mining op.
"""

import pytest

from repro.api import GMineClient, GMineHTTPServer
from repro.errors import GraphFormatError, InvalidArgumentError
from repro.graph.generators import connected_caveman
from repro.graph.io import load_graph_auto, read_csv_edges, write_json
from repro.service import GMineService

pytestmark = pytest.mark.tier1


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "toy.txt"
    path.write_text(
        "# a toy graph\n"
        "0 1 2.0\n"
        "1 2\n"
        "2 3 0.5\n"
        "0 3\n",
        encoding="utf-8",
    )
    return path


class TestCsvReader:
    def _write(self, tmp_path, text):
        path = tmp_path / "edges.csv"
        path.write_text(text, encoding="utf-8")
        return path

    def test_plain_rows(self, tmp_path):
        graph = read_csv_edges(
            self._write(tmp_path, "0,1,2.0\n1,2,1.5\n")
        )
        assert graph.num_nodes == 3
        assert graph.edge_weight(0, 1) == 2.0

    def test_header_row_with_weight_column_is_skipped(self, tmp_path):
        graph = read_csv_edges(
            self._write(tmp_path, "source,target,weight\n0,1,2.0\n")
        )
        assert graph.num_edges == 1

    def test_two_column_header_is_skipped(self, tmp_path):
        for header in ("source,target", "U,V"):
            graph = read_csv_edges(
                self._write(tmp_path, f"{header}\n0,1\n1,2\n")
            )
            assert graph.num_nodes == 3
            assert graph.edge_weight(0, 1) == 1.0

    def test_string_first_row_without_header_shape_is_data(self, tmp_path):
        # two string columns that are not a recognised header: real vertices
        graph = read_csv_edges(self._write(tmp_path, "alice,bob\nbob,carol\n"))
        assert graph.num_nodes == 3
        assert graph.has_edge("alice", "bob")

    def test_duplicate_pairs_accumulate_weight(self, tmp_path):
        graph = read_csv_edges(
            self._write(tmp_path, "0,1,1.0\n0,1,2.5\n")
        )
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 3.5

    def test_comment_and_blank_rows_skipped(self, tmp_path):
        graph = read_csv_edges(
            self._write(tmp_path, "# comment\n\n0,1\n")
        )
        assert graph.num_edges == 1

    def test_bad_weight_mid_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError, match="not a number"):
            read_csv_edges(self._write(tmp_path, "0,1,1.0\n1,2,heavy\n"))

    def test_wrong_column_count_raises(self, tmp_path):
        with pytest.raises(GraphFormatError, match="expected"):
            read_csv_edges(self._write(tmp_path, "0,1,2.0,extra\n"))

    def test_load_graph_auto_dispatches_csv(self, tmp_path):
        path = self._write(tmp_path, "0,1,2.0\n")
        graph = load_graph_auto(path)
        assert graph.num_edges == 1


class TestIngestPipeline:
    def test_ingest_registers_a_live_dataset(self, edge_file):
        with GMineService() as service:
            report = service.ingest_dataset(
                "toy", edge_file, fanout=2, levels=2
            )
            assert report["dataset"] == "toy"
            assert report["nodes"] == 4
            assert report["edges"] == 4
            assert report["tree"]["leaves"] >= 1
            assert report["store"] is None
            assert "toy" in service.datasets()
            # mining ops work immediately on the ingested dataset
            result = service.call("rwr", dataset="toy", sources=[0])
            assert result.converged

    def test_duplicate_name_rejected(self, edge_file):
        with GMineService() as service:
            service.ingest_dataset("toy", edge_file, fanout=2, levels=2)
            with pytest.raises(InvalidArgumentError, match="already registered"):
                service.ingest_dataset("toy", edge_file, fanout=2, levels=2)

    def test_unreadable_path_is_invalid_argument(self, tmp_path):
        with GMineService() as service:
            with pytest.raises(InvalidArgumentError, match="cannot read"):
                service.ingest_dataset("ghost", tmp_path / "missing.txt")

    def test_empty_graph_rejected(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing here\n", encoding="utf-8")
        with GMineService() as service:
            with pytest.raises(InvalidArgumentError, match="no vertices"):
                service.ingest_dataset("void", empty)

    def test_json_graph_ingests(self, tmp_path):
        graph = connected_caveman(4, 6, seed=9)
        path = tmp_path / "caves.json"
        write_json(graph, path)
        with GMineService() as service:
            report = service.ingest_dataset("caves", path, fanout=2, levels=2)
            assert report["nodes"] == graph.num_nodes
            assert report["fingerprint"] == service.fingerprint("caves")

    def test_store_persistence_round_trip(self, tmp_path, edge_file):
        store = tmp_path / "toy.gtree"
        with GMineService() as service:
            report = service.ingest_dataset(
                "toy", edge_file, fanout=2, levels=2, store=store
            )
            fingerprint = report["fingerprint"]
            assert report["store"] == str(store)
        assert store.exists()
        # a later service serves the persisted tree with the same identity
        with GMineService() as revived:
            revived.register_store(store, name="toy", graph_path=edge_file)
            assert revived.fingerprint("toy") == fingerprint
            result = revived.call("rwr", dataset="toy", sources=[0])
            assert result.converged


class TestIngestOp:
    def test_op_over_in_process_client(self, edge_file):
        with GMineService() as service:
            client = GMineClient.in_process(service)
            payload = client.call(
                "dataset.ingest", path=str(edge_file), name="toy",
                fanout=2, levels=2,
            )
            assert payload["dataset"] == "toy"
            assert payload["nodes"] == 4
            rwr = client.call("rwr", dataset="toy", sources=[0])
            assert rwr["converged"] is True

    def test_op_over_http(self, edge_file, tmp_path):
        graph = connected_caveman(3, 5, seed=2)
        json_path = tmp_path / "caves.json"
        write_json(graph, json_path)
        with GMineService() as service:
            with GMineHTTPServer(service, port=0) as server:
                client = GMineClient.http(server.url)
                payload = client.call(
                    "dataset.ingest", path=str(json_path), name="caves",
                    fanout=2, levels=2,
                )
                assert payload["dataset"] == "caves"
                assert "caves" in service.datasets()
                path_result = client.call(
                    "query.path", dataset="caves", path="members/count"
                )
                assert path_result["count"] == graph.num_nodes

    def test_op_validates_fanout(self, edge_file):
        with GMineService() as service:
            client = GMineClient.in_process(service)
            with pytest.raises(InvalidArgumentError, match="fanout"):
                client.call(
                    "dataset.ingest", path=str(edge_file), name="toy",
                    fanout=1,
                )

    def test_op_requires_path_and_name(self):
        with GMineService() as service:
            client = GMineClient.in_process(service)
            with pytest.raises(InvalidArgumentError):
                client.call("dataset.ingest", name="toy")
            with pytest.raises(InvalidArgumentError):
                client.call("dataset.ingest", path="somewhere.txt")

    def test_op_is_not_cacheable(self, edge_file, tmp_path):
        # two ingests of the same file under different names both execute
        other = tmp_path / "copy.txt"
        other.write_text(edge_file.read_text(encoding="utf-8"),
                         encoding="utf-8")
        with GMineService() as service:
            client = GMineClient.in_process(service)
            client.call("dataset.ingest", path=str(edge_file), name="a",
                        fanout=2, levels=2)
            client.call("dataset.ingest", path=str(other), name="b",
                        fanout=2, levels=2)
            assert set(service.datasets()) >= {"a", "b"}

"""Tree fingerprints: the cache key must track structure AND content."""

import pytest

from repro.core.builder import build_gtree
from repro.graph.generators import connected_caveman
from repro.storage.gtree_store import GTreeStore, save_gtree

pytestmark = pytest.mark.tier1


@pytest.fixture
def tree_and_graph():
    graph = connected_caveman(4, 8, seed=12)
    return build_gtree(graph, fanout=2, levels=2, seed=12), graph


class TestFingerprint:
    def test_deterministic(self, tree_and_graph):
        tree, _ = tree_and_graph
        assert tree.fingerprint() == tree.fingerprint()

    def test_store_agrees_with_the_tree_it_was_saved_from(
        self, tree_and_graph, tmp_path
    ):
        tree, _ = tree_and_graph
        path = tmp_path / "t.gtree"
        save_gtree(tree, path)
        with GTreeStore(path) as store:
            assert store.fingerprint == tree.fingerprint()

    def test_intra_leaf_edge_change_changes_the_fingerprint(self, tmp_path):
        graph = connected_caveman(4, 8, seed=12)
        before = build_gtree(graph, fanout=2, levels=2, seed=12)
        original = before.fingerprint()

        # Perturb one edge *inside* a leaf community: hierarchy, membership
        # and cross-community connectivity summaries stay identical.
        leaf = before.leaves()[0]
        subgraph = leaf.subgraph
        u, v, w = next(iter(subgraph.edges()))
        subgraph.add_edge(u, v, weight=w + 5.0, accumulate=False)
        assert before.fingerprint() != original, (
            "changed leaf content must change the cache key"
        )

    def test_structural_change_changes_the_fingerprint(self, tree_and_graph):
        tree, graph = tree_and_graph
        other = build_gtree(graph, fanout=2, levels=3, seed=12)
        assert tree.fingerprint() != other.fingerprint()

"""Fault injection for the mutable-dataset write path.

Two failure families, one invariant: the registry always serves a
*consistent* fingerprint — entirely the old content or entirely the new —
never a mix of the two.

* A flaky SQLite cache store whose ``put``/``invalidate_fingerprint``
  raise.  Residency is best-effort: queries still serve correct values
  (uncached), and an edit whose post-swap invalidation fails still
  commits, still reports the new fingerprint, and still publishes its
  change event — the retired keys are unreachable by construction because
  cache keys derive from the fingerprints the current handle serves.
* Process workers killed outright (``SIGKILL``) while edits land and
  queries fly.  The broken pool falls back to in-parent execution, the
  pool is rebuilt lazily, and every answer during and after the breakage
  matches the registry's served fingerprint.
"""

import sqlite3
import threading

import pytest

from repro.api import GMineClient, dumps
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.io import write_json
from repro.service import GMineService, ResultCache, SQLiteCacheStore
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1


class FlakyCacheStore(SQLiteCacheStore):
    """A SQLite store whose writes fail on demand (full disk, I/O error)."""

    def __init__(self, path, **kwargs):
        super().__init__(path, **kwargs)
        self.fail_puts = 0
        self.fail_invalidations = 0
        self.put_failures = 0
        self.invalidate_failures = 0
        self._fault_lock = threading.Lock()

    def put(self, key, fingerprint, value, ttl):
        with self._fault_lock:
            if self.fail_puts > 0:
                self.fail_puts -= 1
                self.put_failures += 1
                raise sqlite3.OperationalError("injected put failure: disk I/O error")
        return super().put(key, fingerprint, value, ttl)

    def invalidate_fingerprint(self, fingerprint):
        with self._fault_lock:
            if self.fail_invalidations > 0:
                self.fail_invalidations -= 1
                self.invalidate_failures += 1
                raise sqlite3.OperationalError(
                    "injected invalidate failure: database is locked"
                )
        return super().invalidate_fingerprint(fingerprint)


@pytest.fixture
def editable_dataset():
    dataset = generate_dblp(DBLPConfig(num_authors=150, seed=47))
    tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=47)
    return dataset, tree


@pytest.fixture
def flaky_service(editable_dataset, tmp_path):
    dataset, tree = editable_dataset
    store = FlakyCacheStore(tmp_path / "flaky-cache.db", capacity=256)
    with GMineService() as service:
        service.cache.close()
        service.cache = ResultCache(store=store)
        service.register_tree(tree, graph=dataset.graph, name="g")
        yield service, store


def _single_edge_edit(graph, tree, delta):
    leaf = tree.leaves()[0]
    members = set(leaf.members)
    u, v, w = next(
        (u, v, w) for u, v, w in graph.edges() if u in members and v in members
    )
    return [{"action": "add_edge", "u": u, "v": v, "weight": w + delta}]


class TestFlakyCacheStore:
    def test_put_failure_serves_the_value_uncached(
        self, flaky_service, editable_dataset
    ):
        service, store = flaky_service
        dataset, tree = editable_dataset
        leaf = tree.leaves()[0]
        store.fail_puts = 1
        first = service.call("metrics", community=leaf.label)
        assert store.put_failures == 1
        assert service.compute_counts.get("metrics") == 1
        # Not resident: the retry recomputes — and the healed store caches.
        second = service.call("metrics", community=leaf.label)
        assert service.compute_counts.get("metrics") == 2
        # Healed store caches again: the third call is a hit, not a compute
        # (the SQLite store pickles, so identity is per-retrieval — count
        # computations, not object ids).
        service.call("metrics", community=leaf.label)
        assert service.compute_counts.get("metrics") == 2
        assert dumps(first.as_dict()) == dumps(second.as_dict())

    def test_invalidate_failure_does_not_fail_the_committed_edit(
        self, flaky_service, editable_dataset
    ):
        service, store = flaky_service
        dataset, tree = editable_dataset
        client = GMineClient.in_process(service)
        for leaf in tree.leaves():
            service.call("metrics", community=leaf.label)
        watermark = service.stats()["feeds"].get("g", 0)

        store.fail_invalidations = 10  # every retirement attempt fails
        report = service.apply_dataset(
            "g", _single_edge_edit(dataset.graph, tree, delta=1.0)
        )
        store.fail_invalidations = 0
        assert report["changed"]
        assert store.invalidate_failures > 0
        assert report["invalidation_errors"] > 0

        # The swap committed: one fingerprint, served everywhere.
        handle = service.registry_of_datasets.get("g")
        assert handle.fingerprint == report["fingerprint"]
        assert service.fingerprint("g") == report["fingerprint"]
        # The change event still reached subscribers.
        feed = service.subscribe(dataset="g", since=watermark)
        assert [e["fingerprint"] for e in feed["events"]] == [report["fingerprint"]]

        # Answers over the edited content match a fresh service exactly —
        # the stale (unreachable) entries left behind are never served.
        with GMineService() as reference:
            reference.register_tree(
                handle.tree, graph=handle.graph, name="g"
            )
            sources = sorted(handle.graph.nodes(), key=repr)[:2]
            ref_client = GMineClient.in_process(reference)
            for op, args in (
                ("rwr", {"sources": sources}),
                ("connectivity", {}),
                ("metrics", {"community": tree.leaves()[0].label}),
            ):
                assert dumps(client.query(op, args=args).unwrap()) == dumps(
                    ref_client.query(op, args=args).unwrap()
                )

    def test_healed_store_resumes_partition_scoped_invalidation(
        self, flaky_service, editable_dataset
    ):
        service, store = flaky_service
        dataset, tree = editable_dataset
        store.fail_invalidations = 10
        report = service.apply_dataset(
            "g", _single_edge_edit(dataset.graph, tree, delta=1.0)
        )
        store.fail_invalidations = 0
        assert report["invalidated"] == 0
        # The next edit invalidates normally again.
        handle = service.registry_of_datasets.get("g")
        for leaf in handle.tree.leaves():
            service.call("metrics", community=leaf.label)
        follow_up = service.apply_dataset(
            "g", _single_edge_edit(handle.graph, handle.tree, delta=2.0)
        )
        assert follow_up["changed"]
        assert "invalidation_errors" not in follow_up
        assert follow_up["invalidated"] > 0


@pytest.fixture
def process_setup(tmp_path):
    """A process-capable store-backed dataset plus a mutable tree dataset."""
    dataset = generate_dblp(DBLPConfig(num_authors=150, seed=53))
    tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=53)
    store_path = tmp_path / "faults.gtree"
    graph_path = tmp_path / "faults.json"
    save_gtree(tree, store_path)
    write_json(dataset.graph, graph_path)

    mutable = generate_dblp(DBLPConfig(num_authors=120, seed=59))
    mutable_tree = build_gtree(mutable.graph, fanout=3, levels=2, seed=59)

    with GMineService(backend="process:2") as service:
        service.register_store(store_path, name="dblp", graph_path=graph_path)
        service.register_tree(mutable_tree, graph=mutable.graph, name="g")
        yield service, dataset, mutable


class TestKilledProcessWorkers:
    def test_killed_workers_mid_edit_leave_one_consistent_fingerprint(
        self, process_setup
    ):
        service, dataset, mutable = process_setup
        client = GMineClient.in_process(service)
        sources = sorted(dataset.graph.nodes(), key=repr)[:2]

        # Warm the pool with real shipped work.
        baseline = dumps(
            client.query("rwr", dataset="dblp", args={"sources": sources}).unwrap()
        )
        assert service.backend.stats()["shipped"] >= 1

        mutable_handle = service.registry_of_datasets.get("g")
        leaf = mutable_handle.tree.leaves()[0]
        members = set(leaf.members)
        u, v, w = next(
            (u, v, w) for u, v, w in mutable.graph.edges()
            if u in members and v in members
        )

        failures = []
        query_payloads = []
        reports = []

        def querier():
            try:
                for _ in range(6):
                    query_payloads.append(
                        dumps(
                            client.query(
                                "rwr", dataset="dblp", args={"sources": sources}
                            ).unwrap()
                        )
                    )
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(("querier", repr(error)))

        def editor():
            try:
                for step in range(4):
                    reports.append(
                        service.apply_dataset(
                            "g",
                            [{"action": "add_edge", "u": u, "v": v,
                              "weight": w + 1.0 + step}],
                        )
                    )
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(("editor", repr(error)))

        threads = [threading.Thread(target=querier),
                   threading.Thread(target=editor)]
        for thread in threads:
            thread.start()
        # Hard-kill every worker while edits and queries are in flight.
        pool = service.backend._pool
        if pool is not None:
            for process in list(pool._processes.values()):
                process.kill()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, f"worker kill broke the service: {failures}"

        # Every mid-breakage answer is the same bytes as the warm baseline:
        # the fallback path serves the identical dataset content.
        assert query_payloads
        assert all(payload == baseline for payload in query_payloads)

        # The mutable dataset landed on exactly the last applied edit —
        # the registry's fingerprint, the report's, and the stats view all
        # agree (no torn half-applied state).
        final = service.registry_of_datasets.get("g")
        assert reports
        assert final.fingerprint == reports[-1]["fingerprint"]
        described = {
            row["name"]: row["fingerprint"]
            for row in service.registry_of_datasets.describe()
        }
        assert described["g"] == final.fingerprint
        assert service.fingerprint("g") == final.fingerprint

        # The service recovered: fresh shipped-or-fallback queries still
        # match, and the edited dataset answers like a clean rebuild.
        assert dumps(
            client.query("rwr", dataset="dblp", args={"sources": sources}).unwrap()
        ) == baseline
        with GMineService() as reference:
            reference.register_tree(final.tree, graph=final.graph, name="g")
            ref_client = GMineClient.in_process(reference)
            probe = {"sources": sorted(final.graph.nodes(), key=repr)[:2]}
            assert dumps(
                client.query("rwr", dataset="g", args=probe).unwrap()
            ) == dumps(ref_client.query("rwr", args=probe).unwrap())
        stats = service.backend.stats()
        assert stats["fallbacks"] >= 1 or stats["shipped"] >= 2

"""Resilience layer: deadlines, breakers, degraded serving, fault injection.

The chaos matrix at the bottom is the PR's acceptance gate: with a seeded
20%-failure FaultPlan wired into the service, every response across all
four execution backends and both HTTP front-ends must be a *typed*
outcome — success, degraded stale serve, DEADLINE_EXCEEDED or OVERLOADED —
never an unhandled 500.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.api import FrontendPolicy, GMineClient, ProtocolRouter
from repro.api.aio import GMineAsyncHTTPServer
from repro.api.http import GMineHTTPServer, retry_after_of
from repro.api.ops import DEFAULT_REGISTRY
from repro.api.router import dumps
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ServiceError,
)
from repro.service import (
    AutoBackend,
    CircuitBreaker,
    CostModel,
    Deadline,
    DatasetExecSpec,
    FaultPlan,
    GMineService,
    InlineBackend,
    ProcessBackend,
    ResultCache,
    RetryPolicy,
    SQLiteCacheStore,
    StaleServe,
    ThreadBackend,
)
from repro.storage.gtree_store import GTreeStore

pytestmark = pytest.mark.tier1


def _plan(op: str, args: dict):
    spec = DEFAULT_REGISTRY.get(op)
    canonical = spec.canonicalize(args)
    return spec.plan(canonical)


def _store_service(dataset, store_path, **kwargs) -> GMineService:
    svc = GMineService(**kwargs)
    store = GTreeStore(store_path, cache_capacity=16)
    svc.register_store(store, graph=dataset.graph, name="dblp")
    return svc


# --------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------- #
class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_remaining_and_expiry_follow_the_clock(self, clock):
        deadline = Deadline(250.0, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)
        assert not deadline.expired
        deadline.check("dispatch")  # plenty of budget: no raise
        clock.advance(0.2)
        assert deadline.remaining() == pytest.approx(0.05)
        clock.advance(0.06)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as exc:
            deadline.check("kernel")
        assert "250ms" in str(exc.value)
        assert "kernel" in str(exc.value)


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        assert [policy.delay(a) for a in range(3)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),  # capped by max_delay
        ]

    def test_server_retry_after_hint_overrides_backoff(self):
        policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.0)
        assert policy.delay(0, retry_after=1.5) == pytest.approx(1.5)
        assert policy.delay(0, retry_after=-3) == 0.0  # clamped

    def test_run_retries_transient_failures_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=3, base_delay=0.05, multiplier=2.0, jitter=0.0,
            sleep=sleeps.append,
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "value"

        result = policy.run(flaky, lambda e: "locked" in str(e))
        assert result == "value"
        assert len(attempts) == 3
        assert sleeps == [pytest.approx(0.05), pytest.approx(0.1)]
        assert policy.retries == 2

    def test_run_raises_non_retryable_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0, jitter=0.0,
                             sleep=lambda s: None)
        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("disk I/O error")

        with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
            policy.run(broken, lambda e: "locked" in str(e))
        assert len(calls) == 1

    def test_run_exhausts_attempts_and_raises_last_error(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0,
                             sleep=lambda s: None)
        with pytest.raises(ValueError, match="always"):
            policy.run(lambda: (_ for _ in ()).throw(ValueError("always")),
                       lambda e: True)
        assert policy.retries == 1


# --------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_trips_only_on_consecutive_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_rejects_until_reset_timeout(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejections == 1
        assert breaker.remaining_open() == pytest.approx(10.0)
        clock.advance(9.0)
        assert not breaker.allow()
        assert breaker.remaining_open() == pytest.approx(1.0)

    def test_half_open_probe_success_recloses(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only success_threshold probes admitted
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_and_resets_clock(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.remaining_open() == pytest.approx(10.0)

    def test_describe_reports_counters(self, clock):
        breaker = CircuitBreaker(name="venue", failure_threshold=1, clock=clock)
        breaker.record_failure()
        breaker.allow()
        info = breaker.describe()
        assert info["name"] == "venue"
        assert info["state"] == "open"
        assert info["trips"] == 1
        assert info["rejections"] == 1


# --------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def _decisions(self, seed: int, fires: int):
        plan = FaultPlan(seed=seed, sleep=lambda s: None).on(
            "worker.run", probability=0.3, error=ServiceError("boom")
        )
        outcomes = []
        for _ in range(fires):
            try:
                plan.fire("worker.run")
                outcomes.append(False)
            except ServiceError:
                outcomes.append(True)
        return outcomes

    def test_same_seed_reproduces_the_exact_fire_sequence(self):
        first = self._decisions(seed=42, fires=60)
        second = self._decisions(seed=42, fires=60)
        assert first == second
        assert any(first) and not all(first)  # p=0.3 actually mixes

    def test_different_seeds_diverge(self):
        assert self._decisions(7, 60) != self._decisions(8, 60)

    def test_disabled_seam_is_a_no_op_but_counts_calls(self):
        plan = FaultPlan(seed=1)
        plan.fire("cache.get")  # no rules: must not raise or sleep
        assert plan.calls("cache.get") == 1
        assert plan.fired("cache.get") == 0

    def test_latency_uses_injected_sleep(self):
        sleeps = []
        plan = FaultPlan(seed=1, sleep=sleeps.append).on(
            "store.read", probability=1.0, latency=0.25
        )
        plan.fire("store.read")
        assert sleeps == [pytest.approx(0.25)]

    def test_times_budget_limits_a_rule(self):
        plan = FaultPlan(seed=1, sleep=lambda s: None).on(
            "cache.put", probability=1.0, error=ServiceError("twice"), times=2
        )
        for _ in range(2):
            with pytest.raises(ServiceError):
                plan.fire("cache.put")
        plan.fire("cache.put")  # budget spent: passes through
        assert plan.fired("cache.put") == 2

    def test_raises_fresh_error_instances(self):
        plan = FaultPlan(seed=1, sleep=lambda s: None).on(
            "worker.run", probability=1.0, error=ServiceError("shared")
        )
        with pytest.raises(ServiceError) as first:
            plan.fire("worker.run")
        with pytest.raises(ServiceError) as second:
            plan.fire("worker.run")
        assert first.value is not second.value
        assert str(first.value) == str(second.value) == "shared"

    def test_crash_rule_calls_injected_crash_hook(self):
        crashes = []
        plan = FaultPlan(seed=1, crash=lambda: crashes.append(1)).on(
            "worker.run", probability=1.0, crash=True
        )
        plan.fire("worker.run")
        assert crashes == [1]

    def test_describe_surfaces_rules_and_counters(self):
        plan = FaultPlan(seed=9, sleep=lambda s: None).on(
            "cache.get", probability=0.5, error=ServiceError("x")
        )
        info = plan.describe()
        assert info["seed"] == 9
        assert info["rules"][0]["seam"] == "cache.get"


# --------------------------------------------------------------------- #
# SQLite cache store: lock retry + breaker
# --------------------------------------------------------------------- #
class _FlakyStore(SQLiteCacheStore):
    """Store whose next ``fail_times`` reads raise ``fail_error``."""

    def __init__(self, *args, **kwargs):
        self.fail_times = 0
        self.fail_error = "database is locked"
        super().__init__(*args, **kwargs)

    def _get_impl(self, key, touch=True):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise sqlite3.OperationalError(self.fail_error)
        return super()._get_impl(key, touch)


class TestSQLiteStoreResilience:
    def _store(self, tmp_path, clock, **kwargs):
        kwargs.setdefault(
            "lock_retry",
            RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0,
                        sleep=lambda s: None),
        )
        kwargs.setdefault(
            "breaker",
            CircuitBreaker(name="cache-store", failure_threshold=3,
                           reset_timeout=5.0, clock=clock),
        )
        return _FlakyStore(tmp_path / "cache.db", **kwargs)

    def test_lock_contention_is_retried_transparently(self, tmp_path, clock):
        store = self._store(tmp_path, clock)
        store.put("k", "fp", {"v": 1}, None)
        store.fail_times = 2  # two locked reads, then success
        assert store.get("k") == ("hit", {"v": 1})
        assert store.lock_retry.retries == 2
        assert store.breaker.state == "closed"

    def test_non_lock_errors_are_not_retried_and_feed_the_breaker(
        self, tmp_path, clock
    ):
        store = self._store(tmp_path, clock)
        store.put("k", "fp", {"v": 1}, None)
        store.fail_times = 1
        store.fail_error = "disk I/O error"
        with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
            store.get("k")
        assert store.lock_retry.retries == 0  # deliberately not retried
        assert store.breaker.describe()["failures"] == 1

    def test_open_breaker_short_circuits_reads_to_a_miss(self, tmp_path, clock):
        store = self._store(tmp_path, clock)
        store.put("k", "fp", {"v": 1}, None)
        store.fail_times = 100
        store.fail_error = "disk I/O error"
        for _ in range(3):
            with pytest.raises(sqlite3.OperationalError):
                store.get("k")
        assert store.breaker.state == "open"
        # Open: the DB is not touched at all — the read degrades to a miss.
        remaining_failures = store.fail_times
        assert store.get("k") == ("miss", None)
        assert store.fail_times == remaining_failures  # short-circuited
        with pytest.raises(CircuitOpenError) as exc:
            store.try_claim("k", owner="me")
        assert exc.value.retry_after is not None

    def test_breaker_recovers_through_a_half_open_probe(self, tmp_path, clock):
        store = self._store(tmp_path, clock)
        store.put("k", "fp", {"v": 1}, None)
        store.fail_times = 3
        store.fail_error = "disk I/O error"
        for _ in range(3):
            with pytest.raises(sqlite3.OperationalError):
                store.get("k")
        assert store.breaker.state == "open"
        clock.advance(5.0)  # reset_timeout elapses; store is healed
        assert store.get("k") == ("hit", {"v": 1})  # the successful probe
        assert store.breaker.state == "closed"


# --------------------------------------------------------------------- #
# Degraded serving: stale-on-error
# --------------------------------------------------------------------- #
class TestStaleServe:
    def test_cache_serves_stale_value_when_recompute_fails(self, clock):
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        assert cache.get_or_compute("k", lambda: {"rows": [1, 2]}) == {
            "rows": [1, 2]
        }
        clock.advance(11.0)  # entry expires but stays resident

        def broken():
            raise ServiceError("backend outage")

        served = cache.get_or_compute("k", broken, stale_ok=True)
        assert isinstance(served, StaleServe)
        assert served.value == {"rows": [1, 2]}
        assert cache.stats.stale_serves == 1

    def test_without_stale_ok_the_error_propagates(self, clock):
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.get_or_compute("k", lambda: 1)
        clock.advance(11.0)
        with pytest.raises(ServiceError):
            cache.get_or_compute(
                "k", lambda: (_ for _ in ()).throw(ServiceError("x"))
            )

    def test_deadline_failures_are_never_stale_served(self, clock):
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.get_or_compute("k", lambda: 1)
        clock.advance(11.0)

        def overdue():
            raise DeadlineExceededError("deadline of 5ms exceeded (kernel)")

        # The caller asked for bounded latency: stale data cannot satisfy
        # a deadline failure, so it propagates even with stale_ok.
        with pytest.raises(DeadlineExceededError):
            cache.get_or_compute("k", overdue, stale_ok=True)

    def test_healed_backend_refreshes_instead_of_re_serving_stale(self, clock):
        cache = ResultCache(capacity=8, ttl=10.0, clock=clock)
        cache.get_or_compute("k", lambda: "old")
        clock.advance(11.0)
        served = cache.get_or_compute(
            "k", lambda: (_ for _ in ()).throw(ServiceError("x")), stale_ok=True
        )
        assert served.value == "old"
        # Stale serve must not re-stamp the entry: once the backend heals,
        # the very next lookup recomputes rather than serving stale again.
        assert cache.get_or_compute("k", lambda: "new", stale_ok=True) == "new"


# --------------------------------------------------------------------- #
# Deadlines in the execution backends
# --------------------------------------------------------------------- #
class TestBackendDeadlines:
    SPEC = DatasetExecSpec(name="d", fingerprint="f")

    def test_inline_rejects_an_already_expired_deadline(self, clock):
        backend = InlineBackend()
        deadline = Deadline(50.0, clock=clock)
        clock.advance(0.06)
        ran = []
        with pytest.raises(DeadlineExceededError):
            backend.run(self.SPEC, _plan("metrics", {"community": 0}),
                        lambda: ran.append(1), deadline=deadline)
        assert not ran  # rejected at admission, kernel never started
        assert backend.stats()["deadline"]["rejected"] == 1

    def test_inline_abandons_a_result_that_finished_late(self, clock):
        backend = InlineBackend()
        deadline = Deadline(50.0, clock=clock)

        def slow():
            clock.advance(0.2)  # kernel overruns the budget
            return "late value"

        with pytest.raises(DeadlineExceededError):
            backend.run(self.SPEC, _plan("metrics", {"community": 0}), slow,
                        deadline=deadline)
        assert backend.stats()["deadline"]["abandoned"] == 1

    def test_thread_backend_abandons_and_stays_healthy(self):
        backend = ThreadBackend(workers=2)
        try:
            release = threading.Event()

            def stuck():
                release.wait(timeout=5.0)
                return "eventually"

            with pytest.raises(DeadlineExceededError):
                backend.run(self.SPEC, _plan("metrics", {"community": 0}), stuck,
                            deadline=Deadline(40.0))
            release.set()
            # The pool is not poisoned: the next run completes normally.
            assert backend.run(
                self.SPEC, _plan("metrics", {"community": 0}), lambda: "ok"
            ) == "ok"
            assert backend.stats()["deadline"]["abandoned"] == 1
        finally:
            backend.close()

    def test_auto_backend_fast_rejects_on_predicted_cost(self):
        model = CostModel()
        model.observe("metrics", "inline", 10.0)  # 10s measured
        backend = AutoBackend(workers=1, cpu_count=1, cost_model=model)
        try:
            with pytest.raises(DeadlineExceededError) as exc:
                backend.run(self.SPEC, _plan("metrics", {"community": 0}),
                            lambda: "never", deadline=Deadline(100.0))
            assert "predicted" in str(exc.value)
            assert backend.stats()["deadline"]["rejected"] == 1
            # Without a deadline the same plan runs fine.
            assert backend.run(
                self.SPEC, _plan("metrics", {"community": 0}), lambda: "ok"
            ) == "ok"
        finally:
            backend.close()


# --------------------------------------------------------------------- #
# ProcessBackend breaker: open → parent fallback
# --------------------------------------------------------------------- #
class TestProcessBreakerFallback:
    def test_open_breaker_runs_plans_in_the_parent(self, clock):
        breaker = CircuitBreaker(
            name="process-pool", failure_threshold=1, reset_timeout=60.0,
            clock=clock,
        )
        backend = ProcessBackend(workers=1, breaker=breaker)
        try:
            breaker.record_failure()  # trip it without killing a real pool
            assert breaker.state == "open"
            spec = DatasetExecSpec(
                name="d", fingerprint="f", store_path="/nonexistent.gtree"
            )
            assert spec.process_capable
            value = backend.run(
                spec, _plan("metrics", {"community": 0}), lambda: "parent result"
            )
            assert value == "parent result"
            assert backend._pool is None  # the pool was never even created
            stats = backend.stats()
            assert stats["breaker_skips"] == 1
            assert stats["breaker"]["state"] == "open"
        finally:
            backend.close()


# --------------------------------------------------------------------- #
# Admission control + health endpoints
# --------------------------------------------------------------------- #
class TestAdmissionPolicy:
    def test_try_enter_sheds_above_max_inflight(self):
        policy = FrontendPolicy(max_inflight=2)
        assert policy.try_enter() and policy.try_enter()
        assert not policy.try_enter()
        assert policy.shed == 1
        policy.leave()
        assert policy.try_enter()
        info = policy.describe()
        assert info["max_inflight"] == 2 and info["shed"] == 1

    def test_uncapped_policy_never_sheds(self):
        policy = FrontendPolicy()
        assert all(policy.try_enter() for _ in range(100))
        assert policy.shed == 0

    def test_overloaded_error_carries_retry_after(self):
        error = FrontendPolicy(max_inflight=1).overloaded()
        assert isinstance(error, OverloadedError)
        assert error.retry_after == pytest.approx(1.0)

    def test_retry_after_of_reads_error_details(self):
        payload = {"ok": False, "error": {"code": "OVERLOADED",
                                          "details": {"retry_after": 2.5}}}
        assert retry_after_of(payload) == pytest.approx(2.5)
        assert retry_after_of({"ok": True, "result": {}}) is None


class TestHealthEndpoints:
    def test_bare_service_is_live_but_not_ready(self):
        with GMineService() as svc:
            router = ProtocolRouter(svc)
            status, payload = router.handle("GET", "/healthz", {})
            assert status == 200 and payload["ok"] is True
            status, payload = router.handle("GET", "/readyz", {})
            assert status == 503
            assert payload["health"]["ready"] is False

    def test_registered_dataset_makes_the_service_ready(self, service):
        router = ProtocolRouter(service)
        status, payload = router.handle("GET", "/readyz", {})
        assert status == 200
        assert payload["health"]["ready"] is True
        assert payload["health"]["datasets"] == 1

    def test_open_breaker_flips_readiness(
        self, service_dataset, store_path, tmp_path
    ):
        dataset, _ = service_dataset
        svc = _store_service(dataset, store_path,
                             cache_path=tmp_path / "cache.db")
        with svc:
            breaker = svc.cache.store.breaker
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            router = ProtocolRouter(svc)
            status, payload = router.handle("GET", "/readyz", {})
            assert status == 503
            assert payload["health"]["open_breakers"] == ["cache-store"]
            status, _ = router.handle("GET", "/healthz", {})
            assert status == 200  # liveness is unaffected

    def test_resilience_stats_surface_breakers_and_deadline_counters(
        self, service
    ):
        stats = service.stats()
        resilience = stats["resilience"]
        assert "deadline" in resilience
        assert resilience["deadline"]["rejected"] == 0
        assert resilience["stale_serves"] == 0


# --------------------------------------------------------------------- #
# HTTP front-ends: shedding, health bypass, deadline envelopes
# --------------------------------------------------------------------- #
SERVERS = [GMineHTTPServer, GMineAsyncHTTPServer]


def _wait_until(predicate, timeout=5.0):
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestFrontendOverload:
    @pytest.mark.parametrize("server_cls", SERVERS,
                             ids=["threaded", "asyncio"])
    def test_sheds_with_503_and_retry_after_while_health_stays_up(
        self, server_cls, service
    ):
        policy = FrontendPolicy(max_inflight=1)
        with server_cls(service, port=0, policy=policy) as server:
            holder = GMineClient.http(server.url)
            result = {}

            def long_poll():
                # Occupies the single admission slot until close() wakes it.
                result["sub"] = holder.subscribe(dataset="dblp", timeout=10.0)

            thread = threading.Thread(target=long_poll, daemon=True)
            thread.start()
            try:
                assert _wait_until(lambda: policy.describe()["inflight"] == 1)
                with GMineClient.http(server.url) as client:
                    status, payload, _ = client.transport.call(
                        "POST", "/v1/query",
                        {"op": "connectivity", "dataset": "dblp", "args": {}},
                    )
                    assert status == 503
                    assert payload["error"]["code"] == "OVERLOADED"
                    assert payload["error"]["details"]["retry_after"] >= 1.0
                    # Health probes bypass admission control entirely.
                    health = client.transport.call("GET", "/healthz", None)
                    assert health[0] == 200
            finally:
                service._feed("dblp").close()  # wake the long-poll
                thread.join(timeout=5.0)
                holder.close()
            assert not thread.is_alive()
            assert policy.shed >= 1
            assert result["sub"]["events"] == []

    @pytest.mark.parametrize("server_cls", SERVERS,
                             ids=["threaded", "asyncio"])
    def test_retry_after_header_is_set_on_shed_responses(
        self, server_cls, service
    ):
        import urllib.error
        import urllib.request

        policy = FrontendPolicy(max_inflight=1)
        with server_cls(service, port=0, policy=policy) as server:
            holder = GMineClient.http(server.url)
            thread = threading.Thread(
                target=lambda: holder.subscribe(dataset="dblp", timeout=10.0),
                daemon=True,
            )
            thread.start()
            try:
                assert _wait_until(lambda: policy.describe()["inflight"] == 1)
                body = dumps({"op": "connectivity", "dataset": "dblp",
                              "args": {}})
                request = urllib.request.Request(
                    server.url + "/v1/query", data=body, method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as exc:
                    urllib.request.urlopen(request, timeout=10)
                assert exc.value.code == 503
                assert exc.value.headers["Retry-After"] == "1"
            finally:
                service._feed("dblp").close()
                thread.join(timeout=5.0)
                holder.close()


class TestDeadlineEnvelope:
    def test_expired_deadline_returns_a_504_envelope(self, service):
        with GMineClient.in_process(service) as client:
            status, payload, _ = client.transport.call(
                "POST", "/v1/query",
                {"op": "connectivity", "dataset": "dblp", "args": {},
                 "deadline_ms": 1e-6},
            )
            assert status == 504
            assert payload["error"]["code"] == "DEADLINE_EXCEEDED"

    def test_client_timeout_stamps_deadline_ms(self, service):
        with GMineClient.in_process(service) as client:
            response = client.query("connectivity", dataset="dblp",
                                    timeout=30.0)
            assert response.ok  # generous budget: served normally
            response = client.query("connectivity", dataset="dblp",
                                    timeout=1e-9)
            assert not response.ok
            assert response.error.code == "DEADLINE_EXCEEDED"
            with pytest.raises(DeadlineExceededError):
                response.unwrap()


# --------------------------------------------------------------------- #
# Client-side retry
# --------------------------------------------------------------------- #
class _ScriptedTransport:
    """Transport stub that replays a canned list of outcomes."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def call(self, method, path, body, timeout=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def close(self):
        pass


def _overloaded_payload(op, retry_after=0.25):
    return (503, {
        "protocol": "gmine/1", "ok": False, "op": op,
        "error": {"code": "OVERLOADED", "type": "OverloadedError",
                  "message": "server at capacity",
                  "details": {"retry_after": retry_after}},
    }, b"")


def _ok_payload(op):
    return (200, {"protocol": "gmine/1", "ok": True, "op": op,
                  "result": {"value": 1}}, b"")


class TestClientRetry:
    def _policy(self, sleeps):
        return RetryPolicy(attempts=3, base_delay=0.05, multiplier=2.0,
                           jitter=0.0, sleep=sleeps.append)

    def test_idempotent_op_retries_overloaded_with_server_hint(self):
        sleeps = []
        transport = _ScriptedTransport([
            _overloaded_payload("connectivity", retry_after=0.25),
            _ok_payload("connectivity"),
        ])
        client = GMineClient(transport, retry=self._policy(sleeps))
        response = client.query("connectivity", dataset="dblp")
        assert response.ok
        assert transport.calls == 2
        assert sleeps == [pytest.approx(0.25)]  # server hint, not backoff

    def test_non_idempotent_op_never_retries(self):
        sleeps = []
        transport = _ScriptedTransport([
            _overloaded_payload("session.step"),
            _ok_payload("session.step"),
        ])
        client = GMineClient(transport, retry=self._policy(sleeps))
        response = client.query("session.step", dataset="dblp")
        assert not response.ok
        assert transport.calls == 1
        assert sleeps == []
        with pytest.raises(OverloadedError) as exc:
            response.unwrap()
        assert exc.value.retry_after == pytest.approx(0.25)

    def test_transport_failures_retry_for_idempotent_ops(self):
        sleeps = []
        transport = _ScriptedTransport([
            ProtocolError("connection torn"),
            _ok_payload("connectivity"),
        ])
        client = GMineClient(transport, retry=self._policy(sleeps))
        assert client.query("connectivity", dataset="dblp").ok
        assert transport.calls == 2

    def test_exhausted_retries_surface_the_last_envelope(self):
        transport = _ScriptedTransport([
            _overloaded_payload("connectivity"),
            _overloaded_payload("connectivity"),
            _overloaded_payload("connectivity"),
        ])
        client = GMineClient(transport, retry=self._policy([]))
        response = client.query("connectivity", dataset="dblp")
        assert not response.ok
        assert response.error.code == "OVERLOADED"
        assert transport.calls == 3

    def test_no_retry_policy_means_single_shot(self):
        transport = _ScriptedTransport([_overloaded_payload("connectivity")])
        client = GMineClient(transport)
        assert not client.query("connectivity", dataset="dblp").ok
        assert transport.calls == 1


# --------------------------------------------------------------------- #
# Shutdown wakes long-polls
# --------------------------------------------------------------------- #
class TestSubscribeShutdown:
    def test_close_wakes_http_long_poll_promptly(
        self, service_dataset, store_path
    ):
        dataset, _ = service_dataset
        svc = _store_service(dataset, store_path)
        server = GMineHTTPServer(svc, port=0).start()
        client = GMineClient.http(server.url)
        result = {}

        def long_poll():
            result["sub"] = client.subscribe(dataset="dblp", timeout=10.0)

        thread = threading.Thread(target=long_poll, daemon=True)
        thread.start()
        assert _wait_until(lambda: svc._feed("dblp").waiters > 0)
        started = time.monotonic()
        svc.close()  # must wake the poll, not strand it for 10s
        thread.join(timeout=5.0)
        elapsed = time.monotonic() - started
        assert not thread.is_alive()
        assert elapsed < 5.0
        assert result["sub"]["events"] == []
        assert result["sub"]["lagged"] is False
        client.close()
        server.stop()

    def test_closed_feed_returns_immediately_for_new_polls(
        self, service_dataset, store_path
    ):
        dataset, _ = service_dataset
        svc = _store_service(dataset, store_path)
        svc.close()
        feed = svc._feed("dblp")
        assert feed.closed


# --------------------------------------------------------------------- #
# The chaos matrix
# --------------------------------------------------------------------- #
def _chaos_queries(tree):
    leaves = sorted(tree.leaves(), key=lambda node: node.label)[:4]
    queries = [("metrics", {"community": leaf.label}) for leaf in leaves]
    hot = max(leaves, key=lambda node: node.size)
    queries.append(("rwr", {"sources": list(hot.members[:2]),
                            "community": hot.label}))
    queries.append(("connectivity", {}))
    return queries


def _run_chaos_round(client, queries, primed):
    """One sweep over the query set; returns the degraded flags observed."""
    flags = []
    for op, args in queries:
        response = client.query(op, dataset="dblp", args=args)
        assert response.ok, f"untyped failure for {op}: {response.error}"
        key = (op, dumps(args))
        body = dumps(response.result)
        assert body == primed[key], f"{op} result drifted under faults"
        flags.append(bool(response.degraded))
    return flags


class TestChaosMatrix:
    @pytest.mark.parametrize("backend", ["inline", "thread", "process", "auto"])
    def test_only_typed_outcomes_under_20pct_backend_failure(
        self, backend, service_dataset, store_path, clock
    ):
        dataset, tree = service_dataset
        plan = FaultPlan(seed=1729, sleep=lambda s: None)
        svc = _store_service(
            dataset, store_path, backend=f"{backend}:2", cache_ttl=30.0,
            clock=clock, fault_injector=plan, max_workers=4,
        )
        queries = _chaos_queries(tree)
        with svc, GMineClient.in_process(svc) as client:
            primed = {}
            for op, args in queries:
                response = client.query(op, dataset="dblp", args=args)
                assert response.ok and not response.degraded
                primed[(op, dumps(args))] = dumps(response.result)

            plan.on("worker.run", probability=0.2,
                    error=ServiceError("injected backend outage"))
            degraded_total = 0
            for _ in range(4):
                clock.advance(31.0)  # expire the cache: force recomputes
                flags = _run_chaos_round(client, queries, primed)
                degraded_total += sum(flags)

            assert degraded_total > 0, "seed 1729 must inject some outages"
            assert degraded_total == plan.fired("worker.run")
            stats = svc.stats()
            assert stats["resilience"]["stale_serves"] == degraded_total

    def test_chaos_outcome_sequence_is_reproducible_by_seed(
        self, service_dataset, store_path
    ):
        from tests.service.conftest import ManualClock

        dataset, tree = service_dataset
        queries = _chaos_queries(tree)

        def run_once():
            clock = ManualClock()
            plan = FaultPlan(seed=7, sleep=lambda s: None)
            svc = _store_service(
                dataset, store_path, cache_ttl=30.0, clock=clock,
                fault_injector=plan,
            )
            sequence = []
            with svc, GMineClient.in_process(svc) as client:
                primed = {}
                for op, args in queries:
                    response = client.query(op, dataset="dblp", args=args)
                    primed[(op, dumps(args))] = dumps(response.result)
                plan.on("worker.run", probability=0.3,
                        error=ServiceError("injected"))
                for _ in range(3):
                    clock.advance(31.0)
                    sequence.extend(_run_chaos_round(client, queries, primed))
            return sequence

        first = run_once()
        second = run_once()
        assert first == second
        assert any(first)

    @pytest.mark.parametrize("server_cls", SERVERS,
                             ids=["threaded", "asyncio"])
    def test_http_frontends_never_emit_500_under_faults(
        self, server_cls, service_dataset, store_path
    ):
        from tests.service.conftest import ManualClock

        dataset, tree = service_dataset
        clock = ManualClock()
        plan = FaultPlan(seed=99, sleep=lambda s: None)
        svc = _store_service(
            dataset, store_path, cache_ttl=30.0, clock=clock,
            fault_injector=plan,
        )
        queries = _chaos_queries(tree)
        with svc, server_cls(svc, port=0) as server:
            with GMineClient.http(server.url) as client:
                primed = {}
                for op, args in queries:
                    response = client.query(op, dataset="dblp", args=args)
                    assert response.ok
                    primed[(op, dumps(args))] = dumps(response.result)
                plan.on("worker.run", probability=0.2,
                        error=ServiceError("injected backend outage"))
                degraded = 0
                for _ in range(3):
                    clock.advance(31.0)
                    for op, args in queries:
                        status, payload, _ = client.transport.call(
                            "POST", "/v1/query",
                            {"op": op, "dataset": "dblp", "args": args},
                        )
                        assert status == 200, f"got {status} for {op}: {payload}"
                        assert payload["ok"] is True
                        key = (op, dumps(args))
                        assert dumps(payload["result"]) == primed[key]
                        degraded += bool(payload.get("degraded"))
                assert degraded == plan.fired("worker.run")
                assert degraded > 0


# --------------------------------------------------------------------- #
# Injector overhead when disabled
# --------------------------------------------------------------------- #
class TestDisabledInjectorOverhead:
    def test_service_without_injector_never_pays_the_seams(self, service):
        # The wiring is an identity check per seam: with no injector the
        # service must not even construct plan state.  (The ≤2% overhead
        # acceptance gate is measured by benchmarks/bench_chaos.py; this
        # test pins the structural guarantee it relies on.)
        assert service._injector is None
        assert service.cache._injector is None

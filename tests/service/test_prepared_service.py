"""The prepared-kernel layer as the service sees it.

Covers the plumbing the mining-level parity suite cannot: the
:class:`DatasetHandle` caches one ``PreparedGraph`` per fingerprint and
reuses it across queries, hot-reload swaps it out with the handle, process
workers prepare at warm time, and — the acceptance bar — response payloads
are byte-identical across inline/thread/process backends whether the
prepared cache was cold or hot.
"""

import json

import pytest

from repro.api import GMineClient
from repro.graph.io import write_json
from repro.service import BACKEND_NAMES, GMineService
from repro.storage.gtree_store import save_gtree

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def dataset_files(service_dataset, tmp_path_factory):
    """Store + graph persisted so process workers can reopen both by path."""
    dataset, tree = service_dataset
    root = tmp_path_factory.mktemp("prepared")
    store_file = root / "prepared.gtree"
    graph_file = root / "prepared.json"
    save_gtree(tree, store_file)
    write_json(dataset.graph, graph_file)
    return store_file, graph_file


@pytest.fixture(scope="module")
def widest_requests(service_dataset):
    """Widest-scope traffic — the scope the prepared layer accelerates."""
    _, tree = service_dataset
    leaf = max(tree.leaves(), key=lambda node: node.size)
    members = list(leaf.members[:8])
    return [
        ("rwr", {"sources": members}),
        ("rwr", {"sources": members[:2], "solver": "exact"}),
        ("metrics", {"hop_sample_size": 16}),
        ("connection_subgraph", {"sources": members[:3], "budget": 12}),
    ]


class TestHandlePreparedCache:
    def test_prepared_builds_once_and_only_on_demand(
        self, service_dataset, dataset_files, widest_requests
    ):
        dataset, _ = service_dataset
        store_file, _ = dataset_files
        with GMineService() as service:
            service.register_store(store_file, graph=dataset.graph, name="dblp")
            handle = service.registry_of_datasets.get("dblp")
            views = service.registry_of_datasets.prepared_views
            assert views.peek(handle.fingerprint) is None, "preparation must be lazy"
            assert handle.describe()["prepared"] is False
            op, args = widest_requests[0]
            service.call(op, **args)
            assert views.peek(handle.fingerprint) is not None
            first = handle.prepared_graph()
            service.call("metrics", hop_sample_size=16)
            assert handle.prepared_graph() is first, "one preparation per root"
            assert handle.describe()["prepared"] is True

    def test_community_scope_does_not_engage_prepared(
        self, service_dataset, dataset_files
    ):
        dataset, tree = service_dataset
        store_file, _ = dataset_files
        leaf = max(tree.leaves(), key=lambda node: node.size)
        with GMineService() as service:
            service.register_store(store_file, graph=dataset.graph, name="dblp")
            handle = service.registry_of_datasets.get("dblp")
            service.metrics(community=leaf.label)
            views = service.registry_of_datasets.prepared_views
            assert views.peek(handle.fingerprint) is None, (
                "community scope must not build the full-graph view"
            )

    def test_store_only_dataset_has_no_prepared_view(self, dataset_files):
        store_file, _ = dataset_files
        with GMineService() as service:
            service.register_store(store_file, name="dblp")
            handle = service.registry_of_datasets.get("dblp")
            assert handle.prepared_graph() is None
            assert handle.prepared_provider(None, object()) is None

    def test_reload_swaps_the_prepared_cache(self, tmp_path):
        """A content-changing reload retires the preparation with its handle;
        a no-op reload keeps both (no redundant O(E) conversion)."""
        import os

        from repro.core.builder import build_gtree
        from repro.data.dblp import DBLPConfig, generate_dblp

        store_file = tmp_path / "reload.gtree"
        graph_file = tmp_path / "reload.json"

        def build(seed: int):
            built = generate_dblp(DBLPConfig(num_authors=150, seed=seed))
            tree = build_gtree(built.graph, fanout=3, levels=2, seed=seed)
            for staging, writer in (
                (tmp_path / f"s{seed}.gtree", lambda p: save_gtree(tree, p)),
                (tmp_path / f"s{seed}.json", lambda p: write_json(built.graph, p)),
            ):
                writer(staging)
            os.replace(tmp_path / f"s{seed}.gtree", store_file)
            os.replace(tmp_path / f"s{seed}.json", graph_file)
            return built

        first = build(3)
        with GMineService() as service:
            service.register_store(
                store_file, name="dblp", graph_path=graph_file,
            )
            sources = sorted(first.graph.nodes(), key=repr)[:3]
            service.rwr(sources)
            before = service.registry_of_datasets.get("dblp").prepared_graph()
            assert before is not None

            report = service.reload_dataset("dblp")  # unchanged content
            assert not report["changed"]
            handle = service.registry_of_datasets.get("dblp")
            views = service.registry_of_datasets.prepared_views
            assert views.peek(handle.fingerprint) is not None, (
                "no-op reload must keep the view"
            )
            assert handle.prepared_graph() is before

            second = build(7)
            report = service.reload_dataset("dblp")
            assert report["changed"]
            handle = service.registry_of_datasets.get("dblp")
            assert views.peek(handle.fingerprint) is None, (
                "reload must drop the old view"
            )
            service.rwr(sorted(second.graph.nodes(), key=repr)[:3])
            after = handle.prepared_graph()
            assert after is not None and after is not before
            assert after.fingerprint == handle.fingerprint != before.fingerprint


class TestPreparedByteParity:
    def test_backends_agree_cold_and_warm(
        self, service_dataset, dataset_files, widest_requests
    ):
        """The acceptance bar: identical bytes across backends, cold or hot.

        Each backend serves the same widest-scope requests twice: the first
        pass builds the PreparedGraph mid-flight (cold prepare), the second
        runs fully warm after the result cache is cleared (prepared cache
        hit, recomputed kernel).  Every payload must match everywhere.
        """
        dataset, _ = service_dataset
        store_file, graph_file = dataset_files
        passes = {}
        for backend in BACKEND_NAMES:
            with GMineService(backend=f"{backend}:2") as service:
                service.register_store(
                    store_file, graph=dataset.graph, name="dblp",
                    graph_path=graph_file,
                )
                client = GMineClient.in_process(service)
                cold = [
                    client.query_raw(op, args=args) for op, args in widest_requests
                ]
                service.cache.clear()
                warm = [
                    client.query_raw(op, args=args) for op, args in widest_requests
                ]
                passes[backend] = (cold, warm)
        reference_cold, reference_warm = passes["inline"]
        assert reference_cold == reference_warm, "prepared cache hit changed bytes"
        for backend, (cold, warm) in passes.items():
            assert cold == reference_cold, f"{backend} cold pass diverged"
            assert warm == reference_warm, f"{backend} warm pass diverged"

    def test_process_workers_prepare_at_warm_time_and_plans_consume_it(
        self, service_dataset, dataset_files, widest_requests
    ):
        from repro.api.ops import DEFAULT_REGISTRY
        from repro.mining.rwr import steady_state_rwr
        from repro.service.executors import (
            _WORKER_DATASETS,
            _process_execute,
            _process_warm,
        )

        dataset, _ = service_dataset
        store_file, graph_file = dataset_files
        # Run the worker entry points in-process (they are plain
        # functions): after warming, the cached context must hold a built
        # PreparedGraph, and a widest-scope plan must actually consume it.
        with GMineService() as service:
            service.register_store(
                store_file, graph=dataset.graph, name="dblp",
                graph_path=graph_file,
            )
            spec = service.registry_of_datasets.get("dblp").exec_spec()
        assert spec.process_capable
        try:
            _process_warm(spec)
            key = (spec.store_path, spec.graph_path)
            fingerprint, context = _WORKER_DATASETS[key]
            assert fingerprint == spec.fingerprint
            provider = context.prepared_provider
            assert provider._prepared is not None, "warm task must prepare"
            prepared = provider(None, context.engine.graph)
            assert prepared is provider._prepared
            assert provider("some-community", context.engine.graph) is None

            # Plans must *consume* the preparation, not merely build it:
            # drop the cached view, execute a widest-scope plan through
            # the worker path, and the provider must have rebuilt it —
            # with the kernel's result bit-identical to a cold solve.
            provider._prepared = None
            op, args = widest_requests[0]
            rwr_spec = DEFAULT_REGISTRY.get(op)
            plan = rwr_spec.plan(rwr_spec.canonicalize(args))
            result = _process_execute(spec, plan)
            assert provider._prepared is not None, (
                "worker plan execution bypassed the prepared provider"
            )
            cold = steady_state_rwr(dataset.graph, args["sources"])
            assert result.scores == cold.scores
        finally:
            cached = _WORKER_DATASETS.pop((spec.store_path, spec.graph_path), None)
            if cached is not None:
                cached[1].engine.store.close()

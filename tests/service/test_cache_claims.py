"""Cross-process single-flight: the SQLite claim protocol.

Two *processes* sharing one ``--cache-path`` file must never compute the
same entry twice: the first to claim a key computes, every other process
polls the shared store and adopts the winner's value.  Simulated here with
two :class:`SQLiteCacheStore` instances over one file — exactly what two
OS processes look like to SQLite — driven from separate threads.
"""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.cache import ResultCache, SQLiteCacheStore

pytestmark = pytest.mark.tier1

KEY = ("fingerprint", "rwr", ("sources", (1, 2)))


@pytest.fixture
def cache_file(tmp_path):
    return tmp_path / "claims.db"


def _cache(path, **kwargs):
    kwargs.setdefault("claim_poll_interval", 0.01)
    return ResultCache(store=SQLiteCacheStore(path, **kwargs))


class TestClaimProtocol:
    def test_try_claim_is_exclusive_until_released(self, cache_file):
        store = SQLiteCacheStore(cache_file)
        peer = SQLiteCacheStore(cache_file)
        try:
            assert store.try_claim(KEY, "owner-a")
            assert not peer.try_claim(KEY, "owner-b")
            assert store.try_claim(KEY, "owner-a"), "re-claiming own key refreshes"
            store.release_claim(KEY, "owner-a")
            assert peer.try_claim(KEY, "owner-b")
        finally:
            store.close()
            peer.close()

    def test_release_is_scoped_to_owner(self, cache_file):
        store = SQLiteCacheStore(cache_file)
        try:
            assert store.try_claim(KEY, "owner-a")
            store.release_claim(KEY, "owner-b")  # someone else's release: no-op
            assert not store.try_claim(KEY, "owner-b")
        finally:
            store.close()

    def test_stale_claims_are_stolen(self, cache_file):
        store = SQLiteCacheStore(cache_file, claim_timeout=0.05)
        try:
            assert store.try_claim(KEY, "crashed-process")
            time.sleep(0.1)
            assert store.try_claim(KEY, "survivor")
            assert store.describe()["claims"]["stolen"] == 1
        finally:
            store.close()

    def test_claim_knobs_must_be_positive(self, cache_file):
        with pytest.raises(ServiceError):
            SQLiteCacheStore(cache_file, claim_timeout=0)
        with pytest.raises(ServiceError):
            SQLiteCacheStore(cache_file, claim_poll_interval=0)
        with pytest.raises(ServiceError):
            SQLiteCacheStore(cache_file, claim_poll_interval=-0.5)


class TestCrossProcessSingleFlight:
    def test_second_process_adopts_instead_of_recomputing(self, cache_file):
        first = _cache(cache_file)
        second = _cache(cache_file)
        computes = []
        computing = threading.Event()

        def slow():
            computes.append("first")
            computing.set()
            time.sleep(0.25)
            return "the-answer"

        def never():
            computes.append("second")
            return "the-answer"

        results = {}
        worker = threading.Thread(
            target=lambda: results.setdefault("first", first.get_or_compute(KEY, slow))
        )
        try:
            worker.start()
            computing.wait(timeout=5)
            results["second"] = second.get_or_compute(KEY, never)
            worker.join(timeout=5)

            assert computes == ["first"], "the peer recomputed a claimed entry"
            assert results["first"] == results["second"] == "the-answer"
            assert second.stats.adopted == 1
            assert second.stats.misses == 0
            claims = second.store.describe()["claims"]
            assert claims["waited"] == 1
            assert claims["active"] == 0, "claims must not leak"
        finally:
            worker.join(timeout=5)
            first.close()
            second.close()

    def test_failed_computation_releases_the_claim(self, cache_file):
        first = _cache(cache_file)
        second = _cache(cache_file)
        try:
            with pytest.raises(RuntimeError):
                first.get_or_compute(KEY, self._boom)
            assert first.store.describe()["claims"]["active"] == 0
            # The peer is now free to compute (and does).
            assert second.get_or_compute(KEY, lambda: 99) == 99
            assert second.stats.misses == 1
        finally:
            first.close()
            second.close()

    @staticmethod
    def _boom():
        raise RuntimeError("kernel exploded")

    def test_adoption_counts_into_hit_rate(self, cache_file):
        first = _cache(cache_file)
        second = _cache(cache_file)
        computing = threading.Event()

        def slow():
            computing.set()
            time.sleep(0.2)
            return 1

        worker = threading.Thread(target=lambda: first.get_or_compute(KEY, slow))
        try:
            worker.start()
            computing.wait(timeout=5)
            second.get_or_compute(KEY, lambda: 1)
            worker.join(timeout=5)
            assert second.stats.hit_rate == 1.0
            assert second.stats.accesses == 1
        finally:
            worker.join(timeout=5)
            first.close()
            second.close()

    def test_memory_store_is_unaffected_by_claim_protocol(self):
        cache = ResultCache(capacity=8)
        assert not cache.store.supports_claims
        assert cache.get_or_compute(KEY, lambda: "plain") == "plain"
        assert cache.stats.misses == 1 and cache.stats.adopted == 0

    def test_broken_claim_protocol_degrades_to_local_compute(self, cache_file):
        """Dedup is an optimisation: a failing coordination store must not
        fail (or stall) a request the kernel could serve."""
        cache = _cache(cache_file)
        try:
            def explode(key, owner):
                raise RuntimeError("database is locked")

            cache.store.try_claim = explode
            assert cache.get_or_compute(KEY, lambda: "served-anyway") == (
                "served-anyway"
            )
            assert cache.stats.misses == 1
            # The value still reached residency despite the claim failure.
            assert cache.store.get(KEY, touch=False) == ("hit", "served-anyway")
        finally:
            cache.close()

    def test_claim_won_but_recheck_fails_releases_the_claim(self, cache_file):
        """A failure *after* winning the claim must not strand the row."""
        cache = _cache(cache_file)
        observer = SQLiteCacheStore(cache_file)
        try:
            real_get = cache.store.get
            state = {"claimed": False}

            def flaky_get(key, touch=True):
                if state["claimed"]:
                    state["claimed"] = False
                    raise RuntimeError("disk went away")
                return real_get(key, touch=touch)

            real_claim = cache.store.try_claim

            def tracking_claim(key, owner):
                won = real_claim(key, owner)
                state["claimed"] = won
                return won

            cache.store.get = flaky_get
            cache.store.try_claim = tracking_claim
            assert cache.get_or_compute(KEY, lambda: 7) == 7
            assert observer.describe()["claims"]["active"] == 0, (
                "claim row leaked after post-claim failure"
            )
        finally:
            cache.close()
            observer.close()


class TestStatsSurface:
    def test_service_stats_carry_claim_counters(self, tmp_path, service_dataset):
        from repro.service import GMineService
        from repro.storage.gtree_store import save_gtree

        _, tree = service_dataset
        store_file = tmp_path / "claims.gtree"
        save_gtree(tree, store_file)
        with GMineService(cache_path=tmp_path / "cache.db") as service:
            service.register_store(store_file, name="dblp")
            leaf = max(tree.leaves(), key=lambda node: node.size)
            service.metrics(community=leaf.label)
            payload = service.stats()
            claims = payload["cache"]["store"]["claims"]
            assert claims["acquired"] >= 1
            assert claims["active"] == 0
            assert "adopted" in payload["cache"]

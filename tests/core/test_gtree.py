"""Unit tests for the G-Tree structure and its invariants."""

import pytest

from repro.errors import GTreeStructureError
from repro.core.gtree import ConnectivityEdge, GTree, GTreeNode


def build_manual_tree() -> GTree:
    """A small hand-built tree: root with two children, one child split again."""
    tree = GTree(name="manual")
    root = GTreeNode(node_id=0, label="s0", level=0, parent_id=None,
                     members=[1, 2, 3, 4, 5, 6])
    left = GTreeNode(node_id=1, label="s00", level=1, parent_id=0, members=[1, 2, 3])
    right = GTreeNode(node_id=2, label="s01", level=1, parent_id=0, members=[4, 5, 6])
    left_a = GTreeNode(node_id=3, label="s000", level=2, parent_id=1, members=[1, 2])
    left_b = GTreeNode(node_id=4, label="s001", level=2, parent_id=1, members=[3])
    root.children = [1, 2]
    left.children = [3, 4]
    root.connectivity = [ConnectivityEdge(source=1, target=2, edge_count=2, total_weight=2.0)]
    for node in (root, left, right, left_a, left_b):
        tree.add_node(node)
    for leaf in (right, left_a, left_b):
        tree.register_leaf_members(leaf)
    return tree


class TestGTreeStructure:
    def test_root_and_lookup(self):
        tree = build_manual_tree()
        assert tree.root.label == "s0"
        assert tree.node(3).label == "s000"
        assert tree.by_label("s01").node_id == 2
        assert tree.has_label("s001")
        assert not tree.has_label("zzz")

    def test_duplicate_node_id_rejected(self):
        tree = build_manual_tree()
        with pytest.raises(GTreeStructureError):
            tree.add_node(GTreeNode(node_id=0, label="dup", level=0, parent_id=None))

    def test_second_root_rejected(self):
        tree = build_manual_tree()
        with pytest.raises(GTreeStructureError):
            tree.add_node(GTreeNode(node_id=99, label="root2", level=0, parent_id=None))

    def test_missing_lookups_raise(self):
        tree = build_manual_tree()
        with pytest.raises(GTreeStructureError):
            tree.node(42)
        with pytest.raises(GTreeStructureError):
            tree.by_label("nothere")
        with pytest.raises(GTreeStructureError):
            tree.leaf_of(999)

    def test_empty_tree_has_no_root(self):
        with pytest.raises(GTreeStructureError):
            GTree().root


class TestNavigationPrimitives:
    def test_children_parent_siblings(self):
        tree = build_manual_tree()
        assert [child.label for child in tree.children(0)] == ["s00", "s01"]
        assert tree.parent(1).label == "s0"
        assert tree.parent(0) is None
        assert [sibling.label for sibling in tree.siblings(1)] == ["s01"]
        assert tree.siblings(0) == []

    def test_ancestors_and_path(self):
        tree = build_manual_tree()
        assert [node.label for node in tree.ancestors(3)] == ["s00", "s0"]
        assert [node.label for node in tree.path_to_root(3)] == ["s000", "s00", "s0"]

    def test_leaf_of_vertex(self):
        tree = build_manual_tree()
        assert tree.leaf_of(1).label == "s000"
        assert tree.leaf_of(5).label == "s01"
        assert tree.contains_vertex(3)
        assert not tree.contains_vertex(999)

    def test_level_and_leaf_queries(self):
        tree = build_manual_tree()
        assert {node.label for node in tree.nodes_at_level(1)} == {"s00", "s01"}
        assert {leaf.label for leaf in tree.leaves()} == {"s01", "s000", "s001"}
        assert tree.depth() == 2
        assert tree.num_tree_nodes == 5
        assert tree.num_leaves == 3
        assert tree.num_graph_vertices() == 6
        assert tree.mean_leaf_size() == pytest.approx(2.0)


class TestSummaryAndValidation:
    def test_summary_fields(self):
        summary = build_manual_tree().summary()
        assert summary["tree_nodes"] == 5
        assert summary["leaf_communities"] == 3
        assert summary["paper_communities"] == 4
        assert summary["graph_vertices"] == 6

    def test_valid_tree_passes(self):
        tree = build_manual_tree()
        assert tree.validate() == []
        tree.assert_valid()

    def test_member_union_violation_detected(self):
        tree = build_manual_tree()
        tree.node(1).members = [1, 2]  # drops vertex 3
        problems = tree.validate()
        assert any("union of children" in problem or "differ" in problem for problem in problems)

    def test_orphan_child_detected(self):
        tree = build_manual_tree()
        tree.node(0).children.append(77)
        assert any("unknown child" in problem for problem in tree.validate())

    def test_wrong_parent_pointer_detected(self):
        tree = build_manual_tree()
        tree.node(2).parent_id = 1
        assert tree.validate()

    def test_connectivity_referencing_non_children_detected(self):
        tree = build_manual_tree()
        tree.node(0).connectivity.append(
            ConnectivityEdge(source=3, target=4, edge_count=1, total_weight=1.0)
        )
        assert any("not its children" in problem for problem in tree.validate())

    def test_leaf_coverage_violation_detected(self):
        tree = build_manual_tree()
        tree._leaf_of_vertex.pop(6)
        assert any("leaf index" in problem for problem in tree.validate())

    def test_assert_valid_raises(self):
        tree = build_manual_tree()
        tree.node(0).children.append(77)
        with pytest.raises(GTreeStructureError):
            tree.assert_valid()


class TestNodeAndEdgeDataclasses:
    def test_gtree_node_flags(self):
        node = GTreeNode(node_id=7, label="x", level=2, parent_id=3, members=[1, 2])
        assert node.is_leaf
        assert not node.is_root
        assert node.size == 2
        assert "x" in repr(node)

    def test_connectivity_edge_key_is_sorted(self):
        edge = ConnectivityEdge(source=5, target=2, edge_count=1, total_weight=1.0)
        assert edge.key() == (2, 5)

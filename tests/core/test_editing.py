"""Unit tests for graph editing with G-Tree consistency."""

import pytest

from repro.core.builder import build_gtree
from repro.core.editing import GraphEditor
from repro.errors import NavigationError
from repro.graph.generators import connected_caveman


@pytest.fixture
def editable():
    """A fresh graph + tree per test (editing mutates both)."""
    graph = connected_caveman(4, 8, seed=0)
    tree = build_gtree(graph, fanout=4, levels=2, seed=0)
    return graph, tree, GraphEditor(graph, tree)


def total_connectivity(tree):
    return sum(edge.edge_count for node in tree.nodes() for edge in node.connectivity)


class TestNodeEdits:
    def test_add_node_into_leaf(self, editable):
        graph, tree, editor = editable
        leaf = tree.leaves()[0]
        editor.add_node(999, community=leaf.label, name="New Author")
        assert graph.has_node(999)
        assert tree.leaf_of(999).label == leaf.label
        assert 999 in tree.root.members
        assert leaf.subgraph.has_node(999)
        assert tree.validate() == []

    def test_add_node_requires_community_when_tree_attached(self, editable):
        _, _, editor = editable
        with pytest.raises(NavigationError):
            editor.add_node(999)

    def test_add_existing_node_rejected(self, editable):
        _, tree, editor = editable
        with pytest.raises(NavigationError):
            editor.add_node(0, community=tree.leaves()[0].label)

    def test_add_node_to_internal_community_rejected(self, editable):
        _, tree, editor = editable
        with pytest.raises(NavigationError):
            editor.add_node(999, community=tree.root.label)

    def test_remove_node_updates_tree_and_graph(self, editable):
        graph, tree, editor = editable
        victim = 0
        leaf = tree.leaf_of(victim)
        editor.remove_node(victim)
        assert not graph.has_node(victim)
        assert victim not in leaf.members
        assert victim not in tree.root.members
        assert not tree.contains_vertex(victim)
        assert tree.validate() == []

    def test_remove_unknown_node_rejected(self, editable):
        _, _, editor = editable
        with pytest.raises(NavigationError):
            editor.remove_node(10**9)

    def test_update_node_attrs(self, editable):
        graph, tree, editor = editable
        editor.update_node_attrs(3, name="Renamed Author")
        assert graph.get_node_attr(3, "name") == "Renamed Author"
        leaf = tree.leaf_of(3)
        if leaf.subgraph is not None:
            assert leaf.subgraph.get_node_attr(3, "name") == "Renamed Author"


class TestEdgeEdits:
    def test_add_cross_community_edge_updates_connectivity(self, editable):
        graph, tree, editor = editable
        leaves = tree.leaves()
        u = leaves[0].members[2]
        v = leaves[1].members[2]
        assert not graph.has_edge(u, v)
        before = total_connectivity(tree)
        editor.add_edge(u, v, weight=2.0)
        after = total_connectivity(tree)
        assert graph.has_edge(u, v)
        assert after == before + 1

    def test_add_intra_community_edge_updates_leaf_subgraph(self, editable):
        graph, tree, editor = editable
        leaf = tree.leaves()[0]
        members = leaf.members
        # Find a non-adjacent pair inside the leaf (cliques are dense, so the
        # pair may not exist; fall back to re-weighting an existing edge).
        pair = None
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if not graph.has_edge(u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        if pair is None:
            pair = (members[0], members[1])
        editor.add_edge(*pair, weight=5.0)
        assert leaf.subgraph.has_edge(*pair)
        assert leaf.subgraph.edge_weight(*pair) == 5.0

    def test_add_edge_with_unknown_endpoint_rejected(self, editable):
        _, _, editor = editable
        with pytest.raises(NavigationError):
            editor.add_edge(0, 10**9)

    def test_remove_cross_community_edge_updates_connectivity(self, editable):
        graph, tree, editor = editable
        # The caveman ring edge 0 - (next clique) crosses communities.
        cross = None
        for u, v, _ in graph.edges():
            if tree.leaf_of(u).node_id != tree.leaf_of(v).node_id:
                cross = (u, v)
                break
        assert cross is not None
        before = total_connectivity(tree)
        editor.remove_edge(*cross)
        assert not graph.has_edge(*cross)
        assert total_connectivity(tree) == before - 1

    def test_remove_unknown_edge_rejected(self, editable):
        _, _, editor = editable
        with pytest.raises(NavigationError):
            editor.remove_edge(0, 10**9)


class TestUndoAndLog:
    def test_log_records_operations(self, editable):
        _, tree, editor = editable
        editor.add_edge(0, 9)
        editor.update_node_attrs(1, name="X")
        assert [record.operation for record in editor.log] == ["add_edge", "update_node_attrs"]

    def test_undo_add_edge(self, editable):
        graph, tree, editor = editable
        leaves = tree.leaves()
        u, v = leaves[0].members[0], leaves[1].members[0]
        before = total_connectivity(tree)
        editor.add_edge(u, v)
        editor.undo_last()
        assert not graph.has_edge(u, v)
        assert total_connectivity(tree) == before

    def test_undo_remove_edge(self, editable):
        graph, _, editor = editable
        editor.remove_edge(0, 1)
        editor.undo_last()
        assert graph.has_edge(0, 1)

    def test_undo_attr_update(self, editable):
        graph, _, editor = editable
        original = graph.get_node_attr(2, "name")
        editor.update_node_attrs(2, name="Changed")
        editor.undo_last()
        assert graph.get_node_attr(2, "name") == original

    def test_undo_empty_log_is_noop(self, editable):
        _, _, editor = editable
        assert editor.undo_last() is None

    def test_editor_without_tree_supports_node_undo(self):
        graph = connected_caveman(2, 4, seed=0)
        editor = GraphEditor(graph)
        editor.remove_node(0)
        editor.undo_last()
        assert graph.has_node(0)

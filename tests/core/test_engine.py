"""Unit tests for the GMine interaction engine."""

import pytest

from repro.core.engine import GMineEngine
from repro.errors import NavigationError


@pytest.fixture
def engine(dblp_dataset, dblp_gtree):
    return GMineEngine(dblp_gtree, graph=dblp_dataset.graph)


class TestFocusNavigation:
    def test_initial_focus_is_root(self, engine):
        assert engine.focus.is_root

    def test_focus_by_label_and_id(self, engine, dblp_gtree):
        child = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        context = engine.focus_community(child.label)
        assert engine.focus.node_id == child.node_id
        assert context.focus.node_id == child.node_id
        engine.focus_community(dblp_gtree.root.node_id)
        assert engine.focus.is_root

    def test_unknown_focus_raises(self, engine):
        with pytest.raises(NavigationError):
            engine.focus_community("does-not-exist")
        with pytest.raises(NavigationError):
            engine.focus_community(10_000)

    def test_drill_down_and_up(self, engine):
        engine.focus_root()
        context = engine.drill_down(0)
        assert context.focus.level == 1
        context = engine.drill_up()
        assert context.focus.is_root

    def test_drill_up_from_root_raises(self, engine):
        engine.focus_root()
        with pytest.raises(NavigationError):
            engine.drill_up()

    def test_drill_down_bad_index_raises(self, engine):
        engine.focus_root()
        with pytest.raises(NavigationError):
            engine.drill_down(999)

    def test_drill_into_leaf_raises(self, engine, dblp_gtree):
        leaf = dblp_gtree.leaves()[0]
        engine.focus_community(leaf.node_id)
        with pytest.raises(NavigationError):
            engine.drill_down(0)

    def test_history_records_actions(self, engine):
        engine.focus_root()
        engine.drill_down(0)
        actions = [event.action for event in engine.history]
        assert actions.count("focus") >= 2


class TestCommunityContent:
    def test_community_subgraph_of_leaf(self, engine, dblp_gtree):
        leaf = dblp_gtree.leaves()[0]
        subgraph = engine.community_subgraph(leaf.node_id)
        assert set(subgraph.nodes()) == set(leaf.members)

    def test_community_subgraph_of_internal_node(self, engine, dblp_gtree):
        internal = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        subgraph = engine.community_subgraph(internal.node_id)
        assert set(subgraph.nodes()) == set(internal.members)

    def test_connectivity_edges_exposed(self, engine, dblp_gtree):
        edges = engine.connectivity_edges(dblp_gtree.root.node_id)
        assert edges == dblp_gtree.root.connectivity

    def test_community_metrics(self, engine, dblp_gtree):
        leaf = dblp_gtree.leaves()[0]
        metrics = engine.community_metrics(leaf.node_id)
        assert metrics.degree_stats.num_nodes == leaf.size
        assert metrics.num_weak_components >= 1

    def test_current_clutter_reduction(self, engine):
        engine.focus_root()
        stats = engine.current_clutter_reduction()
        assert stats["reduction_ratio"] >= 1.0


class TestQueries:
    def test_label_query_finds_author(self, engine, dblp_dataset, dblp_gtree):
        name = dblp_dataset.name_of(10)
        result = engine.label_query(name)
        assert result.leaf_label == dblp_gtree.leaf_of(10).label
        assert result.path_labels[-1] == "s0"

    def test_label_query_by_vertex_id(self, engine, dblp_gtree):
        result = engine.label_query(25, attribute=None)
        assert result.vertex == 25
        assert result.leaf_label == dblp_gtree.leaf_of(25).label

    def test_label_query_miss_raises(self, engine):
        with pytest.raises(NavigationError):
            engine.label_query("No Such Author")

    def test_locate_and_focus(self, engine, dblp_dataset, dblp_gtree):
        name = dblp_dataset.name_of(200)
        context = engine.locate_and_focus(name)
        assert context.focus.node_id == dblp_gtree.leaf_of(200).node_id

    def test_node_details(self, engine, dblp_dataset):
        details = engine.node_details(5)
        assert details.vertex == 5
        assert details.attributes.get("name") == dblp_dataset.name_of(5)
        assert details.degree == dblp_dataset.graph.degree(5)
        assert details.community_path[-1] == "s0"

    def test_node_details_unknown_vertex_raises(self, engine):
        with pytest.raises(NavigationError):
            engine.node_details(10**9)

    def test_strongest_neighbors_sorted_by_weight(self, engine, dblp_dataset):
        graph = dblp_dataset.graph
        hub = max(graph.nodes(), key=graph.degree)
        neighbors = engine.strongest_neighbors(hub, count=5)
        assert len(neighbors) <= 5
        weights = [weight for _, weight in neighbors]
        assert weights == sorted(weights, reverse=True)
        for partner, weight in neighbors:
            assert graph.edge_weight(hub, partner) == weight


class TestEdgeInspection:
    def test_inspect_connectivity_edge(self, engine, dblp_dataset, dblp_gtree):
        root = dblp_gtree.root
        if not root.connectivity:
            pytest.skip("root children are fully isolated in this dataset")
        edge = root.connectivity[0]
        inspection = engine.inspect_connectivity_edge(edge.source, edge.target)
        assert len(inspection.edges) == edge.edge_count
        assert inspection.endpoints
        first = inspection.endpoints[0]
        assert "name" in first["u_attrs"]

    def test_inspection_requires_full_graph(self, dblp_gtree):
        engine = GMineEngine(dblp_gtree, graph=None)
        with pytest.raises(NavigationError):
            engine.inspect_connectivity_edge(1, 2)

"""Unit tests for connectivity-edge aggregation."""

import pytest

from repro.core.connectivity import (
    connectivity_among_children,
    connectivity_between_groups,
    cross_edges,
    external_edge_count,
    internal_edge_count,
    isolation_profile,
)
from repro.graph.generators import connected_caveman
from repro.graph.graph import Graph


@pytest.fixture
def two_groups_graph():
    graph = Graph()
    # Group A: 0-1-2 (triangle), group B: 3-4, two cross edges with weights 2 and 3.
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    graph.add_edge(3, 4)
    graph.add_edge(2, 3, weight=2.0)
    graph.add_edge(0, 4, weight=3.0)
    return graph


class TestConnectivityBetweenGroups:
    def test_counts_and_weights(self, two_groups_graph):
        membership = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
        edges = connectivity_between_groups(two_groups_graph, membership)
        assert list(edges) == [(0, 1)]
        edge = edges[(0, 1)]
        assert edge.edge_count == 2
        assert edge.total_weight == pytest.approx(5.0)

    def test_vertices_outside_membership_ignored(self, two_groups_graph):
        membership = {0: 0, 1: 0, 3: 1}
        edges = connectivity_between_groups(two_groups_graph, membership)
        assert edges == {}  # the only cross edges involve vertices 2 and 4

    def test_no_cross_edges(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        edges = connectivity_between_groups(graph, {0: 0, 1: 0, 2: 1, 3: 1})
        assert edges == {}


class TestConnectivityAmongChildren:
    def test_caveman_ring_structure(self):
        graph = connected_caveman(4, 6, seed=0)
        child_members = {index: list(range(index * 6, (index + 1) * 6)) for index in range(4)}
        edges = connectivity_among_children(graph, child_members)
        # The ring connects each clique to the next: exactly 4 connectivity edges.
        assert len(edges) == 4
        assert all(edge.edge_count == 1 for edge in edges)

    def test_total_cross_count_matches_paper_definition(self, dblp_dataset, dblp_gtree):
        graph = dblp_dataset.graph
        root = dblp_gtree.root
        total_cross = sum(edge.edge_count for edge in root.connectivity)
        membership = {}
        for child in dblp_gtree.children(root.node_id):
            for member in child.members:
                membership[member] = child.node_id
        manual = sum(
            1 for u, v, _ in graph.edges()
            if membership.get(u) is not None and membership.get(v) is not None
            and membership[u] != membership[v]
        )
        assert total_cross == manual

    def test_deterministic_ordering(self):
        graph = connected_caveman(3, 4, seed=0)
        child_members = {index: list(range(index * 4, (index + 1) * 4)) for index in range(3)}
        a = connectivity_among_children(graph, child_members)
        b = connectivity_among_children(graph, child_members)
        assert [(edge.source, edge.target) for edge in a] == [
            (edge.source, edge.target) for edge in b
        ]


class TestEdgeCounts:
    def test_internal_and_external(self, two_groups_graph):
        count, weight = internal_edge_count(two_groups_graph, [0, 1, 2])
        assert count == 3 and weight == pytest.approx(3.0)
        count, weight = external_edge_count(two_groups_graph, [0, 1, 2])
        assert count == 2 and weight == pytest.approx(5.0)

    def test_cross_edges_lists_originals(self, two_groups_graph):
        found = cross_edges(two_groups_graph, [0, 1, 2], [3, 4])
        assert len(found) == 2
        pairs = {frozenset((u, v)) for u, v, _ in found}
        assert pairs == {frozenset((2, 3)), frozenset((0, 4))}

    def test_cross_edges_empty_when_disjoint_components(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        assert cross_edges(graph, [0, 1], [2, 3]) == []


class TestIsolationProfile:
    def test_ring_profile(self):
        graph = connected_caveman(4, 5, seed=0)
        child_members = {index: list(range(index * 5, (index + 1) * 5)) for index in range(4)}
        profile = isolation_profile(graph, child_members)
        # On a ring, every clique touches exactly two neighbours.
        assert profile == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_isolated_groups_score_zero(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        profile = isolation_profile(graph, {0: [0, 1], 1: [2, 3]})
        assert profile == {0: 0, 1: 0}

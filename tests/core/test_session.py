"""Unit tests for exploration sessions (recording, bookmarks, replay)."""

import pytest

from repro.core.engine import GMineEngine
from repro.core.session import ExplorationSession, SessionStep
from repro.errors import NavigationError


@pytest.fixture
def session(dblp_dataset, dblp_gtree):
    engine = GMineEngine(dblp_gtree, graph=dblp_dataset.graph)
    return ExplorationSession(engine, name="test-session")


class TestRecording:
    def test_interactions_are_recorded_in_order(self, session, dblp_dataset):
        session.focus("s0")
        session.drill_down(0)
        session.label_query(dblp_dataset.name_of(7))
        session.community_metrics()
        assert [step.action for step in session.steps] == [
            "focus", "drill_down", "label_query", "community_metrics",
        ]

    def test_recorded_steps_carry_arguments(self, session):
        session.focus("s0", note="start")
        step = session.steps[0]
        assert step.arguments == {"label": "s0"}
        assert step.note == "start"

    def test_locate_and_focus_recorded(self, session, dblp_dataset):
        name = dblp_dataset.name_of(55)
        session.locate_and_focus(name)
        assert session.steps[-1].action == "locate_and_focus"
        assert session.engine.focus.is_leaf

    def test_inspection_recorded(self, session, dblp_gtree):
        root = dblp_gtree.root
        if not root.connectivity:
            pytest.skip("no connectivity edges at the root")
        edge = root.connectivity[0]
        a = dblp_gtree.node(edge.source).label
        b = dblp_gtree.node(edge.target).label
        session.inspect_connectivity_edge(a, b)
        assert session.steps[-1].action == "inspect_connectivity_edge"


class TestBookmarks:
    def test_bookmark_and_goto(self, session):
        session.focus("s0")
        session.drill_down(0)
        marked = session.engine.focus.label
        session.bookmark("interesting", note="come back later")
        session.drill_up()
        session.goto_bookmark("interesting")
        assert session.engine.focus.label == marked

    def test_unknown_bookmark_raises(self, session):
        with pytest.raises(NavigationError):
            session.goto_bookmark("nope")


class TestPersistenceAndReplay:
    def test_save_and_load_steps(self, session, dblp_dataset, tmp_path):
        session.focus("s0")
        session.drill_down(1)
        session.label_query(dblp_dataset.name_of(3))
        path = session.save(tmp_path / "walk.json")
        steps = ExplorationSession.load_steps(path)
        assert [step.action for step in steps] == ["focus", "drill_down", "label_query"]

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(NavigationError):
            ExplorationSession.load_steps(path)

    def test_replay_reproduces_focus(self, session, dblp_dataset, dblp_gtree, tmp_path):
        session.focus("s0")
        session.drill_down(0)
        session.drill_down(0)
        final_focus = session.engine.focus.label
        path = session.save(tmp_path / "walk.json")

        fresh_engine = GMineEngine(dblp_gtree, graph=dblp_dataset.graph)
        replayed = ExplorationSession.replay(fresh_engine, ExplorationSession.load_steps(path))
        assert replayed.engine.focus.label == final_focus
        assert len(replayed.steps) == 3

    def test_replay_strict_failure(self, dblp_dataset, dblp_gtree):
        engine = GMineEngine(dblp_gtree, graph=dblp_dataset.graph)
        steps = [SessionStep("label_query", {"value": "No Such Author", "attribute": "name"})]
        with pytest.raises(NavigationError):
            ExplorationSession.replay(engine, steps, strict=True)

    def test_replay_lenient_skips_failures(self, dblp_dataset, dblp_gtree):
        engine = GMineEngine(dblp_gtree, graph=dblp_dataset.graph)
        steps = [
            SessionStep("label_query", {"value": "No Such Author", "attribute": "name"}),
            SessionStep("focus", {"label": "s0"}),
        ]
        replayed = ExplorationSession.replay(engine, steps, strict=False)
        assert replayed.engine.focus.label == "s0"

    def test_replay_unknown_action(self, dblp_dataset, dblp_gtree):
        engine = GMineEngine(dblp_gtree, graph=dblp_dataset.graph)
        steps = [SessionStep("teleport", {})]
        with pytest.raises(NavigationError):
            ExplorationSession.replay(engine, steps, strict=True)
        ExplorationSession.replay(engine, steps, strict=False)  # skipped silently

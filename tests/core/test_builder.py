"""Unit tests for the G-Tree builder."""

import pytest

from repro.core.builder import GTreeBuildOptions, GTreeBuilder, build_gtree
from repro.graph.generators import connected_caveman, erdos_renyi
from repro.partition.hierarchy import recursive_partition
from repro.partition.kway import KWayOptions


class TestBuildGTree:
    def test_tree_validates(self, dblp_gtree):
        assert dblp_gtree.validate() == []

    def test_every_vertex_in_exactly_one_leaf(self, dblp_dataset, dblp_gtree):
        graph = dblp_dataset.graph
        leaf_members = [node for leaf in dblp_gtree.leaves() for node in leaf.members]
        assert len(leaf_members) == graph.num_nodes
        assert set(leaf_members) == set(graph.nodes())

    def test_leaf_subgraphs_attached_and_induced(self, dblp_dataset, dblp_gtree):
        graph = dblp_dataset.graph
        for leaf in dblp_gtree.leaves():
            assert leaf.subgraph is not None
            assert set(leaf.subgraph.nodes()) == set(leaf.members)
            for u, v, w in leaf.subgraph.edges():
                assert graph.edge_weight(u, v) == w

    def test_labels_follow_paper_convention(self, dblp_gtree):
        assert dblp_gtree.root.label == "s0"
        for child in dblp_gtree.children(dblp_gtree.root.node_id):
            assert child.label.startswith("s0") and len(child.label) == 3

    def test_fanout_respected(self, dblp_gtree):
        for node in dblp_gtree.nodes():
            assert len(node.children) <= 3

    def test_connectivity_edges_reference_children(self, dblp_gtree):
        for node in dblp_gtree.nodes():
            child_set = set(node.children)
            for edge in node.connectivity:
                assert edge.source in child_set and edge.target in child_set
                assert edge.edge_count >= 1
                assert edge.total_weight > 0

    def test_caveman_tree_structure(self):
        graph = connected_caveman(4, 8, seed=0)
        tree = build_gtree(graph, fanout=4, levels=2, seed=0)
        assert tree.num_leaves == 4
        assert tree.depth() == 1
        # Each leaf should essentially be one clique.
        sizes = sorted(leaf.size for leaf in tree.leaves())
        assert sizes == [8, 8, 8, 8]

    def test_options_disable_subgraph_attachment(self):
        graph = erdos_renyi(80, 0.08, seed=50)
        options = GTreeBuildOptions(fanout=2, levels=2, seed=1, attach_leaf_subgraphs=False)
        tree = GTreeBuilder(options).build(graph)
        assert all(leaf.subgraph is None for leaf in tree.leaves())

    def test_options_disable_connectivity(self):
        graph = erdos_renyi(80, 0.08, seed=51)
        options = GTreeBuildOptions(fanout=2, levels=2, seed=1, compute_connectivity=False)
        tree = GTreeBuilder(options).build(graph)
        assert all(not node.connectivity for node in tree.nodes())

    def test_build_from_precomputed_hierarchy(self):
        graph = erdos_renyi(100, 0.06, seed=52)
        hierarchy = recursive_partition(graph, fanout=2, levels=3, options=KWayOptions(seed=2))
        tree = GTreeBuilder(GTreeBuildOptions(fanout=2, levels=3)).build(graph, hierarchy)
        assert tree.num_leaves == len(hierarchy.leaf_communities())

    def test_deterministic_given_seed(self):
        graph = erdos_renyi(100, 0.06, seed=53)
        a = build_gtree(graph, fanout=3, levels=3, seed=9)
        b = build_gtree(graph, fanout=3, levels=3, seed=9)
        assert [node.label for node in a.nodes()] == [node.label for node in b.nodes()]
        assert [sorted(node.members, key=repr) for node in a.nodes()] == [
            sorted(node.members, key=repr) for node in b.nodes()
        ]

    def test_small_graph_single_level(self):
        graph = erdos_renyi(8, 0.5, seed=54)
        tree = build_gtree(graph, fanout=5, levels=3, seed=0, min_community_size=10)
        # Too small to split: the root is the only (leaf) community.
        assert tree.num_tree_nodes == 1
        assert tree.root.is_leaf

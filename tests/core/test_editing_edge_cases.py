"""GraphEditor edge cases the basic editing suite leaves uncovered.

Three scenarios the mutable-dataset write path must survive:

* removing a community *representative* — the highest-degree member a
  summary view would label the community with, whose incident edges fan
  out into several sibling partitions;
* an edit script that empties a leaf partition entirely (the leaf stays
  a valid, re-populatable community);
* cross-partition edge insertion and removal, which must keep every
  ancestor's connectivity list equal to a fresh
  :func:`connectivity_among_children` recomputation.

Each test also pins the Merkle consequences: the partitions whose
sub-fingerprints change are exactly a subset of the editor's
``touched_communities``, and untouched siblings keep their values.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.connectivity import connectivity_among_children
from repro.core.editing import GraphEditor, apply_edit_script
from repro.graph.generators import connected_caveman

pytestmark = pytest.mark.tier1


@pytest.fixture
def editable():
    """A fresh caveman graph + 2-level tree per test (editing mutates both)."""
    graph = connected_caveman(4, 8, seed=0)
    tree = build_gtree(graph, fanout=4, levels=2, seed=0)
    return graph, tree, GraphEditor(graph, tree)


def _edge_tuples(edges):
    return [
        (edge.source, edge.target, edge.edge_count, round(edge.total_weight, 9))
        for edge in edges
    ]


def assert_connectivity_matches_fresh(graph, tree):
    """Every internal node's connectivity == a from-scratch recomputation."""
    for node in tree.nodes():
        if node.is_leaf:
            continue
        child_members = {
            child_id: tree.node(child_id).members for child_id in node.children
        }
        fresh = connectivity_among_children(graph, child_members)
        assert _edge_tuples(node.connectivity) == _edge_tuples(fresh), (
            f"stale connectivity on {node.label}"
        )


class TestRepresentativeRemoval:
    def test_removing_the_community_representative_stays_consistent(self, editable):
        graph, tree, editor = editable
        leaf = max(tree.leaves(), key=lambda node: node.size)
        # The representative: the member a summary would name the leaf by —
        # its highest-degree vertex, including the caveman ring edges that
        # reach into neighbouring partitions.
        representative = max(
            leaf.members, key=lambda member: len(list(graph.neighbors(member)))
        )
        neighbor_leaves = {
            tree.leaf_of(other).node_id
            for other in graph.neighbors(representative)
        }
        before_parts = tree.partition_fingerprints()

        editor.remove_node(representative)

        assert not graph.has_node(representative)
        assert representative not in leaf.members
        assert not tree.contains_vertex(representative)
        assert leaf.subgraph is None or not leaf.subgraph.has_node(representative)
        assert tree.validate() == []
        assert_connectivity_matches_fresh(graph, tree)

        after_parts = tree.partition_fingerprints()
        changed = {
            node_id
            for node_id in before_parts
            if before_parts[node_id] != after_parts[node_id]
        }
        # The victim's own partition and its lineage must change...
        lineage = {leaf.node_id} | {
            ancestor.node_id for ancestor in tree.ancestors(leaf.node_id)
        }
        assert lineage <= changed
        # ...every change is accounted for by the editor's touched set...
        assert changed <= editor.touched_communities
        # ...and the editor marked every partition the fan-out reached.
        assert neighbor_leaves <= editor.touched_communities

    def test_sibling_partitions_keep_their_fingerprints(self, editable):
        graph, tree, editor = editable
        leaves = tree.leaves()
        victim_leaf = leaves[0]
        representative = max(
            victim_leaf.members,
            key=lambda member: len(list(graph.neighbors(member))),
        )
        untouched = [
            leaf.node_id
            for leaf in leaves
            if leaf.node_id != victim_leaf.node_id
            and all(
                tree.leaf_of(other).node_id != leaf.node_id
                for other in graph.neighbors(representative)
            )
        ]
        assert untouched, "caveman ring must leave at least one leaf untouched"
        before = tree.partition_fingerprints()
        editor.remove_node(representative)
        after = tree.partition_fingerprints()
        for node_id in untouched:
            assert before[node_id] == after[node_id], (
                f"untouched partition {node_id} changed its sub-fingerprint"
            )


class TestEmptiedLeafPartition:
    def test_script_emptying_a_leaf_keeps_the_tree_valid(self, editable):
        graph, tree, editor = editable
        leaf = min(tree.leaves(), key=lambda node: node.size)
        victims = list(leaf.members)
        script = [{"action": "remove_node", "node": victim} for victim in victims]

        apply_edit_script(editor, script)

        assert leaf.members == []
        assert leaf.size == 0
        for victim in victims:
            assert not graph.has_node(victim)
            assert not tree.contains_vertex(victim)
        assert tree.validate() == []
        assert_connectivity_matches_fresh(graph, tree)
        # No connectivity edge may still reference the emptied partition.
        for node in tree.nodes():
            for edge in node.connectivity:
                assert leaf.node_id not in (edge.source, edge.target)
        # The emptied leaf still fingerprints (distinctly from before).
        assert tree.fingerprint()

    def test_emptied_leaf_can_be_repopulated(self, editable):
        graph, tree, editor = editable
        leaf = min(tree.leaves(), key=lambda node: node.size)
        for victim in list(leaf.members):
            editor.remove_node(victim)
        assert leaf.members == []

        editor.add_node(7001, community=leaf.label, name="Recolonist")
        editor.add_node(7002, community=leaf.label)
        editor.add_edge(7001, 7002, weight=2.0)

        assert leaf.members == [7001, 7002]
        assert tree.leaf_of(7001).node_id == leaf.node_id
        assert 7001 in tree.root.members
        if leaf.subgraph is not None:
            assert leaf.subgraph.has_edge(7001, 7002)
        assert tree.validate() == []
        assert_connectivity_matches_fresh(graph, tree)


class TestCrossPartitionEdgeInsertion:
    def _disconnected_leaf_pair(self, graph, tree):
        """Two leaves with no edge crossing between them (caveman: non-ring)."""
        leaves = tree.leaves()
        for i, first in enumerate(leaves):
            for second in leaves[i + 1:]:
                members = set(second.members)
                crossing = any(
                    other in members
                    for member in first.members
                    for other in graph.neighbors(member)
                )
                if not crossing:
                    return first, second
        pytest.fail("expected at least one disconnected leaf pair")

    def test_insertion_creates_the_connectivity_edge(self, editable):
        graph, tree, editor = editable
        first, second = self._disconnected_leaf_pair(graph, tree)
        parent = tree.node(first.parent_id)
        key = tuple(sorted((first.node_id, second.node_id)))
        assert key not in {
            tuple(sorted((edge.source, edge.target)))
            for edge in parent.connectivity
        }

        editor.add_edge(first.members[0], second.members[0], weight=2.5)

        by_pair = {
            tuple(sorted((edge.source, edge.target))): edge
            for edge in parent.connectivity
        }
        created = by_pair[key]
        assert created.edge_count == 1
        assert created.total_weight == pytest.approx(2.5)
        assert_connectivity_matches_fresh(graph, tree)
        assert {first.node_id, second.node_id} <= editor.touched_communities

    def test_insertion_increments_an_existing_connectivity_edge(self, editable):
        graph, tree, editor = editable
        # Find a leaf pair that already shares cross edges (the caveman ring).
        cross = None
        for u, v, _ in graph.edges():
            leaf_u, leaf_v = tree.leaf_of(u), tree.leaf_of(v)
            if leaf_u.node_id != leaf_v.node_id:
                cross = (leaf_u, leaf_v)
                break
        assert cross is not None
        first, second = cross
        parent = tree.node(first.parent_id)
        key = tuple(sorted((first.node_id, second.node_id)))

        def pair_stats():
            for edge in parent.connectivity:
                if tuple(sorted((edge.source, edge.target))) == key:
                    return edge.edge_count, round(edge.total_weight, 9)
            return 0, 0.0

        count_before, weight_before = pair_stats()
        assert count_before >= 1
        # A fresh vertex pair spanning the two leaves.
        u = next(
            member for member in first.members
            if all(
                other not in set(second.members)
                for other in graph.neighbors(member)
            )
        )
        v = second.members[0]
        editor.add_edge(u, v, weight=3.0)
        count_after, weight_after = pair_stats()
        assert count_after == count_before + 1
        assert weight_after == pytest.approx(weight_before + 3.0)
        assert_connectivity_matches_fresh(graph, tree)

    def test_removing_the_only_cross_edge_drops_the_pair(self, editable):
        graph, tree, editor = editable
        first, second = self._disconnected_leaf_pair(graph, tree)
        parent = tree.node(first.parent_id)
        key = tuple(sorted((first.node_id, second.node_id)))
        u, v = first.members[0], second.members[0]
        editor.add_edge(u, v, weight=1.5)
        editor.remove_edge(u, v)
        assert key not in {
            tuple(sorted((edge.source, edge.target)))
            for edge in parent.connectivity
        }
        assert_connectivity_matches_fresh(graph, tree)

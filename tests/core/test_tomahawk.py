"""Unit tests for the Tomahawk display principle."""

import pytest

from repro.core.tomahawk import (
    clutter_reduction,
    drill_path,
    full_expansion_size,
    tomahawk_context,
)


class TestTomahawkContext:
    def test_root_context_is_root_plus_children(self, dblp_gtree):
        context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        assert context.focus.is_root
        assert context.siblings == []
        assert context.ancestors == []
        assert len(context.children) == len(dblp_gtree.root.children)
        assert context.size == 1 + len(dblp_gtree.root.children)

    def test_mid_level_context_contents(self, dblp_gtree):
        focus = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        context = tomahawk_context(dblp_gtree, focus.node_id)
        assert context.focus.node_id == focus.node_id
        assert {node.node_id for node in context.children} == set(focus.children)
        assert {node.node_id for node in context.siblings} == {
            sibling.node_id for sibling in dblp_gtree.siblings(focus.node_id)
        }
        assert [node.node_id for node in context.ancestors] == [dblp_gtree.root.node_id]

    def test_leaf_context_has_no_children(self, dblp_gtree):
        leaf = dblp_gtree.leaves()[0]
        context = tomahawk_context(dblp_gtree, leaf.node_id)
        assert context.children == []
        assert context.ancestors  # a leaf always has ancestors in a multi-level tree

    def test_visible_ids_are_unique(self, dblp_gtree):
        for node in dblp_gtree.nodes():
            context = tomahawk_context(dblp_gtree, node.node_id)
            ids = context.visible_ids()
            assert len(ids) == len(set(ids))

    def test_enclosing_node(self, dblp_gtree):
        root_context = tomahawk_context(dblp_gtree, dblp_gtree.root.node_id)
        assert root_context.enclosing_node().node_id == dblp_gtree.root.node_id
        leaf = dblp_gtree.leaves()[0]
        leaf_context = tomahawk_context(dblp_gtree, leaf.node_id)
        assert leaf_context.enclosing_node().node_id == leaf.parent_id


class TestClutterReduction:
    def test_full_expansion_counts_all_descendants(self, dblp_gtree):
        full = full_expansion_size(dblp_gtree, dblp_gtree.root.node_id)
        assert full == dblp_gtree.num_tree_nodes  # root focus: every community

    def test_depth_limit(self, dblp_gtree):
        limited = full_expansion_size(dblp_gtree, dblp_gtree.root.node_id, depth=1)
        assert limited == 1 + len(dblp_gtree.root.children)

    def test_tomahawk_never_larger_than_full_expansion(self, dblp_gtree):
        for node in dblp_gtree.nodes():
            stats = clutter_reduction(dblp_gtree, node.node_id)
            assert stats["tomahawk_items"] <= stats["full_expansion_items"]
            assert stats["reduction_ratio"] >= 1.0

    def test_reduction_grows_with_tree_size(self, dblp_gtree):
        stats = clutter_reduction(dblp_gtree, dblp_gtree.root.node_id)
        # Root Tomahawk shows root + its children; the full tree is much bigger.
        assert stats["reduction_ratio"] > 2.0


class TestDrillPath:
    def test_contexts_follow_labels(self, dblp_gtree):
        first_child = dblp_gtree.children(dblp_gtree.root.node_id)[0]
        contexts = drill_path(dblp_gtree, ["s0", first_child.label])
        assert [context.focus.label for context in contexts] == ["s0", first_child.label]

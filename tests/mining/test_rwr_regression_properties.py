"""Property-based regression: the two RWR solvers agree on random graphs.

The power-iteration solver is the scalable path the engine and service use;
the direct linear solve is the ground truth.  These tests generate random
graphs and source sets (seeded deterministically — ``derandomize=True``
makes hypothesis replay the same example sequence on every run) and assert
the two steady states agree within tolerance, plus the invariances the
service cache relies on (source order, container type, solver equivalence).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert, connected_caveman, erdos_renyi
from repro.mining.rwr import rwr_exact, rwr_power_iteration, steady_state_rwr

pytestmark = pytest.mark.tier1

AGREEMENT_TOL = 1e-7
POWER_TOL = 1e-12


def _sample_sources(graph, seed, count):
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(seed)
    return rng.sample(nodes, min(count, len(nodes)))


def _assert_same_distribution(first, second, tol=AGREEMENT_TOL):
    assert set(first.scores) == set(second.scores)
    worst = max(
        abs(first.scores[node] - second.scores[node]) for node in first.scores
    )
    assert worst < tol, f"solvers disagree by {worst:.3e}"


@given(
    n=st.integers(min_value=5, max_value=45),
    p=st.floats(min_value=0.05, max_value=0.35),
    seed=st.integers(min_value=0, max_value=10_000),
    num_sources=st.integers(min_value=1, max_value=3),
    restart=st.floats(min_value=0.05, max_value=0.6),
)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_power_iteration_agrees_with_exact_on_random_graphs(
    n, p, seed, num_sources, restart
):
    graph = erdos_renyi(n, p, seed=seed)
    sources = _sample_sources(graph, seed, num_sources)
    power = rwr_power_iteration(
        graph, sources, restart_probability=restart, tol=POWER_TOL, max_iter=5000
    )
    exact = rwr_exact(graph, sources, restart_probability=restart)
    assert power.converged
    _assert_same_distribution(power, exact)


@given(
    n=st.integers(min_value=6, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
    restart=st.floats(min_value=0.05, max_value=0.5),
)
@settings(max_examples=20, deadline=None, derandomize=True)
def test_solvers_agree_on_scale_free_graphs(n, seed, restart):
    graph = barabasi_albert(n, 2, seed=seed)
    sources = _sample_sources(graph, seed, 2)
    power = rwr_power_iteration(
        graph, sources, restart_probability=restart, tol=POWER_TOL, max_iter=5000
    )
    exact = rwr_exact(graph, sources, restart_probability=restart)
    _assert_same_distribution(power, exact)


@given(
    cliques=st.integers(min_value=2, max_value=5),
    clique_size=st.integers(min_value=3, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_solvers_agree_on_community_structured_graphs(cliques, clique_size, seed):
    graph = connected_caveman(cliques, clique_size, seed=seed)
    sources = _sample_sources(graph, seed, 2)
    power = rwr_power_iteration(graph, sources, tol=POWER_TOL, max_iter=5000)
    exact = rwr_exact(graph, sources)
    _assert_same_distribution(power, exact)


@given(
    n=st.integers(min_value=8, max_value=40),
    p=st.floats(min_value=0.08, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None, derandomize=True)
def test_steady_state_rwr_is_source_order_invariant(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    sources = _sample_sources(graph, seed, 3)
    forward = steady_state_rwr(graph, sources)
    backward = steady_state_rwr(graph, tuple(reversed(sources)))
    duplicated = steady_state_rwr(graph, list(sources) + [sources[0]])
    _assert_same_distribution(forward, backward, tol=1e-12)
    _assert_same_distribution(forward, duplicated, tol=1e-12)


@given(
    n=st.integers(min_value=6, max_value=30),
    p=st.floats(min_value=0.1, max_value=0.35),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_steady_state_rwr_solver_choice_agrees(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    sources = _sample_sources(graph, seed, 2)
    power = steady_state_rwr(graph, sources, solver="power", tol=POWER_TOL, max_iter=5000)
    exact = steady_state_rwr(graph, sources, solver="exact")
    _assert_same_distribution(power, exact)

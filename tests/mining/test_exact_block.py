"""Blocked exact RWR: one factorization, k solves, bit-identical columns.

``rwr_exact_block`` shares the LU factorization of ``I - (1 - c) W``
across every source set and solves the restart vectors as one batched
``factor.solve(Q)``.  SuperLU solves a matrix right-hand side column by
column, so the contract here is *bitwise* equality with the per-set
``rwr_exact`` loop — not tolerance agreement.  The hypothesis sweeps are
the acceptance gate for that claim on random graphs.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.graph.generators import barabasi_albert, connected_caveman, erdos_renyi
from repro.graph.matrix import PreparedGraph
from repro.mining.rwr import per_source_rwr, rwr_exact, rwr_exact_block

pytestmark = pytest.mark.tier1


def _sample_source_sets(graph, seed, k, set_size=2):
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(seed)
    return [
        rng.sample(nodes, min(set_size, len(nodes))) for _ in range(k)
    ]


def _assert_bit_identical(blocked, looped):
    assert len(blocked) == len(looped)
    for one, other in zip(blocked, looped):
        assert one.scores == other.scores  # float ==, no tolerance
        assert one.converged and other.converged
        assert one.iterations == other.iterations == 0


# --------------------------------------------------------------------------- #
# bit parity: hypothesis-gated
# --------------------------------------------------------------------------- #
@given(
    n=st.integers(min_value=5, max_value=40),
    p=st.floats(min_value=0.08, max_value=0.35),
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=6),
    restart=st.floats(min_value=0.05, max_value=0.6),
)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_block_matches_per_set_loop_bitwise(n, p, seed, k, restart):
    graph = erdos_renyi(n, p, seed=seed)
    source_sets = _sample_source_sets(graph, seed, k)
    blocked = rwr_exact_block(graph, source_sets, restart_probability=restart)
    looped = [
        rwr_exact(graph, sources, restart_probability=restart)
        for sources in source_sets
    ]
    _assert_bit_identical(blocked, looped)


@given(
    n=st.integers(min_value=6, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_block_through_prepared_matches_cold_bitwise(n, seed, k):
    graph = barabasi_albert(n, 2, seed=seed)
    source_sets = _sample_source_sets(graph, seed, k)
    prepared = PreparedGraph.from_graph(graph)
    warm = rwr_exact_block(graph, source_sets, prepared=prepared)
    cold = rwr_exact_block(graph, source_sets)
    _assert_bit_identical(warm, cold)


def test_per_source_blocked_matches_loop_bitwise():
    graph = connected_caveman(4, 6, seed=3)
    sources = sorted(graph.nodes(), key=repr)[:8]
    prepared = PreparedGraph.from_graph(graph)
    blocked = per_source_rwr(graph, sources, solver="exact", prepared=prepared)
    looped = per_source_rwr(
        graph, sources, solver="exact", prepared=prepared, blocked=False
    )
    assert list(blocked) == list(looped) == list(sources)
    for source in sources:
        assert blocked[source].scores == looped[source].scores


# --------------------------------------------------------------------------- #
# validation and edge cases
# --------------------------------------------------------------------------- #
class TestBlockEdges:
    def test_empty_source_sets_return_empty(self):
        graph = erdos_renyi(8, 0.3, seed=1)
        assert rwr_exact_block(graph, []) == []

    def test_empty_source_set_rejected(self):
        graph = erdos_renyi(8, 0.3, seed=1)
        nodes = sorted(graph.nodes(), key=repr)
        with pytest.raises(MiningError):
            rwr_exact_block(graph, [[nodes[0]], []])

    def test_bad_restart_rejected(self):
        graph = erdos_renyi(8, 0.3, seed=1)
        nodes = sorted(graph.nodes(), key=repr)
        with pytest.raises(MiningError):
            rwr_exact_block(graph, [[nodes[0]]], restart_probability=1.5)


# --------------------------------------------------------------------------- #
# factor cache on the prepared view
# --------------------------------------------------------------------------- #
class TestExactFactorCache:
    def test_factor_is_memoised_per_restart_probability(self):
        prepared = PreparedGraph.from_graph(erdos_renyi(12, 0.3, seed=5))
        first = prepared.exact_factor(0.15)
        assert prepared.exact_factor(0.15) is first
        assert prepared.exact_factor(0.3) is not first

    def test_factor_cache_is_bounded(self):
        prepared = PreparedGraph.from_graph(erdos_renyi(12, 0.3, seed=5))
        capacity = PreparedGraph.EXACT_FACTOR_CAPACITY
        probed = [0.05 + 0.02 * i for i in range(capacity + 2)]
        for c in probed:
            prepared.exact_factor(c)
        assert len(prepared._exact_factors) == capacity
        # FIFO: the oldest probes were evicted, the newest survive
        assert float(probed[-1]) in prepared._exact_factors
        assert float(probed[0]) not in prepared._exact_factors

    def test_pickling_drops_factors_and_results_stay_bitwise(self):
        graph = erdos_renyi(14, 0.3, seed=9)
        sources = sorted(graph.nodes(), key=repr)[:2]
        prepared = PreparedGraph.from_graph(graph)
        before = rwr_exact(graph, sources, prepared=prepared)
        assert prepared._exact_factors  # the solve cached a factor
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone._exact_factors == {}  # SuperLU never crosses a pickle
        after = rwr_exact(graph, sources, prepared=clone)
        assert before.scores == after.scores

"""Parity suite for the prepared-kernel layer.

Two contracts are pinned here, both **exact** (``==`` on floats, not
approximate): feeding any kernel a :class:`~repro.graph.matrix.PreparedGraph`
must change nothing but the cost, and the blocked multi-source RWR solver
must return bit-for-bit what the per-source loop returns (same scores,
same iteration counts, same deterministic ``top()`` ordering).  The only
tolerance-based checks are against :func:`rwr_exact`, which is a different
algorithm (sparse LU) and agrees to solver precision, exactly as the
existing power-vs-exact regression suite does.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert, connected_caveman, erdos_renyi
from repro.graph.matrix import PreparedGraph, VertexIndex, transition_matrix
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.delivered_current import compute_voltages, extract_delivered_current
from repro.mining.metrics_suite import compute_subgraph_metrics
from repro.mining.pagerank import pagerank
from repro.mining.proximity import (
    pairwise_proximity_matrix,
    proximity,
    rank_candidates_by_proximity,
    top_k_related,
)
from repro.mining.rwr import (
    per_source_rwr,
    rwr_exact,
    rwr_power_block,
    rwr_power_iteration,
    steady_state_rwr,
)

pytestmark = pytest.mark.tier1

EXACT_AGREEMENT_TOL = 1e-7
POWER_TOL = 1e-12


def _sample_sources(graph, seed, count):
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(seed)
    return rng.sample(nodes, min(count, len(nodes)))


def _assert_identical_results(first, second):
    """Bit-level equality of two RWRResults, ordering included."""
    assert first.scores == second.scores
    assert first.iterations == second.iterations
    assert first.converged == second.converged
    assert first.top(len(first.scores)) == second.top(len(second.scores))


# --------------------------------------------------------------------------- #
# blocked multi-source RWR == per-source loop == rwr_exact
# --------------------------------------------------------------------------- #
@given(
    n=st.integers(min_value=6, max_value=45),
    p=st.floats(min_value=0.05, max_value=0.35),
    seed=st.integers(min_value=0, max_value=10_000),
    num_sources=st.integers(min_value=1, max_value=5),
    restart=st.floats(min_value=0.05, max_value=0.6),
)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_blocked_rwr_is_bit_identical_to_per_source_loop(
    n, p, seed, num_sources, restart
):
    graph = erdos_renyi(n, p, seed=seed)
    sources = _sample_sources(graph, seed, num_sources)
    prepared = PreparedGraph.from_graph(graph)

    looped = per_source_rwr(
        graph, sources, restart_probability=restart, blocked=False
    )
    blocked = per_source_rwr(
        graph, sources, restart_probability=restart, blocked=True
    )
    blocked_prepared = per_source_rwr(
        graph, sources, restart_probability=restart, prepared=prepared
    )
    assert set(looped) == set(blocked) == set(blocked_prepared)
    for source in sources:
        _assert_identical_results(looped[source], blocked[source])
        _assert_identical_results(looped[source], blocked_prepared[source])


@given(
    n=st.integers(min_value=6, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    restart=st.floats(min_value=0.05, max_value=0.5),
    num_sources=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_blocked_rwr_agrees_with_exact_solver(n, seed, restart, num_sources):
    graph = barabasi_albert(n, 2, seed=seed)
    sources = _sample_sources(graph, seed, num_sources)
    blocked = rwr_power_block(
        graph,
        [[source] for source in sources],
        restart_probability=restart,
        tol=POWER_TOL,
        max_iter=5000,
    )
    for source, result in zip(sources, blocked):
        exact = rwr_exact(graph, [source], restart_probability=restart)
        assert set(result.scores) == set(exact.scores)
        worst = max(
            abs(result.scores[node] - exact.scores[node]) for node in result.scores
        )
        assert worst < EXACT_AGREEMENT_TOL, f"solvers disagree by {worst:.3e}"


@given(
    cliques=st.integers(min_value=2, max_value=5),
    clique_size=st.integers(min_value=3, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
    num_sets=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_blocked_multi_source_sets_match_individual_solves(
    cliques, clique_size, seed, num_sets
):
    """Source *sets* (not just singletons) solve identically blocked or not."""
    graph = connected_caveman(cliques, clique_size)
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    source_sets = [
        rng.sample(nodes, min(1 + rng.randrange(3), len(nodes)))
        for _ in range(num_sets)
    ]
    blocked = rwr_power_block(graph, source_sets)
    for sources, result in zip(source_sets, blocked):
        single = rwr_power_iteration(graph, sources)
        _assert_identical_results(single, result)


def test_block_chunking_is_invisible(monkeypatch):
    """More source sets than one chunk holds: results identical to one block."""
    import repro.mining.rwr as rwr_module

    graph = barabasi_albert(60, 2, seed=5)
    nodes = sorted(graph.nodes(), key=repr)
    source_sets = [[node] for node in nodes[:10]]
    whole = rwr_power_block(graph, source_sets)
    monkeypatch.setattr(rwr_module, "BLOCK_COLUMN_CHUNK", 3)
    chunked = rwr_module.rwr_power_block(graph, source_sets)
    assert len(whole) == len(chunked)
    for one, other in zip(whole, chunked):
        _assert_identical_results(one, other)


def test_steady_state_rwr_matches_power_iteration_bitwise():
    graph = barabasi_albert(150, 3, seed=7)
    sources = _sample_sources(graph, 7, 3)
    via_steady = steady_state_rwr(graph, sources)
    via_power = rwr_power_iteration(graph, sorted(set(sources), key=repr))
    _assert_identical_results(via_steady, via_power)


# --------------------------------------------------------------------------- #
# prepared == unprepared across every touched kernel
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module", params=[3, 11, 29])
def graph_and_prepared(request):
    graph = barabasi_albert(120, 3, seed=request.param)
    return graph, PreparedGraph.from_graph(graph), request.param


def test_prepared_matches_cold_transition_matrix(graph_and_prepared):
    graph, prepared, _ = graph_and_prepared
    cold, index = transition_matrix(graph)
    assert index.nodes() == prepared.index.nodes()
    assert (cold != prepared.transition).nnz == 0
    assert cold.data.tobytes() == prepared.transition.data.tobytes()


def test_prepared_rwr_power_and_exact(graph_and_prepared):
    graph, prepared, seed = graph_and_prepared
    sources = _sample_sources(graph, seed, 3)
    _assert_identical_results(
        rwr_power_iteration(graph, sources),
        rwr_power_iteration(graph, sources, prepared=prepared),
    )
    _assert_identical_results(
        rwr_power_iteration(graph, sources),
        rwr_power_iteration(None, sources, prepared=prepared),
    )
    assert (
        rwr_exact(graph, sources).scores
        == rwr_exact(graph, sources, prepared=prepared).scores
    )
    for solver in ("power", "exact"):
        cold = steady_state_rwr(graph, sources, solver=solver)
        warm = steady_state_rwr(graph, sources, solver=solver, prepared=prepared)
        assert cold.scores == warm.scores


def test_prepared_pagerank_and_metrics(graph_and_prepared):
    graph, prepared, _ = graph_and_prepared
    assert pagerank(graph) == pagerank(graph, prepared=prepared)
    cold = compute_subgraph_metrics(graph, hop_sample_size=16)
    warm = compute_subgraph_metrics(graph, hop_sample_size=16, prepared=prepared)
    assert cold.as_dict() == warm.as_dict()
    assert cold.pagerank == warm.pagerank


def test_prepared_proximity_queries(graph_and_prepared):
    graph, prepared, seed = graph_and_prepared
    a, b, c, d = _sample_sources(graph, seed, 4)
    assert proximity(graph, a, b) == proximity(graph, a, b, prepared=prepared)
    assert proximity(graph, a, b, symmetric=False) == proximity(
        graph, a, b, symmetric=False, prepared=prepared
    )
    assert pairwise_proximity_matrix(graph, [a, b, c, d]) == (
        pairwise_proximity_matrix(graph, [a, b, c, d], prepared=prepared)
    )
    assert top_k_related(graph, a, k=12) == top_k_related(
        graph, a, k=12, prepared=prepared
    )
    assert rank_candidates_by_proximity(graph, a, [b, c, d]) == (
        rank_candidates_by_proximity(graph, a, [b, c, d], prepared=prepared)
    )


def test_prepared_delivered_current(graph_and_prepared):
    graph, prepared, seed = graph_and_prepared
    source, target = _sample_sources(graph, seed + 1, 2)
    assert compute_voltages(graph, source, target) == compute_voltages(
        graph, source, target, prepared=prepared
    )
    cold = extract_delivered_current(graph, source, target, budget=12)
    warm = extract_delivered_current(
        graph, source, target, budget=12, prepared=prepared
    )
    assert cold.voltages == warm.voltages
    assert cold.paths == warm.paths
    assert cold.delivered == warm.delivered
    assert sorted(cold.subgraph.nodes(), key=repr) == sorted(
        warm.subgraph.nodes(), key=repr
    )


def test_prepared_connection_subgraph(graph_and_prepared):
    graph, prepared, seed = graph_and_prepared
    sources = _sample_sources(graph, seed + 2, 3)
    cold = extract_connection_subgraph(graph, sources, budget=15)
    warm = extract_connection_subgraph(graph, sources, budget=15, prepared=prepared)
    assert cold.goodness == warm.goodness
    assert cold.paths == warm.paths
    assert sorted(cold.subgraph.nodes(), key=repr) == sorted(
        warm.subgraph.nodes(), key=repr
    )
    assert sorted(cold.subgraph.edges(), key=repr) == sorted(
        warm.subgraph.edges(), key=repr
    )


# --------------------------------------------------------------------------- #
# guard rails
# --------------------------------------------------------------------------- #
def test_prepared_rejects_foreign_index():
    graph = erdos_renyi(20, 0.3, seed=1)
    prepared = PreparedGraph.from_graph(graph)
    foreign = VertexIndex(sorted(graph.nodes(), key=repr))
    from repro.errors import MiningError

    source = next(iter(graph.nodes()))
    with pytest.raises(MiningError):
        rwr_power_iteration(graph, [source], index=foreign, prepared=prepared)
    with pytest.raises(MiningError):
        rwr_exact(graph, [source], index=foreign, prepared=prepared)


def test_missing_graph_without_prepared_raises():
    from repro.errors import MiningError

    with pytest.raises(MiningError):
        rwr_power_iteration(None, ["x"])
    with pytest.raises(MiningError):
        pagerank(None)


def test_prepared_reports_unknown_source_like_cold_path():
    from repro.errors import MiningError

    graph = erdos_renyi(10, 0.4, seed=2)
    prepared = PreparedGraph.from_graph(graph)
    with pytest.raises(MiningError, match="not in the graph"):
        rwr_power_iteration(None, ["missing"], prepared=prepared)

"""Unit tests for multi-source connection subgraph extraction."""

import pytest

from repro.errors import ExtractionError
from repro.graph.generators import barabasi_albert, connected_caveman
from repro.graph.graph import Graph
from repro.mining.components import number_weak_components
from repro.mining.connection_subgraph import (
    extract_connection_subgraph,
    extraction_summary,
)


@pytest.fixture(scope="module")
def ba_graph():
    return barabasi_albert(400, 3, seed=21)


class TestExtraction:
    def test_budget_respected(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 50, 100], budget=30)
        assert result.num_nodes <= 30

    def test_sources_always_included(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [5, 200, 399], budget=25)
        assert result.contains_all_sources()

    def test_connected_when_sources_connected(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 10, 20], budget=30)
        assert number_weak_components(result.subgraph) == 1

    def test_paths_touch_sources(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 50], budget=20)
        for path in result.paths:
            assert path[0] in result.sources or path[-1] in result.sources

    def test_goodness_scores_cover_graph(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 50], budget=20)
        assert set(result.goodness) == set(ba_graph.nodes())
        assert max(result.goodness.values()) == pytest.approx(1.0)

    def test_single_source_returns_neighbourhood(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0], budget=15)
        assert result.subgraph.has_node(0)
        assert 1 <= result.num_nodes <= 15

    def test_duplicate_sources_deduplicated(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 0, 7], budget=20)
        assert result.sources == [0, 7]

    def test_disconnected_sources_still_within_budget(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        result = extract_connection_subgraph(graph, [1, 3], budget=4)
        assert result.subgraph.has_node(1) and result.subgraph.has_node(3)
        assert result.num_nodes <= 4

    def test_caveman_extraction_crosses_ring(self):
        graph = connected_caveman(4, 8, seed=0)
        sources = [0, 16]  # cliques 0 and 2
        result = extract_connection_subgraph(graph, sources, budget=20)
        assert result.contains_all_sources()
        assert number_weak_components(result.subgraph) == 1

    def test_reduction_factor(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 100], budget=20)
        assert result.reduction_factor(ba_graph) >= ba_graph.num_nodes / 20


class TestExtractionValidation:
    def test_unknown_source_raises(self, ba_graph):
        with pytest.raises(ExtractionError):
            extract_connection_subgraph(ba_graph, [10**9], budget=10)

    def test_empty_sources_raise(self, ba_graph):
        with pytest.raises(ExtractionError):
            extract_connection_subgraph(ba_graph, [], budget=10)

    def test_budget_smaller_than_sources_raises(self, ba_graph):
        with pytest.raises(ExtractionError):
            extract_connection_subgraph(ba_graph, [0, 1, 2], budget=2)


class TestExtractionSummary:
    def test_summary_fields(self, ba_graph):
        result = extract_connection_subgraph(ba_graph, [0, 50, 100], budget=30)
        summary = extraction_summary(result, ba_graph)
        assert summary["original_nodes"] == ba_graph.num_nodes
        assert summary["extracted_nodes"] == result.num_nodes
        assert summary["sources_present"] == 1.0
        assert summary["reduction_factor"] > 1.0

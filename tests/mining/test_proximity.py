"""Unit tests for proximity queries and structural similarity baselines."""

import pytest

from repro.errors import MiningError
from repro.graph.generators import barabasi_albert, connected_caveman, path_graph, star_graph
from repro.graph.graph import Graph
from repro.mining.proximity import (
    adamic_adar,
    common_neighbors,
    jaccard_similarity,
    pairwise_proximity_matrix,
    proximity,
    rank_candidates_by_proximity,
    top_k_related,
)


class TestTopKRelated:
    def test_excludes_source_and_respects_k(self, caveman_graph):
        related = top_k_related(caveman_graph, 0, k=5)
        assert len(related) == 5
        assert all(node != 0 for node, _ in related)
        scores = [score for _, score in related]
        assert scores == sorted(scores, reverse=True)

    def test_same_clique_members_rank_first(self):
        graph = connected_caveman(3, 8, seed=0)
        related = top_k_related(graph, 0, k=7)
        same_clique = sum(1 for node, _ in related if node < 8)
        assert same_clique >= 5

    def test_exclude_neighbors_surfaces_indirect_relations(self):
        graph = path_graph(6)
        related = top_k_related(graph, 0, k=2, exclude_neighbors=True)
        assert related[0][0] == 2  # two hops away, strongest indirect relation

    def test_invalid_k(self, caveman_graph):
        with pytest.raises(MiningError):
            top_k_related(caveman_graph, 0, k=0)


class TestProximity:
    def test_closer_vertices_score_higher(self):
        graph = path_graph(8)
        near = proximity(graph, 0, 1)
        far = proximity(graph, 0, 6)
        assert near > far

    def test_symmetric_by_default(self, caveman_graph):
        assert proximity(caveman_graph, 0, 5) == pytest.approx(
            proximity(caveman_graph, 5, 0)
        )

    def test_asymmetric_option(self):
        graph = star_graph(6)
        hub_to_leaf = proximity(graph, 0, 1, symmetric=False)
        leaf_to_hub = proximity(graph, 1, 0, symmetric=False)
        assert leaf_to_hub > hub_to_leaf  # the leaf walker is at the hub often

    def test_disconnected_vertices_have_zero_proximity(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        assert proximity(graph, 1, 3) == 0.0


class TestPairwiseMatrix:
    def test_all_pairs_present(self, caveman_graph):
        vertices = [0, 10, 20, 30]
        matrix = pairwise_proximity_matrix(caveman_graph, vertices)
        assert len(matrix) == 6
        for (a, b), value in matrix.items():
            assert a in vertices and b in vertices
            assert value >= 0.0

    def test_within_clique_pairs_score_higher(self):
        graph = connected_caveman(3, 8, seed=0)
        matrix = pairwise_proximity_matrix(graph, [0, 1, 16])
        assert matrix[(0, 1)] > matrix[(0, 16)]

    def test_requires_two_distinct_vertices(self, caveman_graph):
        with pytest.raises(MiningError):
            pairwise_proximity_matrix(caveman_graph, [0, 0])


class TestStructuralBaselines:
    def test_common_neighbors(self):
        graph = Graph()
        graph.add_edge("a", "x")
        graph.add_edge("b", "x")
        graph.add_edge("a", "y")
        graph.add_edge("b", "y")
        graph.add_edge("a", "z")
        assert set(common_neighbors(graph, "a", "b")) == {"x", "y"}

    def test_jaccard(self):
        graph = Graph()
        graph.add_edge("a", "x")
        graph.add_edge("b", "x")
        graph.add_edge("a", "y")
        assert jaccard_similarity(graph, "a", "b") == pytest.approx(0.5)

    def test_jaccard_isolated(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        assert jaccard_similarity(graph, "a", "b") == 0.0

    def test_adamic_adar_prefers_low_degree_witnesses(self):
        graph = Graph()
        # u and v share two witnesses: one exclusive (degree 2), one hub.
        graph.add_edge("u", "rare")
        graph.add_edge("v", "rare")
        graph.add_edge("u", "hub")
        graph.add_edge("v", "hub")
        for leaf in range(20):
            graph.add_edge("hub", f"leaf{leaf}")
        score = adamic_adar(graph, "u", "v")
        import math

        assert score == pytest.approx(1.0 / math.log(2) + 1.0 / math.log(22))

    def test_rank_candidates(self, caveman_graph):
        ranking = rank_candidates_by_proximity(caveman_graph, 0, [1, 30, 55])
        assert ranking[0][0] == 1  # same clique beats other cliques
        assert len(ranking) == 3

    def test_rwr_ranking_correlates_with_structural_similarity(self):
        graph = barabasi_albert(150, 3, seed=5)
        source = 0
        candidates = [node for node in graph.nodes() if node != source][:60]
        rwr_top = {node for node, _ in
                   rank_candidates_by_proximity(graph, source, candidates)[:10]}
        structural = sorted(
            candidates,
            key=lambda node: -(jaccard_similarity(graph, source, node)
                               + (1 if graph.has_edge(source, node) else 0)),
        )[:10]
        assert rwr_top & set(structural)

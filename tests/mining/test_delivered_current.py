"""Unit tests for the delivered-current (KDD'04) pairwise baseline."""

import pytest

from repro.errors import ExtractionError
from repro.graph.generators import barabasi_albert, connected_caveman, path_graph
from repro.graph.graph import Graph
from repro.mining.delivered_current import compute_voltages, extract_delivered_current


class TestVoltages:
    def test_boundary_conditions(self, caveman_graph):
        voltages = compute_voltages(caveman_graph, 0, 30)
        assert voltages[0] == pytest.approx(1.0)
        assert voltages[30] == pytest.approx(0.0)

    def test_all_voltages_within_unit_interval(self, caveman_graph):
        voltages = compute_voltages(caveman_graph, 0, 30)
        assert all(-1e-9 <= value <= 1.0 + 1e-9 for value in voltages.values())

    def test_voltage_decreases_along_path(self):
        graph = path_graph(5)
        voltages = compute_voltages(graph, 0, 4, grounding_fraction=0.0)
        ordered = [voltages[node] for node in range(5)]
        assert ordered == sorted(ordered, reverse=True)

    def test_same_source_and_target_raises(self, caveman_graph):
        with pytest.raises(ExtractionError):
            compute_voltages(caveman_graph, 3, 3)

    def test_unknown_vertex_raises(self, caveman_graph):
        with pytest.raises(ExtractionError):
            compute_voltages(caveman_graph, 0, 10**9)


class TestDeliveredCurrentExtraction:
    def test_endpoints_present_and_budget_respected(self):
        graph = barabasi_albert(300, 3, seed=30)
        result = extract_delivered_current(graph, 0, 150, budget=25)
        assert result.subgraph.has_node(0)
        assert result.subgraph.has_node(150)
        assert result.num_nodes <= 25

    def test_paths_run_from_source_to_target(self):
        graph = barabasi_albert(200, 3, seed=31)
        result = extract_delivered_current(graph, 0, 100, budget=20)
        for path in result.paths:
            assert path[0] == 0
            assert path[-1] == 100

    def test_delivered_currents_are_positive_and_sorted_first_highest(self):
        graph = barabasi_albert(200, 3, seed=32)
        result = extract_delivered_current(graph, 0, 100, budget=20)
        assert all(current > 0 for current in result.delivered)
        if len(result.delivered) >= 2:
            assert result.delivered[0] >= result.delivered[-1] * 0.01

    def test_path_graph_extraction_is_the_path(self):
        graph = path_graph(6)
        result = extract_delivered_current(graph, 0, 5, budget=10, grounding_fraction=0.0)
        assert set(result.subgraph.nodes()) == set(range(6))
        assert result.paths[0] == list(range(6))

    def test_disconnected_endpoints_give_trivial_result(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        result = extract_delivered_current(graph, 1, 3, budget=10)
        assert result.subgraph.has_node(1) and result.subgraph.has_node(3)
        assert result.paths == []

    def test_too_small_budget_raises(self, caveman_graph):
        with pytest.raises(ExtractionError):
            extract_delivered_current(caveman_graph, 0, 30, budget=1)

    def test_caveman_bridge_vertices_selected(self):
        graph = connected_caveman(3, 6, seed=0)
        # Sources in cliques 0 and 1; the ring edge (0, 7) is the only route.
        result = extract_delivered_current(graph, 1, 8, budget=12)
        assert result.subgraph.has_node(0) or result.subgraph.has_node(7)

"""Unit tests for weak/strong component computation."""

import networkx as nx
import pytest

from repro.graph.generators import connected_caveman, erdos_renyi
from repro.graph.graph import DiGraph, Graph
from repro.mining.components import (
    largest_component,
    number_strong_components,
    number_weak_components,
    strong_components,
    strong_components_of_undirected,
    weak_components,
)


class TestWeakComponents:
    def test_connected_graph_has_one(self, caveman_graph):
        assert number_weak_components(caveman_graph) == 1

    def test_disconnected_graph(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.add_node(5)
        components = weak_components(graph)
        assert len(components) == 3
        assert sorted(len(component) for component in components) == [1, 2, 2]

    def test_empty_graph(self):
        assert weak_components(Graph()) == []

    def test_components_partition_vertices(self, random_graph):
        components = weak_components(random_graph)
        flat = [node for component in components for node in component]
        assert sorted(flat, key=repr) == sorted(random_graph.nodes(), key=repr)
        assert len(flat) == len(set(flat))

    def test_matches_networkx(self):
        graph = erdos_renyi(150, 0.012, seed=3)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from((u, v) for u, v, _ in graph.edges())
        assert number_weak_components(graph) == nx.number_connected_components(nx_graph)

    def test_largest_component(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(10, 11)
        lcc = largest_component(graph)
        assert set(lcc.nodes()) == {1, 2, 3}

    def test_largest_component_of_empty_graph(self):
        assert largest_component(Graph()).num_nodes == 0


class TestStrongComponents:
    def test_directed_cycle_is_one_component(self):
        digraph = DiGraph()
        digraph.add_edge(1, 2)
        digraph.add_edge(2, 3)
        digraph.add_edge(3, 1)
        assert number_strong_components(digraph) == 1

    def test_directed_path_is_all_singletons(self):
        digraph = DiGraph()
        digraph.add_edge(1, 2)
        digraph.add_edge(2, 3)
        assert number_strong_components(digraph) == 3

    def test_two_cycles_joined_by_one_arc(self):
        digraph = DiGraph()
        for u, v in [(1, 2), (2, 1), (3, 4), (4, 3), (2, 3)]:
            digraph.add_edge(u, v)
        components = strong_components(digraph)
        assert len(components) == 2
        assert sorted(sorted(component) for component in components) == [[1, 2], [3, 4]]

    def test_matches_networkx_on_random_digraph(self):
        import random

        rng = random.Random(7)
        digraph = DiGraph()
        nx_digraph = nx.DiGraph()
        for node in range(60):
            digraph.add_node(node)
            nx_digraph.add_node(node)
        for _ in range(200):
            u, v = rng.randrange(60), rng.randrange(60)
            if u != v:
                digraph.add_edge(u, v)
                nx_digraph.add_edge(u, v)
        assert number_strong_components(digraph) == nx.number_strongly_connected_components(
            nx_digraph
        )

    def test_long_path_does_not_hit_recursion_limit(self):
        digraph = DiGraph()
        for i in range(5000):
            digraph.add_edge(i, i + 1)
        assert number_strong_components(digraph) == 5001

    def test_undirected_strong_equals_weak(self, random_graph):
        strong = strong_components_of_undirected(random_graph)
        weak = weak_components(random_graph)
        assert sorted(sorted(component, key=repr) for component in strong) == sorted(
            sorted(component, key=repr) for component in weak
        )

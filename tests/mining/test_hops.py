"""Unit tests for hop-plot and diameter estimation."""

import pytest

from repro.graph.generators import cycle_graph, grid_2d, path_graph, star_graph
from repro.graph.graph import Graph
from repro.mining.hops import (
    average_shortest_path_length,
    effective_diameter,
    exact_diameter,
    hop_histogram,
    hop_plot,
)


class TestExactDiameter:
    def test_path(self):
        assert exact_diameter(path_graph(6)) == 5

    def test_cycle(self):
        assert exact_diameter(cycle_graph(8)) == 4

    def test_grid(self):
        assert exact_diameter(grid_2d(4, 5)) == 3 + 4

    def test_star(self):
        assert exact_diameter(star_graph(7)) == 2

    def test_empty_and_singleton(self):
        assert exact_diameter(Graph()) == 0
        singleton = Graph()
        singleton.add_node(1)
        assert exact_diameter(singleton) == 0

    def test_disconnected_uses_largest_reachable_distance(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.add_edge(4, 5)
        assert exact_diameter(graph) == 2


class TestHopHistogram:
    def test_path_counts_ordered_pairs(self):
        histogram = hop_histogram(path_graph(4))
        # Ordered pairs: distance 1 -> 6, distance 2 -> 4, distance 3 -> 2.
        assert histogram == {1: 6, 2: 4, 3: 2}

    def test_restricted_sources(self):
        histogram = hop_histogram(path_graph(4), sources=[0])
        assert histogram == {1: 1, 2: 1, 3: 1}

    def test_total_pairs_on_connected_graph(self, caveman_graph):
        histogram = hop_histogram(caveman_graph)
        n = caveman_graph.num_nodes
        assert sum(histogram.values()) == n * (n - 1)


class TestEffectiveDiameter:
    def test_at_most_exact_diameter(self, grid_graph):
        assert effective_diameter(grid_graph) <= exact_diameter(grid_graph)

    def test_monotone_in_percentile(self, grid_graph):
        assert effective_diameter(grid_graph, 0.5) <= effective_diameter(grid_graph, 0.95)

    def test_empty_graph(self):
        assert effective_diameter(Graph()) == 0.0

    def test_star_effective_diameter_close_to_two(self):
        value = effective_diameter(star_graph(50))
        assert 1.0 <= value <= 2.0


class TestHopPlot:
    def test_exact_plot_not_sampled(self, grid_graph):
        plot = hop_plot(grid_graph)
        assert not plot.sampled
        assert plot.num_sources == grid_graph.num_nodes
        assert plot.max_hop() == exact_diameter(grid_graph)

    def test_sampled_plot(self, caveman_graph):
        plot = hop_plot(caveman_graph, sample_size=5, seed=1)
        assert plot.sampled
        assert plot.num_sources == 5

    def test_cumulative_is_monotone(self, grid_graph):
        plot = hop_plot(grid_graph)
        cumulative = list(plot.cumulative().values())
        assert cumulative == sorted(cumulative)

    def test_sample_larger_than_graph_is_exact(self):
        graph = path_graph(5)
        plot = hop_plot(graph, sample_size=50)
        assert not plot.sampled


class TestAveragePathLength:
    def test_path_graph_value(self):
        # For P3 (0-1-2): ordered pairs distances 1,1,1,1,2,2 -> mean 8/6.
        assert average_shortest_path_length(path_graph(3)) == pytest.approx(8.0 / 6.0)

    def test_empty_graph(self):
        assert average_shortest_path_length(Graph()) == 0.0

"""Unit tests for PageRank (cross-validated against networkx)."""

import networkx as nx
import pytest

from repro.errors import ConvergenceError
from repro.graph.generators import barabasi_albert, complete_graph, star_graph
from repro.graph.graph import DiGraph, Graph
from repro.mining.pagerank import pagerank, pagerank_digraph, top_pagerank_nodes


class TestPagerankUndirected:
    def test_scores_sum_to_one(self, random_graph):
        scores = pagerank(random_graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_graph_gives_uniform_scores(self):
        graph = complete_graph(6)
        scores = pagerank(graph)
        for score in scores.values():
            assert score == pytest.approx(1.0 / 6.0, rel=1e-6)

    def test_hub_scores_highest(self):
        graph = star_graph(10)
        scores = pagerank(graph)
        assert max(scores, key=scores.get) == 0

    def test_matches_networkx(self):
        graph = barabasi_albert(80, 2, seed=9)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_weighted_edges_from(graph.edges())
        ours = pagerank(graph, damping=0.85, tol=1e-12)
        reference = nx.pagerank(nx_graph, alpha=0.85, weight="weight", tol=1e-12, max_iter=500)
        for node in graph.nodes():
            assert ours[node] == pytest.approx(reference[node], abs=1e-6)

    def test_empty_graph(self):
        assert pagerank(Graph()) == {}

    def test_isolated_vertex_gets_restart_mass(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        scores = pagerank(graph)
        assert scores[3] > 0.0
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_personalization_biases_scores(self):
        graph = barabasi_albert(50, 2, seed=10)
        neutral = pagerank(graph)
        biased = pagerank(graph, personalization={0: 1.0})
        assert biased[0] > neutral[0]

    def test_non_convergence_raises(self):
        graph = barabasi_albert(60, 2, seed=11)
        with pytest.raises(ConvergenceError):
            pagerank(graph, tol=1e-16, max_iter=2)


class TestPagerankDirected:
    def test_sink_accumulates_score(self):
        digraph = DiGraph()
        digraph.add_edge("a", "c")
        digraph.add_edge("b", "c")
        scores = pagerank_digraph(digraph)
        assert scores["c"] > scores["a"]
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_matches_networkx_digraph(self):
        import random

        rng = random.Random(4)
        digraph = DiGraph()
        nx_digraph = nx.DiGraph()
        for node in range(40):
            digraph.add_node(node)
            nx_digraph.add_node(node)
        for _ in range(150):
            u, v = rng.randrange(40), rng.randrange(40)
            if u != v:
                digraph.add_edge(u, v)
                nx_digraph.add_edge(u, v)
        ours = pagerank_digraph(digraph, tol=1e-12)
        reference = nx.pagerank(nx_digraph, alpha=0.85, tol=1e-12, max_iter=500)
        for node in range(40):
            assert ours[node] == pytest.approx(reference[node], abs=1e-6)


class TestTopPagerank:
    def test_ordering_and_count(self, random_graph):
        scores = pagerank(random_graph)
        top = top_pagerank_nodes(scores, count=5)
        assert len(top) == 5
        values = [score for _, score in top]
        assert values == sorted(values, reverse=True)

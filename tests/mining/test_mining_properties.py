"""Property-based tests for the mining subsystem."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.mining.components import number_weak_components, weak_components
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.pagerank import pagerank
from repro.mining.rwr import rwr_power_iteration


@given(
    n=st.integers(min_value=5, max_value=60),
    p=st.floats(min_value=0.02, max_value=0.3),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_weak_components_partition_the_vertex_set(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    components = weak_components(graph)
    flat = [node for component in components for node in component]
    assert len(flat) == n
    assert set(flat) == set(graph.nodes())


@given(
    n=st.integers(min_value=5, max_value=60),
    p=st.floats(min_value=0.05, max_value=0.3),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_pagerank_is_a_probability_distribution(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    scores = pagerank(graph)
    assert abs(sum(scores.values()) - 1.0) < 1e-6
    assert all(score >= 0 for score in scores.values())


@given(
    n=st.integers(min_value=10, max_value=80),
    restart=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_rwr_is_a_probability_distribution_favouring_the_source(n, restart, seed):
    graph = barabasi_albert(n, 2, seed=seed)
    result = rwr_power_iteration(graph, [0], restart_probability=restart)
    assert abs(sum(result.scores.values()) - 1.0) < 1e-6
    # The source always holds at least its restart mass, so it can never drop
    # below the uniform share.  (With a small restart probability a high-degree
    # hub may legitimately out-score the source, so "source is the maximum" is
    # only guaranteed for large restart probabilities.)
    assert result.scores[0] >= restart / n
    if restart >= 0.3:
        assert max(result.scores, key=result.scores.get) == 0


@given(
    n=st.integers(min_value=20, max_value=120),
    budget=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=15, deadline=None)
def test_extraction_respects_budget_and_includes_sources(n, budget, seed):
    graph = barabasi_albert(n, 2, seed=seed)
    sources = [0, n // 2]
    budget = max(budget, len(set(sources)))
    result = extract_connection_subgraph(graph, sources, budget=budget)
    assert result.num_nodes <= budget
    assert result.contains_all_sources()
    # The extract never contains vertices outside the original graph.
    assert all(graph.has_node(node) for node in result.subgraph.nodes())

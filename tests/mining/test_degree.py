"""Unit tests for degree statistics."""

import pytest

from repro.graph.generators import complete_graph, star_graph
from repro.graph.graph import Graph
from repro.mining.degree import (
    degree_distribution,
    degree_distribution_normalized,
    degree_sequence,
    degree_summary,
    top_degree_nodes,
)


class TestDegreeDistribution:
    def test_star_distribution(self):
        graph = star_graph(6)
        histogram = degree_distribution(graph)
        assert histogram == {6: 1, 1: 6}

    def test_complete_graph_distribution(self):
        graph = complete_graph(5)
        assert degree_distribution(graph) == {4: 5}

    def test_normalized_sums_to_one(self, random_graph):
        pmf = degree_distribution_normalized(random_graph)
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_normalized_empty_graph(self):
        assert degree_distribution_normalized(Graph()) == {}

    def test_degree_sequence_sorted_descending(self, random_graph):
        sequence = degree_sequence(random_graph)
        assert sequence == sorted(sequence, reverse=True)
        assert len(sequence) == random_graph.num_nodes


class TestTopDegreeNodes:
    def test_hub_first(self):
        graph = star_graph(8)
        top = top_degree_nodes(graph, count=3)
        assert top[0] == (0, 8)
        assert len(top) == 3

    def test_count_larger_than_graph(self):
        graph = complete_graph(3)
        assert len(top_degree_nodes(graph, count=10)) == 3


class TestDegreeSummary:
    def test_star_summary(self):
        summary = degree_summary(star_graph(5))
        assert summary.num_nodes == 6
        assert summary.max_degree == 5
        assert summary.min_degree == 1
        assert summary.median_degree == 1.0

    def test_even_count_median(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        summary = degree_summary(graph)
        assert summary.median_degree == 1.0
        assert summary.mean_degree == 1.0

    def test_empty_graph_summary(self):
        summary = degree_summary(Graph())
        assert summary.num_nodes == 0
        assert summary.mean_degree == 0.0

    def test_as_dict_round_trip(self, random_graph):
        payload = degree_summary(random_graph).as_dict()
        assert payload["num_nodes"] == random_graph.num_nodes
        assert set(payload) == {
            "num_nodes", "num_edges", "min_degree", "max_degree",
            "mean_degree", "median_degree",
        }

"""Unit tests for random walk with restart and the goodness score."""

import pytest

from repro.errors import ConvergenceError, MiningError
from repro.graph.generators import barabasi_albert, connected_caveman, path_graph
from repro.graph.graph import Graph
from repro.mining.rwr import (
    RWRResult,
    goodness_scores,
    meeting_probability,
    node_sort_key,
    per_source_rwr,
    rwr_exact,
    rwr_power_iteration,
)


class TestRWRPowerIteration:
    def test_distribution_sums_to_one(self, caveman_graph):
        result = rwr_power_iteration(caveman_graph, [0])
        assert sum(result.scores.values()) == pytest.approx(1.0)
        assert result.converged

    def test_source_has_maximum_score(self, caveman_graph):
        result = rwr_power_iteration(caveman_graph, [0], restart_probability=0.3)
        assert max(result.scores, key=result.scores.get) == 0

    def test_scores_decay_with_distance(self):
        graph = path_graph(9)
        result = rwr_power_iteration(graph, [0], restart_probability=0.2)
        assert result.scores[1] > result.scores[4] > result.scores[8]

    def test_nodes_in_other_components_get_zero(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        result = rwr_power_iteration(graph, [1])
        assert result.scores[3] == pytest.approx(0.0, abs=1e-9)
        assert result.scores[4] == pytest.approx(0.0, abs=1e-9)

    def test_multi_source_restart(self, caveman_graph):
        result = rwr_power_iteration(caveman_graph, [0, 30])
        top_two = sorted(result.scores, key=result.scores.get, reverse=True)[:4]
        assert 0 in top_two and 30 in top_two

    def test_invalid_restart_probability(self, caveman_graph):
        with pytest.raises(MiningError):
            rwr_power_iteration(caveman_graph, [0], restart_probability=0.0)
        with pytest.raises(MiningError):
            rwr_power_iteration(caveman_graph, [0], restart_probability=1.5)

    def test_missing_source_raises(self, caveman_graph):
        with pytest.raises(MiningError):
            rwr_power_iteration(caveman_graph, [999_999])

    def test_empty_sources_raise(self, caveman_graph):
        with pytest.raises(MiningError):
            rwr_power_iteration(caveman_graph, [])

    def test_strict_non_convergence_raises(self, caveman_graph):
        with pytest.raises(ConvergenceError):
            rwr_power_iteration(caveman_graph, [0], tol=1e-15, max_iter=1)

    def test_lenient_non_convergence_returns_flagged_result(self, caveman_graph):
        result = rwr_power_iteration(caveman_graph, [0], tol=1e-15, max_iter=1, strict=False)
        assert not result.converged

    def test_top_helper(self, caveman_graph):
        result = rwr_power_iteration(caveman_graph, [0])
        top = result.top(3)
        assert len(top) == 3
        assert top[0][0] == 0


class TestRWRExact:
    def test_matches_power_iteration(self):
        graph = barabasi_albert(60, 2, seed=13)
        power = rwr_power_iteration(graph, [0], restart_probability=0.15, tol=1e-12)
        exact = rwr_exact(graph, [0], restart_probability=0.15)
        for node in graph.nodes():
            assert power.scores[node] == pytest.approx(exact.scores[node], abs=1e-6)

    def test_distribution_sums_to_one(self, caveman_graph):
        result = rwr_exact(caveman_graph, [5])
        assert sum(result.scores.values()) == pytest.approx(1.0)

    def test_invalid_restart(self, caveman_graph):
        with pytest.raises(MiningError):
            rwr_exact(caveman_graph, [0], restart_probability=1.0)


class TestGoodness:
    def test_per_source_runs_one_walk_per_source(self, caveman_graph):
        results = per_source_rwr(caveman_graph, [0, 10, 20])
        assert set(results) == {0, 10, 20}
        for source, result in results.items():
            assert max(result.scores, key=result.scores.get) == source

    def test_goodness_normalised_to_unit_maximum(self, caveman_graph):
        per_source = per_source_rwr(caveman_graph, [0, 10])
        goodness = goodness_scores(caveman_graph, per_source)
        assert max(goodness.values()) == pytest.approx(1.0)
        assert min(goodness.values()) >= 0.0

    def test_goodness_empty_input_raises(self, caveman_graph):
        with pytest.raises(MiningError):
            goodness_scores(caveman_graph, {})

    def test_bridge_vertices_score_high(self):
        # Two cliques joined through a single middle vertex: walks from one
        # source in each clique must meet at the bridge.
        graph = Graph()
        for base in (0, 10):
            for i in range(4):
                for j in range(i + 1, 4):
                    graph.add_edge(base + i, base + j)
        graph.add_edge(0, 99)
        graph.add_edge(99, 10)
        goodness = meeting_probability(graph, [1, 11], restart_probability=0.2)
        non_sources = {node: score for node, score in goodness.items() if node not in (1, 11)}
        top = max(non_sources, key=non_sources.get)
        # The bridge or one of its direct clique gateways must lead.
        assert top in {99, 0, 10}

    def test_meeting_probability_exact_solver(self, caveman_graph):
        scores = meeting_probability(caveman_graph, [0, 1], solver="exact")
        assert max(scores.values()) == pytest.approx(1.0)


class TestTopTieBreaking:
    """Regression: top() ordering must not depend on dict insertion order
    or on which execution backend produced the scores (PR 3 satellite)."""

    def test_ties_break_on_numeric_node_id(self):
        scores = {10: 0.5, 2: 0.5, 7: 0.25}
        result = RWRResult(scores=scores, iterations=1, converged=True,
                           restart_probability=0.15)
        # numeric order, not lexicographic repr order ("10" < "2")
        assert result.top(3) == [(2, 0.5), (10, 0.5), (7, 0.25)]

    def test_order_is_insertion_independent(self):
        forward = {i: 1.0 / 8 for i in range(8)}
        backward = {i: 1.0 / 8 for i in reversed(range(8))}
        a = RWRResult(scores=forward, iterations=1, converged=True,
                      restart_probability=0.15)
        b = RWRResult(scores=backward, iterations=1, converged=True,
                      restart_probability=0.15)
        assert a.top(8) == b.top(8) == [(i, 1.0 / 8) for i in range(8)]

    def test_string_ids_sort_lexicographically(self):
        scores = {"b": 0.4, "a": 0.4, "c": 0.2}
        result = RWRResult(scores=scores, iterations=1, converged=True,
                           restart_probability=0.15)
        assert [node for node, _ in result.top(3)] == ["a", "b", "c"]

    def test_node_sort_key_is_type_stable(self):
        ranked = sorted([10, 2, "x", "a"], key=node_sort_key)
        assert ranked == [2, 10, "a", "x"]

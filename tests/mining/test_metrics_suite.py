"""Unit tests for the bundled GMine metrics suite."""

import pytest

from repro.graph.generators import connected_caveman, grid_2d
from repro.graph.graph import Graph
from repro.mining.hops import exact_diameter
from repro.mining.metrics_suite import compute_subgraph_metrics


class TestMetricsSuite:
    def test_all_five_paper_metrics_present(self, caveman_graph):
        metrics = compute_subgraph_metrics(caveman_graph)
        assert metrics.degree_histogram  # degree distribution
        assert metrics.diameter > 0  # number of hops
        assert metrics.num_weak_components == 1  # weak components
        assert metrics.num_strong_components == 1  # strong components
        assert metrics.pagerank  # PageRank

    def test_diameter_matches_exact_computation(self, grid_graph):
        metrics = compute_subgraph_metrics(grid_graph)
        assert metrics.diameter == exact_diameter(grid_graph)

    def test_strong_equals_weak_for_undirected_input(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        metrics = compute_subgraph_metrics(graph)
        assert metrics.num_weak_components == metrics.num_strong_components == 2

    def test_pagerank_sums_to_one(self, caveman_graph):
        metrics = compute_subgraph_metrics(caveman_graph)
        assert sum(metrics.pagerank.values()) == pytest.approx(1.0)
        assert len(metrics.top_pagerank) <= 10

    def test_empty_graph(self):
        metrics = compute_subgraph_metrics(Graph())
        assert metrics.diameter == 0
        assert metrics.num_weak_components == 0
        assert metrics.pagerank == {}

    def test_hop_sampling_bounds_work(self):
        graph = connected_caveman(5, 10, seed=0)
        sampled = compute_subgraph_metrics(graph, hop_sample_size=5, seed=1)
        exact = compute_subgraph_metrics(graph)
        assert sampled.diameter <= exact.diameter
        assert sampled.effective_diameter <= exact.diameter

    def test_as_dict_is_json_friendly(self, caveman_graph):
        import json

        payload = compute_subgraph_metrics(caveman_graph).as_dict()
        json.dumps(payload)  # must not raise
        assert payload["num_weak_components"] == 1
        assert "degree_stats" in payload

"""Unit tests for the core Graph and DiGraph structures."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.graph import DiGraph, Graph, graph_from_adjacency, union


class TestGraphConstruction:
    def test_empty_graph(self):
        graph = Graph(name="empty")
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_add_node_is_idempotent(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.num_nodes == 1

    def test_add_node_merges_attributes(self):
        graph = Graph()
        graph.add_node(1, name="Ada")
        graph.add_node(1, year=1843)
        assert graph.node_attrs(1) == {"name": "Ada", "year": 1843}

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert graph.has_node(1)
        assert graph.has_node(2)
        assert graph.num_edges == 1

    def test_add_edge_is_symmetric(self):
        graph = Graph()
        graph.add_edge("x", "y", weight=2.5)
        assert graph.has_edge("x", "y")
        assert graph.has_edge("y", "x")
        assert graph.edge_weight("y", "x") == 2.5

    def test_add_edge_overwrites_weight_by_default(self):
        graph = Graph()
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(1, 2, weight=5.0)
        assert graph.edge_weight(1, 2) == 5.0
        assert graph.num_edges == 1

    def test_add_edge_accumulate(self):
        graph = Graph()
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(1, 2, weight=1.0, accumulate=True)
        assert graph.edge_weight(1, 2) == 2.0

    def test_add_edges_from_mixed_tuples(self):
        graph = Graph()
        graph.add_edges_from([(1, 2), (2, 3, 4.0)])
        assert graph.num_edges == 2
        assert graph.edge_weight(2, 3) == 4.0

    def test_add_edges_from_rejects_bad_tuple(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edges_from([(1, 2, 3, 4)])

    def test_self_loop_allowed(self):
        graph = Graph()
        graph.add_edge(1, 1)
        assert graph.has_edge(1, 1)
        assert graph.degree(1) == 1


class TestGraphRemoval:
    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 0
        assert graph.has_node(1) and graph.has_node(2)

    def test_remove_missing_edge_raises(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.remove_node(1)
        assert not graph.has_node(1)
        assert graph.num_edges == 0
        assert graph.degree(2) == 0

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(99)


class TestGraphQueries:
    def test_neighbors_and_degree(self, triangle_graph):
        assert set(triangle_graph.neighbors("a")) == {"b", "c"}
        assert triangle_graph.degree("a") == 2

    def test_weighted_degree(self, triangle_graph):
        assert triangle_graph.weighted_degree("a") == pytest.approx(4.0)

    def test_missing_node_lookups_raise(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            list(graph.neighbors("missing"))
        with pytest.raises(NodeNotFoundError):
            graph.degree("missing")
        with pytest.raises(NodeNotFoundError):
            graph.node_attrs("missing")

    def test_edge_weight_missing_raises(self, triangle_graph):
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.edge_weight("a", "zzz")

    def test_edges_iterates_each_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 3

    def test_total_edge_weight_and_density(self, triangle_graph):
        assert triangle_graph.total_edge_weight() == pytest.approx(6.0)
        assert triangle_graph.density() == pytest.approx(1.0)

    def test_density_of_trivial_graphs(self):
        assert Graph().density() == 0.0
        single = Graph()
        single.add_node(1)
        assert single.density() == 0.0

    def test_dunder_protocols(self, triangle_graph):
        assert "a" in triangle_graph
        assert len(triangle_graph) == 3
        assert set(iter(triangle_graph)) == {"a", "b", "c"}
        assert "3 nodes" in repr(triangle_graph)


class TestSubgraphAndCopy:
    def test_subgraph_induces_edges(self, caveman_graph):
        members = list(range(10))  # the first clique
        sub = caveman_graph.subgraph(members)
        assert sub.num_nodes == 10
        assert sub.num_edges >= 45  # the clique, possibly plus the ring edge endpoints inside

    def test_subgraph_ignores_unknown_nodes(self, triangle_graph):
        sub = triangle_graph.subgraph(["a", "b", "not-there"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")

    def test_subgraph_preserves_attributes(self):
        graph = Graph()
        graph.add_node(1, name="Ada")
        graph.add_edge(1, 2, weight=3.0)
        graph.edge_attrs(1, 2)["year"] = 1843
        sub = graph.subgraph([1, 2])
        assert sub.get_node_attr(1, "name") == "Ada"
        assert sub.edge_attrs(1, 2)["year"] == 1843

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.add_edge("a", "z")
        assert not triangle_graph.has_node("z")
        assert clone.num_edges == triangle_graph.num_edges + 1

    def test_relabeled_round_trip(self, triangle_graph):
        relabeled, mapping, inverse = triangle_graph.relabeled()
        assert set(relabeled.nodes()) == {0, 1, 2}
        assert relabeled.num_edges == triangle_graph.num_edges
        for original, new in mapping.items():
            assert inverse[new] == original

    def test_adjacency_dict_is_a_copy(self, triangle_graph):
        adjacency = triangle_graph.adjacency_dict()
        adjacency["a"]["b"] = 999.0
        assert triangle_graph.edge_weight("a", "b") == 1.0


class TestGraphHelpers:
    def test_graph_from_adjacency(self):
        graph = graph_from_adjacency({1: {2: 3.0}, 2: {1: 3.0}, 3: {}})
        assert graph.num_nodes == 3
        assert graph.num_edges == 1
        assert graph.edge_weight(1, 2) == 3.0

    def test_union_accumulates_shared_edges(self):
        a = Graph()
        a.add_edge(1, 2, weight=1.0)
        b = Graph()
        b.add_edge(1, 2, weight=2.0)
        b.add_edge(2, 3, weight=1.0)
        merged = union([a, b])
        assert merged.num_edges == 2
        assert merged.edge_weight(1, 2) == pytest.approx(3.0)


class TestDiGraph:
    def test_add_edge_direction(self):
        digraph = DiGraph()
        digraph.add_edge("a", "b")
        assert digraph.has_edge("a", "b")
        assert not digraph.has_edge("b", "a")
        assert digraph.out_degree("a") == 1
        assert digraph.in_degree("b") == 1

    def test_successors_and_predecessors(self):
        digraph = DiGraph()
        digraph.add_edge(1, 2)
        digraph.add_edge(3, 2)
        assert set(digraph.successors(1)) == {2}
        assert set(digraph.predecessors(2)) == {1, 3}

    def test_missing_node_raises(self):
        digraph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            list(digraph.successors("missing"))

    def test_from_undirected_doubles_edges(self, triangle_graph):
        digraph = DiGraph.from_undirected(triangle_graph)
        assert digraph.num_edges == 2 * triangle_graph.num_edges
        assert digraph.has_edge("a", "b") and digraph.has_edge("b", "a")

    def test_to_undirected_round_trip(self, triangle_graph):
        digraph = DiGraph.from_undirected(triangle_graph)
        back = digraph.to_undirected()
        assert back.num_nodes == triangle_graph.num_nodes
        assert back.num_edges == triangle_graph.num_edges

    def test_len_iter_contains_repr(self):
        digraph = DiGraph(name="d")
        digraph.add_edge(1, 2)
        assert len(digraph) == 2
        assert 1 in digraph
        assert set(iter(digraph)) == {1, 2}
        assert "DiGraph" in repr(digraph)

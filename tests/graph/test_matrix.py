"""Unit tests for graph-to-matrix bridges."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.graph.matrix import (
    VertexIndex,
    adjacency_matrix,
    combinatorial_laplacian,
    degree_vector,
    normalized_laplacian,
    restart_vector,
    transition_matrix,
)


class TestVertexIndex:
    def test_round_trip(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        for node in triangle_graph.nodes():
            assert index.node_at(index.index_of(node)) == node

    def test_duplicate_ids_rejected(self):
        with pytest.raises(GraphError):
            VertexIndex([1, 1, 2])

    def test_unknown_node_rejected(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        with pytest.raises(GraphError):
            index.index_of("zzz")

    def test_bulk_conversions(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        nodes = index.nodes()
        assert index.to_nodes(index.to_indices(nodes)) == nodes
        assert len(index) == 3
        assert nodes[0] in index


class TestAdjacencyMatrix:
    def test_symmetry_and_weights(self, triangle_graph):
        matrix, index = adjacency_matrix(triangle_graph)
        dense = matrix.toarray()
        assert np.allclose(dense, dense.T)
        i, j = index.index_of("a"), index.index_of("c")
        assert dense[i, j] == pytest.approx(3.0)

    def test_degree_vector_matches_graph(self, random_graph):
        matrix, index = adjacency_matrix(random_graph)
        degrees = degree_vector(matrix)
        for node in random_graph.nodes():
            assert degrees[index.index_of(node)] == pytest.approx(
                random_graph.weighted_degree(node)
            )

    def test_isolated_vertices_have_zero_rows(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        matrix, index = adjacency_matrix(graph)
        assert matrix.toarray()[index.index_of(3)].sum() == 0.0


class TestTransitionMatrix:
    def test_columns_are_stochastic(self, random_graph):
        transition, index = transition_matrix(random_graph)
        sums = np.asarray(transition.sum(axis=0)).ravel()
        for node in random_graph.nodes():
            column = index.index_of(node)
            if random_graph.degree(node) > 0:
                assert sums[column] == pytest.approx(1.0)
            else:
                assert sums[column] == pytest.approx(0.0)

    def test_path_graph_values(self):
        graph = path_graph(3)
        transition, index = transition_matrix(graph)
        middle = index.index_of(1)
        end = index.index_of(0)
        # From the end vertex, probability 1 of moving to the middle.
        assert transition[middle, end] == pytest.approx(1.0)


class TestLaplacians:
    def test_combinatorial_rows_sum_to_zero(self, random_graph):
        laplacian, _ = combinatorial_laplacian(random_graph)
        assert np.allclose(np.asarray(laplacian.sum(axis=1)).ravel(), 0.0, atol=1e-9)

    def test_normalized_diagonal_is_one_for_connected_vertices(self, random_graph):
        laplacian, index = normalized_laplacian(random_graph)
        dense = laplacian.toarray()
        for node in random_graph.nodes():
            i = index.index_of(node)
            if random_graph.degree(node) > 0:
                assert dense[i, i] == pytest.approx(1.0)

    def test_laplacian_positive_semidefinite(self):
        graph = erdos_renyi(30, 0.2, seed=9)
        laplacian, _ = combinatorial_laplacian(graph)
        eigenvalues = np.linalg.eigvalsh(laplacian.toarray())
        assert eigenvalues.min() > -1e-8


class TestRestartVector:
    def test_uniform_over_sources(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        vector = restart_vector(index, ["a", "b"])
        assert vector.sum() == pytest.approx(1.0)
        assert vector[index.index_of("a")] == pytest.approx(0.5)
        assert vector[index.index_of("c")] == 0.0

    def test_requires_sources(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        with pytest.raises(GraphError):
            restart_vector(index, [])

    def test_vectorized_build_matches_scalar_loop_bitwise(self):
        # the np.add.at build must reproduce the historical per-source
        # loop exactly, duplicates included (unbuffered accumulation)
        graph = erdos_renyi(40, 0.2, seed=17)
        index = VertexIndex.from_graph(graph)
        nodes = sorted(graph.nodes(), key=repr)
        sources = nodes[:5] + nodes[:3]  # duplicates weight their entries
        reference = np.zeros(len(index))
        for node in sources:
            reference[index.index_of(node)] += 1.0
        reference /= reference.sum()
        vector = restart_vector(index, sources)
        assert vector.dtype == reference.dtype
        assert np.array_equal(vector, reference)  # bitwise, no tolerance

    def test_unknown_source_rejected(self, triangle_graph):
        index = VertexIndex.from_graph(triangle_graph)
        with pytest.raises(GraphError):
            restart_vector(index, ["a", "zz"])

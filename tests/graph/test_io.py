"""Unit tests for graph IO (edge list, JSON, adjacency text)."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    write_adjacency_text,
    write_edge_list,
    write_json,
)
from repro.graph.validation import graphs_equal


@pytest.fixture
def attributed_graph() -> Graph:
    graph = Graph(name="attributed")
    graph.add_node(1, name="Ada Lovelace")
    graph.add_node(2, name="Charles Babbage")
    graph.add_node(3)
    graph.add_edge(1, 2, weight=4.0)
    graph.edge_attrs(1, 2)["first_year"] = 1840
    return graph


class TestEdgeList:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = erdos_renyi(60, 0.08, seed=4)
        path = tmp_path / "graph.edges"
        write_edge_list(original, path)
        loaded = read_edge_list(path)
        assert graphs_equal(original, loaded)

    def test_round_trip_preserves_isolated_nodes(self, tmp_path):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(99)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.has_node(99)
        assert loaded.num_nodes == 3

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.edges"
        path.write_text("# comment\n\n% another\n1 2 1.5\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.edge_weight(1, 2) == 1.5
        assert graph.edge_weight(2, 3) == 1.0

    def test_string_ids_preserved(self, tmp_path):
        path = tmp_path / "graph.edges"
        path.write_text("alice bob 2\n")
        graph = read_edge_list(path)
        assert graph.has_edge("alice", "bob")

    def test_duplicate_edges_accumulate(self, tmp_path):
        path = tmp_path / "graph.edges"
        path.write_text("1 2 1\n1 2 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1
        assert graph.edge_weight(1, 2) == 2.0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("justonetoken\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 notanumber\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestJson:
    def test_round_trip_with_attributes(self, tmp_path, attributed_graph):
        path = tmp_path / "graph.json"
        write_json(attributed_graph, path)
        loaded = read_json(path)
        assert graphs_equal(attributed_graph, loaded)
        assert loaded.get_node_attr(1, "name") == "Ada Lovelace"
        assert loaded.edge_attrs(1, 2)["first_year"] == 1840

    def test_dict_round_trip(self, attributed_graph):
        document = graph_to_dict(attributed_graph)
        rebuilt = graph_from_dict(document)
        assert graphs_equal(attributed_graph, rebuilt)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_wrong_format_marker_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict({"format": "something-else"})

    def test_missing_node_id_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict({"format": "gmine-graph", "nodes": [{"attrs": {}}], "edges": []})

    def test_missing_edge_endpoint_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict(
                {"format": "gmine-graph", "nodes": [{"id": 1}], "edges": [{"source": 1}]}
            )


class TestAdjacencyText:
    def test_output_is_readable(self, tmp_path, attributed_graph):
        path = tmp_path / "adjacency.txt"
        write_adjacency_text(attributed_graph, path)
        content = path.read_text()
        assert "1:" in content
        assert "# attributed" in content

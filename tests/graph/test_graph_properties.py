"""Property-based tests (hypothesis) for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.validation import graphs_equal, validate_graph

# Strategy: a list of undirected edges over a small integer vertex set,
# with positive weights.
edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    max_size=120,
)


def build_graph(edges) -> Graph:
    graph = Graph(name="property")
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w, accumulate=graph.has_edge(u, v))
    return graph


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_constructed_graphs_always_validate(edges):
    graph = build_graph(edges)
    assert validate_graph(graph) == []


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(edges):
    graph = build_graph(edges)
    degree_sum = sum(graph.degree(node) for node in graph.nodes())
    self_loops = sum(1 for u, v, _ in graph.edges() if u == v)
    assert degree_sum == 2 * graph.num_edges - self_loops


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_json_round_trip_preserves_graph(edges):
    graph = build_graph(edges)
    rebuilt = graph_from_dict(graph_to_dict(graph))
    assert graphs_equal(graph, rebuilt)


@given(edge_lists, st.sets(st.integers(min_value=0, max_value=30), max_size=15))
@settings(max_examples=60, deadline=None)
def test_subgraph_is_induced(edges, keep):
    graph = build_graph(edges)
    sub = graph.subgraph(keep)
    # Every subgraph vertex/edge exists in the parent with the same weight,
    # and every parent edge between kept vertices appears in the subgraph.
    for node in sub.nodes():
        assert graph.has_node(node)
    for u, v, w in sub.edges():
        assert graph.edge_weight(u, v) == w
    kept = set(sub.nodes())
    for u, v, w in graph.edges():
        if u in kept and v in kept:
            assert sub.has_edge(u, v)


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_relabeled_preserves_structure(edges):
    graph = build_graph(edges)
    relabeled, mapping, inverse = graph.relabeled()
    assert relabeled.num_nodes == graph.num_nodes
    assert relabeled.num_edges == graph.num_edges
    for u, v, w in graph.edges():
        assert relabeled.edge_weight(mapping[u], mapping[v]) == w


@given(st.integers(min_value=2, max_value=60), st.floats(min_value=0.0, max_value=0.3),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_erdos_renyi_is_simple_and_valid(n, p, seed):
    graph = erdos_renyi(n, p, seed=seed)
    assert graph.num_nodes == n
    assert validate_graph(graph) == []
    # No self loops are ever generated.
    assert all(u != v for u, v, _ in graph.edges())

"""Unit tests for graph traversal primitives."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.generators import cycle_graph, grid_2d, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    bfs_tree,
    dfs_order,
    dijkstra,
    eccentricity,
    shortest_path_hops,
    shortest_weighted_path,
)


class TestBFS:
    def test_order_starts_at_source(self, grid_graph):
        order = list(bfs_order(grid_graph, 0))
        assert order[0] == 0
        assert len(order) == grid_graph.num_nodes

    def test_distances_on_path(self):
        graph = path_graph(5)
        distances = bfs_distances(graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_max_depth(self):
        graph = path_graph(10)
        distances = bfs_distances(graph, 0, max_depth=3)
        assert max(distances.values()) == 3
        assert len(distances) == 4

    def test_distances_on_grid_are_manhattan(self):
        graph = grid_2d(5, 5)
        distances = bfs_distances(graph, 0)
        # Vertex at row 4, col 4 has id 24 and Manhattan distance 8.
        assert distances[24] == 8

    def test_unreachable_vertices_absent(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        distances = bfs_distances(graph, 1)
        assert 3 not in distances

    def test_bfs_tree_parents(self):
        graph = path_graph(4)
        parents = bfs_tree(graph, 0)
        assert parents[0] is None
        assert parents[3] == 2

    def test_missing_source_raises(self, grid_graph):
        with pytest.raises(NodeNotFoundError):
            list(bfs_order(grid_graph, 10_000))
        with pytest.raises(NodeNotFoundError):
            bfs_distances(grid_graph, 10_000)


class TestDFS:
    def test_visits_every_reachable_vertex(self, caveman_graph):
        order = list(dfs_order(caveman_graph, 0))
        assert len(order) == caveman_graph.num_nodes
        assert len(set(order)) == caveman_graph.num_nodes

    def test_star_dfs_starts_at_hub(self):
        graph = star_graph(5)
        order = list(dfs_order(graph, 0))
        assert order[0] == 0


class TestShortestPaths:
    def test_hops_path_endpoints(self, grid_graph):
        path = shortest_path_hops(grid_graph, 0, 63)
        assert path[0] == 0 and path[-1] == 63
        assert len(path) - 1 == 14  # Manhattan distance on an 8x8 grid

    def test_hops_path_same_vertex(self, grid_graph):
        assert shortest_path_hops(grid_graph, 5, 5) == [5]

    def test_hops_unreachable_returns_none(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        assert shortest_path_hops(graph, 1, 3) is None

    def test_hops_missing_target_raises(self, grid_graph):
        with pytest.raises(NodeNotFoundError):
            shortest_path_hops(grid_graph, 0, 10_000)

    def test_dijkstra_prefers_light_edges(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=10.0)
        graph.add_edge("a", "c", weight=1.0)
        graph.add_edge("c", "b", weight=1.0)
        distance, parent = dijkstra(graph, "a")
        assert distance["b"] == pytest.approx(2.0)
        assert parent["b"] == "c"

    def test_weighted_path_reconstruction(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=10.0)
        graph.add_edge("a", "c", weight=1.0)
        graph.add_edge("c", "b", weight=1.0)
        assert shortest_weighted_path(graph, "a", "b") == ["a", "c", "b"]

    def test_weighted_path_custom_cost(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=10.0)
        graph.add_edge("a", "c", weight=1.0)
        graph.add_edge("c", "b", weight=1.0)
        # Inverting the meaning of weight (higher = cheaper) flips the choice.
        path = shortest_weighted_path(graph, "a", "b", weight_fn=lambda u, v, w: 1.0 / w)
        assert path == ["a", "b"]

    def test_weighted_path_unreachable(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        assert shortest_weighted_path(graph, 1, 3) is None

    def test_dijkstra_handles_mixed_id_types(self):
        graph = Graph()
        graph.add_edge("a", 1, weight=1.0)
        graph.add_edge(1, "b", weight=1.0)
        distance, _ = dijkstra(graph, "a")
        assert distance["b"] == pytest.approx(2.0)


class TestEccentricity:
    def test_cycle_eccentricity(self):
        graph = cycle_graph(10)
        assert eccentricity(graph, 0) == 5

    def test_isolated_vertex(self):
        graph = Graph()
        graph.add_node(1)
        assert eccentricity(graph, 1) == 0

"""Shared-memory prepared graphs: publish, attach, parity, lifecycle.

The contract under test: ``publish`` moves a prepared graph's numeric
buffers into one shared segment without changing a single bit of them;
``attach`` maps the same bytes zero-copy; pickling round-trips through
the manifest alone; and the owner's ``release`` provably unlinks the
segment — no ``/dev/shm`` residue, ever.
"""

import glob
import os
import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    SharedGraphManifest,
    SharedPreparedGraph,
    shared_memory_available,
    shm_stats,
)
from repro.graph.generators import barabasi_albert, connected_caveman
from repro.graph.matrix import PreparedGraph, PreparedViewCache
from repro.graph.shm import manifest_of
from repro.mining.rwr import rwr_power_iteration

pytestmark = [
    pytest.mark.tier1,
    pytest.mark.skipif(
        not shared_memory_available(), reason="platform lacks shared memory"
    ),
]


def _dev_shm_segments():
    """Names of POSIX shared segments currently visible (Linux only)."""
    if not os.path.isdir("/dev/shm"):
        return None
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def prepared():
    graph = barabasi_albert(60, 3, seed=11)
    view = PreparedGraph.from_graph(graph, fingerprint="f" * 16)
    view.degrees, view.transition  # materialise before publishing
    return graph, view


class TestPublishAttachParity:
    def test_publish_preserves_every_bit(self, prepared):
        graph, plain = prepared
        shared = SharedPreparedGraph.publish(plain)
        try:
            assert shared.owner and not shared.released
            assert shared.fingerprint == plain.fingerprint
            assert shared.index.nodes() == plain.index.nodes()
            for name in ("data", "indices", "indptr"):
                assert np.array_equal(
                    getattr(shared.adjacency, name),
                    getattr(plain.adjacency, name),
                )
                assert np.array_equal(
                    getattr(shared.transition, name),
                    getattr(plain.transition, name),
                )
            assert np.array_equal(shared.degrees, plain.degrees)
        finally:
            shared.release()

    def test_attach_maps_identical_bytes(self, prepared):
        _, plain = prepared
        shared = SharedPreparedGraph.publish(plain)
        try:
            attached = SharedPreparedGraph.attach(shared.manifest)
            try:
                assert not attached.owner
                assert attached.index.nodes() == plain.index.nodes()
                assert np.array_equal(attached.adjacency.data, plain.adjacency.data)
                assert np.array_equal(attached.degrees, plain.degrees)
                assert np.array_equal(
                    attached.transition.data, plain.transition.data
                )
            finally:
                attached.release()
        finally:
            shared.release()

    def test_kernels_run_bitwise_identically_over_shared_views(self, prepared):
        graph, plain = prepared
        sources = sorted(graph.nodes(), key=repr)[:2]
        baseline = rwr_power_iteration(graph, sources, prepared=plain)
        shared = SharedPreparedGraph.publish(plain)
        try:
            attached = SharedPreparedGraph.attach(shared.manifest)
            try:
                for view in (shared, attached):
                    result = rwr_power_iteration(graph, sources, prepared=view)
                    assert result.scores == baseline.scores
                    assert result.iterations == baseline.iterations
            finally:
                attached.release()
        finally:
            shared.release()

    def test_shared_views_are_read_only(self, prepared):
        _, plain = prepared
        shared = SharedPreparedGraph.publish(plain)
        try:
            with pytest.raises(ValueError):
                shared.adjacency.data[0] = 123.0
            with pytest.raises(ValueError):
                shared.degrees[0] = 123.0
        finally:
            shared.release()


class TestManifestPickling:
    def test_pickle_ships_the_manifest_not_the_buffers(self, prepared):
        _, plain = prepared
        shared = SharedPreparedGraph.publish(plain)
        try:
            blob = pickle.dumps(shared)
            # a few hundred bytes of manifest vs tens of KB of matrices
            assert len(blob) < 2_000 < shared.segment_bytes
            clone = pickle.loads(blob)
            try:
                assert isinstance(clone, SharedPreparedGraph)
                assert not clone.owner
                assert np.array_equal(clone.adjacency.data, plain.adjacency.data)
            finally:
                clone.release()
        finally:
            shared.release()

    def test_manifest_round_trips_and_names_arrays(self, prepared):
        _, plain = prepared
        shared = SharedPreparedGraph.publish(plain)
        try:
            manifest = pickle.loads(pickle.dumps(shared.manifest))
            assert manifest == shared.manifest
            assert isinstance(manifest, SharedGraphManifest)
            assert manifest.spec("adj_data").key == "adj_data"
            with pytest.raises(GraphError):
                manifest.spec("no-such-array")
        finally:
            shared.release()

    def test_manifest_of_reports_live_shared_views_only(self, prepared):
        _, plain = prepared
        assert manifest_of(plain) is None
        shared = SharedPreparedGraph.publish(plain)
        assert manifest_of(shared) == shared.manifest
        shared.release()
        assert manifest_of(shared) is None


class TestLifecycle:
    def test_release_unlinks_and_is_idempotent(self, prepared):
        _, plain = prepared
        before = shm_stats()
        segments_before = _dev_shm_segments()
        shared = SharedPreparedGraph.publish(plain)
        manifest = shared.manifest
        assert shm_stats()["segment_bytes"] - before["segment_bytes"] > 0
        shared.release()
        shared.release()  # second call is a no-op
        assert shared.released
        after = shm_stats()
        assert after["prepares"] == before["prepares"] + 1
        assert after["unlinks"] == before["unlinks"] + 1
        assert after["segment_bytes"] == before["segment_bytes"]
        if segments_before is not None:
            assert _dev_shm_segments() == segments_before  # no /dev/shm residue
        with pytest.raises(GraphError):
            SharedPreparedGraph.attach(manifest)

    def test_unlink_does_not_tear_live_attachments(self, prepared):
        graph, plain = prepared
        sources = sorted(graph.nodes(), key=repr)[:2]
        shared = SharedPreparedGraph.publish(plain)
        attached = SharedPreparedGraph.attach(shared.manifest)
        baseline = rwr_power_iteration(graph, sources, prepared=plain)
        shared.release()  # owner unlinks while the attachment is live
        try:
            # POSIX keeps the memory mapped until the last close
            result = rwr_power_iteration(graph, sources, prepared=attached)
            assert result.scores == baseline.scores
        finally:
            attached.release()

    def test_finalizer_unlinks_dropped_owners(self, prepared):
        _, plain = prepared
        before = shm_stats()["unlinks"]
        shared = SharedPreparedGraph.publish(plain)
        finalizer = shared._finalizer
        del shared
        finalizer()  # what gc would run; deterministic here
        assert shm_stats()["unlinks"] == before + 1


class TestPreparedViewCacheRelease:
    def test_eviction_releases_shared_views(self, prepared):
        _, plain = prepared
        cache = PreparedViewCache(capacity=1)
        shared = SharedPreparedGraph.publish(plain)
        cache.get("fp-one", lambda: shared)
        cache.get("fp-two", lambda: PreparedGraph.from_graph(
            connected_caveman(3, 4, seed=2)
        ))
        assert shared.released  # evicted -> released
        assert cache.describe()["evictions"] == 1

    def test_invalidate_and_clear_release(self, prepared):
        _, plain = prepared
        cache = PreparedViewCache(capacity=4)
        first = SharedPreparedGraph.publish(plain)
        second = SharedPreparedGraph.publish(plain)
        cache.get("fp-one", lambda: first)
        cache.get("fp-two", lambda: second)
        assert cache.invalidate("fp-one") and first.released
        assert cache.clear() == 1 and second.released
        assert len(cache) == 0

"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    connected_caveman,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from repro.graph.validation import assert_valid_graph
from repro.mining.components import number_weak_components


class TestErdosRenyi:
    def test_node_count(self):
        graph = erdos_renyi(50, 0.1, seed=1)
        assert graph.num_nodes == 50

    def test_p_zero_has_no_edges(self):
        graph = erdos_renyi(30, 0.0, seed=1)
        assert graph.num_edges == 0

    def test_p_one_is_complete(self):
        graph = erdos_renyi(10, 1.0, seed=1)
        assert graph.num_edges == 45

    def test_deterministic_given_seed(self):
        a = erdos_renyi(60, 0.08, seed=42)
        b = erdos_renyi(60, 0.08, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi(60, 0.08, seed=1)
        b = erdos_renyi(60, 0.08, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_edge_count_roughly_matches_expectation(self):
        n, p = 200, 0.05
        graph = erdos_renyi(n, p, seed=7)
        expected = p * n * (n - 1) / 2
        assert 0.6 * expected < graph.num_edges < 1.4 * expected

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_structure_is_valid(self):
        assert_valid_graph(erdos_renyi(80, 0.1, seed=3))


class TestBarabasiAlbert:
    def test_node_and_minimum_degree(self):
        graph = barabasi_albert(100, 3, seed=1)
        assert graph.num_nodes == 100
        assert min(graph.degree(node) for node in graph.nodes()) >= 1

    def test_edge_count_formula(self):
        # Star seed contributes m edges, then each of (n - m - 1) nodes adds m.
        n, m = 80, 2
        graph = barabasi_albert(n, m, seed=5)
        assert graph.num_edges == m + (n - m - 1) * m

    def test_connected(self):
        graph = barabasi_albert(100, 2, seed=2)
        assert number_weak_components(graph) == 1

    def test_has_hub(self):
        graph = barabasi_albert(300, 2, seed=3)
        degrees = sorted((graph.degree(node) for node in graph.nodes()), reverse=True)
        assert degrees[0] > 4 * (2 * graph.num_edges / graph.num_nodes)

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)


class TestStochasticBlockModel:
    def test_membership_matches_sizes(self):
        graph, membership = stochastic_block_model([10, 20, 30], 0.5, 0.01, seed=1)
        assert graph.num_nodes == 60
        assert membership.count(0) == 10
        assert membership.count(2) == 30

    def test_intra_denser_than_inter(self):
        graph, membership = stochastic_block_model([40, 40], 0.3, 0.01, seed=2)
        intra = inter = 0
        for u, v, _ in graph.edges():
            if membership[u] == membership[v]:
                intra += 1
            else:
                inter += 1
        assert intra > 3 * inter

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            stochastic_block_model([5, 5], 1.5, 0.1)
        with pytest.raises(GraphError):
            stochastic_block_model([], 0.5, 0.1)


class TestDeterministicFamilies:
    def test_caveman_structure(self):
        graph = connected_caveman(4, 5, seed=0)
        assert graph.num_nodes == 20
        # 4 cliques of C(5,2)=10 edges plus 4 ring edges.
        assert graph.num_edges == 44
        assert number_weak_components(graph) == 1

    def test_caveman_invalid(self):
        with pytest.raises(GraphError):
            connected_caveman(0, 5)
        with pytest.raises(GraphError):
            connected_caveman(3, 1)

    def test_grid_counts(self):
        graph = grid_2d(4, 6)
        assert graph.num_nodes == 24
        assert graph.num_edges == 4 * 5 + 6 * 3

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_2d(0, 3)

    def test_path_and_cycle(self):
        path = path_graph(5)
        assert path.num_edges == 4
        cycle = cycle_graph(5)
        assert cycle.num_edges == 5
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_and_complete(self):
        star = star_graph(7)
        assert star.degree(0) == 7
        assert star.num_edges == 7
        complete = complete_graph(6)
        assert complete.num_edges == 15

    def test_watts_strogatz_degree_preserved_roughly(self):
        graph = watts_strogatz(40, 4, 0.1, seed=1)
        assert graph.num_nodes == 40
        mean_degree = 2 * graph.num_edges / graph.num_nodes
        assert mean_degree == pytest.approx(4.0, abs=0.5)

    def test_watts_strogatz_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(4, 4, 0.1)

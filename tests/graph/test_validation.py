"""Unit tests for graph validation helpers."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import DiGraph, Graph
from repro.graph.validation import (
    assert_valid_graph,
    graphs_equal,
    validate_digraph,
    validate_graph,
)


class TestValidateGraph:
    def test_valid_graph_reports_nothing(self, caveman_graph):
        assert validate_graph(caveman_graph) == []

    def test_negative_weight_detected(self):
        graph = Graph()
        graph.add_edge(1, 2, weight=-1.0)
        problems = validate_graph(graph)
        assert any("negative" in problem for problem in problems)

    def test_non_finite_weight_detected(self):
        graph = Graph()
        graph.add_edge(1, 2, weight=float("nan"))
        assert any("non-finite" in problem for problem in validate_graph(graph))

    def test_self_loop_flagged_when_disallowed(self):
        graph = Graph()
        graph.add_edge(1, 1)
        assert validate_graph(graph, allow_self_loops=True) == []
        assert any("self loop" in p for p in validate_graph(graph, allow_self_loops=False))

    def test_asymmetry_detected_via_internal_tampering(self):
        graph = Graph()
        graph.add_edge(1, 2)
        # Simulate corruption by reaching into the private adjacency.
        del graph._adj[2][1]
        problems = validate_graph(graph)
        assert any("asymmetric" in problem for problem in problems)

    def test_edge_count_mismatch_detected(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph._num_edges = 5
        assert any("edge count mismatch" in p for p in validate_graph(graph))

    def test_assert_valid_raises_with_details(self):
        graph = Graph()
        graph.add_edge(1, 2, weight=-3.0)
        with pytest.raises(GraphError, match="negative"):
            assert_valid_graph(graph)


class TestValidateDigraph:
    def test_valid_digraph(self):
        digraph = DiGraph()
        digraph.add_edge(1, 2)
        digraph.add_edge(2, 3)
        assert validate_digraph(digraph) == []

    def test_desynchronised_predecessors_detected(self):
        digraph = DiGraph()
        digraph.add_edge(1, 2)
        del digraph._pred[2][1]
        assert validate_digraph(digraph)


class TestGraphsEqual:
    def test_equal_graphs(self, triangle_graph):
        assert graphs_equal(triangle_graph, triangle_graph.copy())

    def test_different_nodes(self, triangle_graph):
        other = triangle_graph.copy()
        other.add_node("extra")
        assert not graphs_equal(triangle_graph, other)

    def test_different_edge_sets(self, triangle_graph):
        other = triangle_graph.copy()
        other.remove_edge("a", "b")
        other.add_edge("a", "a")
        assert not graphs_equal(triangle_graph, other)

    def test_weight_sensitivity_toggle(self, triangle_graph):
        other = triangle_graph.copy()
        other.add_edge("a", "b", weight=99.0)
        assert not graphs_equal(triangle_graph, other)
        assert graphs_equal(triangle_graph, other, check_weights=False)

"""Unit tests for the single-file G-Tree store with lazy loading."""

import pytest

from repro.core.builder import GTreeBuildOptions, GTreeBuilder, build_gtree
from repro.errors import StorageError
from repro.graph.generators import erdos_renyi
from repro.graph.validation import graphs_equal
from repro.storage.gtree_store import GTreeStore, load_gtree_fully, save_gtree


@pytest.fixture(scope="module")
def stored_tree(tmp_path_factory, dblp_dataset, dblp_gtree):
    path = tmp_path_factory.mktemp("store") / "dblp.gtree"
    save_gtree(dblp_gtree, path)
    return path, dblp_gtree


class TestSaveLoadSkeleton:
    def test_skeleton_matches_original(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            loaded = store.tree
            assert loaded.num_tree_nodes == original.num_tree_nodes
            assert loaded.num_leaves == original.num_leaves
            assert loaded.depth() == original.depth()
            for node in original.nodes():
                counterpart = loaded.node(node.node_id)
                assert counterpart.label == node.label
                assert counterpart.level == node.level
                assert counterpart.parent_id == node.parent_id
                assert counterpart.children == node.children
                assert set(counterpart.members) == set(node.members)

    def test_connectivity_edges_preserved(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            for node in original.nodes():
                loaded_edges = store.tree.node(node.node_id).connectivity
                assert len(loaded_edges) == len(node.connectivity)
                for stored, orig in zip(loaded_edges, node.connectivity):
                    assert (stored.source, stored.target) == (orig.source, orig.target)
                    assert stored.edge_count == orig.edge_count
                    assert stored.total_weight == pytest.approx(orig.total_weight)

    def test_loaded_tree_validates(self, stored_tree):
        path, _ = stored_tree
        with GTreeStore(path) as store:
            assert store.tree.validate() == []

    def test_save_requires_leaf_subgraphs(self, tmp_path):
        graph = erdos_renyi(60, 0.1, seed=70)
        options = GTreeBuildOptions(fanout=2, levels=2, seed=1, attach_leaf_subgraphs=False)
        tree = GTreeBuilder(options).build(graph)
        with pytest.raises(StorageError):
            save_gtree(tree, tmp_path / "bad.gtree")


class TestLazyLoading:
    def test_leaf_subgraph_round_trip(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            for leaf in original.leaves()[:4]:
                loaded = store.load_leaf_subgraph(leaf.node_id)
                assert graphs_equal(loaded, leaf.subgraph)

    def test_node_attributes_survive_round_trip(self, stored_tree, dblp_dataset):
        path, original = stored_tree
        with GTreeStore(path) as store:
            leaf = original.leaves()[0]
            loaded = store.load_leaf_subgraph(leaf.node_id)
            member = leaf.members[0]
            assert loaded.get_node_attr(member, "name") == dblp_dataset.name_of(member)

    def test_only_requested_leaves_are_loaded(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path, cache_capacity=4) as store:
            store.load_leaf_subgraph(original.leaves()[0].node_id)
            assert store.stats.leaves_loaded == 1
            assert store.resident_leaf_count() == 1

    def test_cache_hit_avoids_second_read(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            leaf_id = original.leaves()[0].node_id
            store.load_leaf_subgraph(leaf_id)
            pages_after_first = store.stats.pager.pages_read
            store.load_leaf_subgraph(leaf_id)
            assert store.stats.pager.pages_read == pages_after_first
            assert store.stats.buffer_pool.hits == 1

    def test_cache_capacity_bounds_residency(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path, cache_capacity=2) as store:
            for leaf in original.leaves()[:5]:
                store.load_leaf_subgraph(leaf.node_id)
            assert store.resident_leaf_count() <= 2
            assert store.stats.leaves_loaded == 5

    def test_loading_internal_node_raises(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            with pytest.raises(StorageError):
                store.load_leaf_subgraph(original.root.node_id)

    def test_is_resident(self, stored_tree):
        path, original = stored_tree
        with GTreeStore(path) as store:
            leaf_id = original.leaves()[0].node_id
            assert not store.is_resident(leaf_id)
            store.load_leaf_subgraph(leaf_id)
            assert store.is_resident(leaf_id)


class TestEagerLoad:
    def test_load_gtree_fully_attaches_every_leaf(self, stored_tree):
        path, original = stored_tree
        tree = load_gtree_fully(path)
        assert all(leaf.subgraph is not None for leaf in tree.leaves())
        total = sum(leaf.subgraph.num_nodes for leaf in tree.leaves())
        assert total == original.num_graph_vertices()

"""Unit tests for the fixed-size page manager."""

import pytest

from repro.errors import CorruptStoreError, PageError
from repro.storage.pager import NO_NEXT_PAGE, Pager


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "pages.bin"


class TestPagerLifecycle:
    def test_create_and_reopen(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()  # page 0 (header convention)
            pager.allocate_page()  # page 1
            pager.write_page(1, b"hello", next_page=NO_NEXT_PAGE)
        with Pager(store_path, read_only=True) as pager:
            payload, next_page = pager.read_page(1)
            assert payload == b"hello"
            assert next_page == NO_NEXT_PAGE

    def test_open_missing_file_raises(self, store_path):
        with pytest.raises(PageError):
            Pager(store_path)

    def test_create_read_only_rejected(self, store_path):
        with pytest.raises(PageError):
            Pager(store_path, create=True, read_only=True)

    def test_too_small_page_size_rejected(self, store_path):
        with pytest.raises(PageError):
            Pager(store_path, page_size=8, create=True)

    def test_write_on_read_only_rejected(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.write_page(1, b"x")
        with Pager(store_path, read_only=True) as pager:
            with pytest.raises(PageError):
                pager.allocate_page()


class TestPageIO:
    def test_payload_too_large_rejected(self, store_path):
        with Pager(store_path, page_size=64, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            with pytest.raises(PageError):
                pager.write_page(1, b"x" * 64)

    def test_unallocated_page_write_rejected(self, store_path):
        with Pager(store_path, create=True) as pager:
            with pytest.raises(PageError):
                pager.write_page(5, b"x")

    def test_out_of_range_read_rejected(self, store_path):
        with Pager(store_path, create=True) as pager:
            with pytest.raises(PageError):
                pager.read_page(3)

    def test_stats_track_io(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.write_page(1, b"abc")
            pager.read_page(1)
            assert pager.stats.pages_written == 1
            assert pager.stats.pages_read == 1
            assert pager.stats.bytes_written == pager.page_size
            pager.stats.reset()
            assert pager.stats.pages_read == 0


class TestBlobs:
    def test_small_blob_round_trip(self, store_path):
        with Pager(store_path, create=True) as pager:
            first = pager.write_blob(b"small payload")
            assert pager.read_blob(first) == b"small payload"

    def test_multi_page_blob_round_trip(self, store_path):
        payload = bytes(range(256)) * 100  # ~25 KiB across several 4 KiB pages
        with Pager(store_path, create=True) as pager:
            first = pager.write_blob(payload)
            assert pager.read_blob(first) == payload
            assert pager.num_pages > len(payload) // pager.page_size

    def test_empty_blob(self, store_path):
        with Pager(store_path, create=True) as pager:
            first = pager.write_blob(b"")
            assert pager.read_blob(first) == b""

    def test_many_blobs_interleaved(self, store_path):
        blobs = [bytes([i]) * (i * 37) for i in range(1, 30)]
        with Pager(store_path, create=True) as pager:
            firsts = [pager.write_blob(blob) for blob in blobs]
            for first, blob in zip(firsts, blobs):
                assert pager.read_blob(first) == blob


class TestCorruptionDetection:
    def test_flipped_byte_detected(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.write_page(1, b"important data")
            page_size = pager.page_size
        # Corrupt one payload byte on disk.
        raw = bytearray(store_path.read_bytes())
        raw[page_size + 20] ^= 0xFF
        store_path.write_bytes(bytes(raw))
        with Pager(store_path, read_only=True) as pager:
            with pytest.raises(CorruptStoreError):
                pager.read_page(1)

    def test_truncated_file_detected(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.write_page(1, b"data")
        raw = store_path.read_bytes()
        store_path.write_bytes(raw[: len(raw) // 2])
        with Pager(store_path, read_only=True) as pager:
            with pytest.raises((CorruptStoreError, PageError)):
                pager.read_page(1)

    def test_header_page_id_mismatch_detected(self, store_path):
        with Pager(store_path, create=True) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.allocate_page()
            pager.write_page(1, b"one")
            pager.write_page(2, b"two")
            page_size = pager.page_size
        raw = bytearray(store_path.read_bytes())
        # Copy page 2's bytes over page 1 — the stored page id will not match.
        raw[page_size:2 * page_size] = raw[2 * page_size:3 * page_size]
        store_path.write_bytes(bytes(raw))
        with Pager(store_path, read_only=True) as pager:
            with pytest.raises(CorruptStoreError):
                pager.read_page(1)

"""Unit tests for the binary serializer."""

import pytest

from repro.errors import CorruptStoreError, StorageError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.validation import graphs_equal
from repro.storage.serializer import (
    decode_float,
    decode_graph,
    decode_node_id,
    decode_record,
    decode_signed,
    decode_string,
    decode_varint,
    encode_float,
    encode_graph,
    encode_node_id,
    encode_record,
    encode_signed,
    encode_string,
    encode_varint,
    frame,
    unframe,
)


class TestPrimitives:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_varint_round_trip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_varint_rejects_negative(self):
        with pytest.raises(StorageError):
            encode_varint(-1)

    def test_varint_truncated(self):
        with pytest.raises(CorruptStoreError):
            decode_varint(b"\x80", 0)  # continuation bit set, nothing follows

    @pytest.mark.parametrize("value", [0, 1, -1, 100, -100, 2**31, -(2**31)])
    def test_signed_round_trip(self, value):
        data = encode_signed(value)
        decoded, _ = decode_signed(data, 0)
        assert decoded == value

    @pytest.mark.parametrize("value", ["", "plain", "Jiawei Han", "ünïcødé ✓"])
    def test_string_round_trip(self, value):
        data = encode_string(value)
        decoded, offset = decode_string(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_string_truncated(self):
        data = encode_string("hello")[:-2]
        with pytest.raises(CorruptStoreError):
            decode_string(data, 0)

    @pytest.mark.parametrize("value", [0.0, 1.5, -2.25, 1e-12, 1e300])
    def test_float_round_trip(self, value):
        decoded, _ = decode_float(encode_float(value), 0)
        assert decoded == value

    @pytest.mark.parametrize("node", [0, -5, 123456, "author-x", ""])
    def test_node_id_round_trip(self, node):
        decoded, _ = decode_node_id(encode_node_id(node), 0)
        assert decoded == node

    def test_node_id_rejects_unsupported_types(self):
        with pytest.raises(StorageError):
            encode_node_id((1, 2))
        with pytest.raises(StorageError):
            encode_node_id(True)

    def test_node_id_unknown_tag(self):
        with pytest.raises(CorruptStoreError):
            decode_node_id(b"\x07abc", 0)


class TestRecords:
    def test_round_trip_mixed_fields(self):
        record = {"id": 7, "weight": 2.5, "label": "s034", "members": [1, 2, "x"]}
        decoded, _ = decode_record(encode_record(record))
        assert decoded == record

    def test_rejects_unsupported_value(self):
        with pytest.raises(StorageError):
            encode_record({"bad": {"nested": "dict"}})
        with pytest.raises(StorageError):
            encode_record({"flag": True})

    def test_unknown_field_kind(self):
        data = encode_varint(1) + encode_string("k") + b"?" + b"rest"
        with pytest.raises(CorruptStoreError):
            decode_record(data)


class TestGraphPayload:
    def test_round_trip_structure_and_attrs(self):
        graph = Graph(name="payload")
        graph.add_node(1, name="Ada", papers=12)
        graph.add_node(2, name="Bob")
        graph.add_edge(1, 2, weight=3.5)
        decoded = decode_graph(encode_graph(graph))
        assert graphs_equal(graph, decoded)
        assert decoded.get_node_attr(1, "name") == "Ada"
        assert decoded.get_node_attr(1, "papers") == 12.0

    def test_round_trip_random_graph(self):
        graph = erdos_renyi(120, 0.05, seed=61)
        decoded = decode_graph(encode_graph(graph))
        assert graphs_equal(graph, decoded)

    def test_trailing_bytes_detected(self):
        graph = Graph(name="x")
        graph.add_edge(1, 2)
        data = encode_graph(graph) + b"\x00garbage"
        with pytest.raises(CorruptStoreError):
            decode_graph(data)

    def test_wrong_version_detected(self):
        graph = Graph(name="x")
        payload = bytearray(encode_graph(graph))
        payload[0] = 99  # version byte
        with pytest.raises(CorruptStoreError):
            decode_graph(bytes(payload))


class TestFraming:
    def test_frame_round_trip(self):
        payload = b"hello world" * 10
        data = frame(payload)
        recovered, offset = unframe(data)
        assert recovered == payload
        assert offset == len(data)

    def test_checksum_mismatch_detected(self):
        data = bytearray(frame(b"hello world"))
        data[5] ^= 0xFF
        with pytest.raises(CorruptStoreError):
            unframe(bytes(data))

    def test_truncated_frame_detected(self):
        data = frame(b"hello world")[:-3]
        with pytest.raises(CorruptStoreError):
            unframe(data)

    def test_consecutive_frames(self):
        data = frame(b"first") + frame(b"second")
        first, offset = unframe(data)
        second, end = unframe(data, offset)
        assert first == b"first"
        assert second == b"second"
        assert end == len(data)

"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool


class TestBufferPoolBasics:
    def test_put_get(self):
        pool = BufferPool(capacity=2)
        pool.put("a", 1)
        assert pool.get("a") == 1
        assert "a" in pool
        assert len(pool) == 1

    def test_get_miss_without_loader_raises(self):
        pool = BufferPool(capacity=2)
        with pytest.raises(KeyError):
            pool.get("missing")

    def test_loader_called_once_then_cached(self):
        pool = BufferPool(capacity=2)
        calls = []

        def loader():
            calls.append(1)
            return "value"

        assert pool.get("k", loader) == "value"
        assert pool.get("k", loader) == "value"
        assert len(calls) == 1

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(capacity=0)


class TestEvictionPolicy:
    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        pool.put("a", 1)
        pool.put("b", 2)
        pool.get("a")          # refresh "a"; "b" becomes LRU
        pool.put("c", 3)
        assert "a" in pool
        assert "b" not in pool
        assert pool.stats.evictions == 1

    def test_put_refresh_does_not_evict(self):
        pool = BufferPool(capacity=2)
        pool.put("a", 1)
        pool.put("b", 2)
        pool.put("a", 10)
        assert len(pool) == 2
        assert pool.get("a") == 10

    def test_hit_and_miss_statistics(self):
        pool = BufferPool(capacity=4)
        pool.put("a", 1)
        pool.get("a")
        pool.get("b", lambda: 2)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        assert pool.stats.hit_rate == pytest.approx(0.5)
        assert pool.stats.accesses == 2

    def test_hit_rate_when_unused(self):
        assert BufferPool(capacity=1).stats.hit_rate == 0.0


class TestPinning:
    def test_pinned_entries_survive_eviction(self):
        pool = BufferPool(capacity=2)
        pool.put("focus", 1)
        pool.pin("focus")
        pool.put("b", 2)
        pool.put("c", 3)  # evicts "b", not the pinned "focus"
        assert "focus" in pool
        assert "b" not in pool

    def test_pin_missing_key_raises(self):
        pool = BufferPool(capacity=2)
        with pytest.raises(KeyError):
            pool.pin("nope")

    def test_unpin_allows_eviction_again(self):
        pool = BufferPool(capacity=1)
        pool.put("a", 1)
        pool.pin("a")
        pool.unpin("a")
        pool.put("b", 2)
        assert "a" not in pool

    def test_reference_counted_pins(self):
        pool = BufferPool(capacity=1)
        pool.put("a", 1)
        pool.pin("a")
        pool.pin("a")
        pool.unpin("a")
        assert pool.is_pinned("a")
        pool.unpin("a")
        assert not pool.is_pinned("a")

    def test_all_pinned_and_full_raises(self):
        pool = BufferPool(capacity=1)
        pool.put("a", 1)
        pool.pin("a")
        with pytest.raises(StorageError):
            pool.put("b", 2)

    def test_invalidate_and_clear(self):
        pool = BufferPool(capacity=3)
        pool.put("a", 1)
        pool.pin("a")
        pool.invalidate("a")
        assert "a" not in pool
        assert not pool.is_pinned("a")
        pool.put("b", 2)
        pool.clear()
        assert len(pool) == 0
        assert pool.resident_keys() == []

"""Failure-injection tests: corrupted and malformed store files."""

import pytest

from repro.core.builder import build_gtree
from repro.errors import CorruptStoreError, PageError, StorageError
from repro.graph.generators import erdos_renyi
from repro.storage.gtree_store import GTreeStore, save_gtree
from repro.storage.pager import DEFAULT_PAGE_SIZE


@pytest.fixture
def valid_store(tmp_path):
    graph = erdos_renyi(120, 0.06, seed=80)
    tree = build_gtree(graph, fanout=2, levels=3, seed=80)
    path = tmp_path / "valid.gtree"
    save_gtree(tree, path)
    return path, tree


class TestCorruptFiles:
    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "garbage.gtree"
        path.write_bytes(b"this is not a gmine store" * 300)
        with pytest.raises((CorruptStoreError, PageError, StorageError)):
            GTreeStore(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gtree"
        path.write_bytes(b"")
        with pytest.raises((CorruptStoreError, PageError)):
            GTreeStore(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PageError):
            GTreeStore(tmp_path / "does-not-exist.gtree")

    def test_corrupted_header_detected(self, valid_store):
        path, _ = valid_store
        raw = bytearray(path.read_bytes())
        raw[30] ^= 0xFF  # inside page 0's payload
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptStoreError):
            GTreeStore(path)

    def test_corrupted_leaf_page_detected_only_when_touched(self, valid_store):
        path, tree = valid_store
        raw = bytearray(path.read_bytes())
        # Corrupt a byte inside the payload area of page 1 (a leaf blob page:
        # leaves are written before the skeleton and the header).
        raw[DEFAULT_PAGE_SIZE + 100] ^= 0xFF
        path.write_bytes(bytes(raw))
        store = GTreeStore(path)  # skeleton loads fine
        corrupted = []
        for leaf in store.tree.leaves():
            try:
                store.load_leaf_subgraph(leaf.node_id)
            except CorruptStoreError:
                corrupted.append(leaf.node_id)
        assert corrupted, "at least one leaf must hit the corrupted page"
        store.close()

    def test_truncated_file_detected(self, valid_store):
        path, _ = valid_store
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises((CorruptStoreError, PageError)):
            store = GTreeStore(path)
            for leaf in store.tree.leaves():
                store.load_leaf_subgraph(leaf.node_id)

    def test_wrong_magic_detected(self, valid_store, tmp_path):
        path, tree = valid_store
        # Write a file whose header record has the wrong magic by saving and
        # then rewriting page 0 with an in-place byte swap of the magic text.
        raw = bytearray(path.read_bytes())
        index = raw.find(b"GMINE-GTREE")
        assert index != -1
        raw[index:index + 5] = b"WRONG"
        # Fix-up is not attempted: CRC now fails, which is also acceptable.
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptStoreError):
            GTreeStore(path)


class TestRecoveryBehaviour:
    def test_clean_reopen_after_failed_open(self, valid_store, tmp_path):
        path, tree = valid_store
        bogus = tmp_path / "bogus.gtree"
        bogus.write_bytes(b"\x00" * 8192)
        with pytest.raises((CorruptStoreError, PageError, StorageError)):
            GTreeStore(bogus)
        # The valid store must still open fine afterwards.
        with GTreeStore(path) as store:
            assert store.tree.num_tree_nodes == tree.num_tree_nodes

"""PART-QUALITY — the implicit METIS-quality requirement of Section III-A.

"the partitioning must minimize the number of edges of E whose incident
vertices belong to different subsets" with |Vi| = n/k.  METIS itself is not
available here, so the reproduction uses its own multilevel k-way
partitioner; this benchmark quantifies how far it is from the cheap
baselines (random assignment, BFS chunking) on edge cut and balance, and
checks it recovers planted community structure.
"""

import pytest

from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.generators import connected_caveman
from repro.partition.kway import KWayOptions, bfs_kway, kway_partition, random_kway
from repro.partition.metrics import balance, cut_ratio, edge_cut

from conftest import report

K = 5


def evaluate(graph, label, assignment, k):
    return {
        "graph": graph.name,
        "method": label,
        "edge_cut": edge_cut(graph, assignment),
        "cut_ratio": cut_ratio(graph, assignment),
        "balance": balance(assignment, k),
    }


@pytest.mark.benchmark(group="partition-quality")
def test_partition_quality_vs_baselines(benchmark, dblp):
    graph = dblp.graph
    caveman = connected_caveman(K, 60, seed=0)

    ours = benchmark(lambda: kway_partition(graph, K, KWayOptions(seed=3)))

    rows = [
        evaluate(graph, "multilevel (ours)", ours, K),
        evaluate(graph, "random", random_kway(graph, K, seed=3), K),
        evaluate(graph, "bfs-chunks", bfs_kway(graph, K), K),
    ]
    caveman_ours = kway_partition(caveman, K, KWayOptions(seed=3))
    rows += [
        evaluate(caveman, "multilevel (ours)", caveman_ours, K),
        evaluate(caveman, "random", random_kway(caveman, K, seed=3), K),
        evaluate(caveman, "bfs-chunks", bfs_kway(caveman, K), K),
    ]
    report("PART-QUALITY: edge cut and balance vs baselines (k=5)", rows)

    ours_row, random_row, bfs_row = rows[0], rows[1], rows[2]
    # Shape: the multilevel partitioner cuts several times fewer edges than a
    # random split and no more than the BFS baseline, at comparable balance.
    assert ours_row["edge_cut"] < 0.5 * random_row["edge_cut"]
    assert ours_row["edge_cut"] <= bfs_row["edge_cut"] * 1.05
    assert ours_row["balance"] <= 1.4
    # On the planted caveman graph the cut should be essentially the ring.
    assert rows[3]["edge_cut"] <= 3 * K

"""FIG1 — Figure 1: the G-Tree structure.

The figure sketches the recursive structuring of a graph into an R-tree-like
hierarchy whose leaves reference the actual graph nodes.  This benchmark
times G-Tree construction on the synthetic DBLP surrogate and reports the
structural facts the figure illustrates: number of levels, communities per
level, leaf sizes, and the invariant that leaves exactly cover the graph.
"""

import pytest

from repro.core.builder import build_gtree

from conftest import report


@pytest.mark.benchmark(group="fig1-gtree")
def test_fig1_gtree_construction(benchmark, dblp):
    graph = dblp.graph
    tree = benchmark.pedantic(
        lambda: build_gtree(graph, fanout=5, levels=3, seed=1),
        iterations=1,
        rounds=1,
    )
    summary = tree.summary()
    rows = []
    for level in range(tree.depth() + 1):
        nodes = tree.nodes_at_level(level)
        rows.append(
            {
                "level": level,
                "communities": len(nodes),
                "mean_size": sum(node.size for node in nodes) / len(nodes),
                "leaves": sum(1 for node in nodes if node.is_leaf),
            }
        )
    report("FIG1: G-Tree structure by level", rows)
    report(
        "FIG1: headline",
        [
            {
                "graph_nodes": graph.num_nodes,
                "graph_edges": graph.num_edges,
                "tree_nodes": summary["tree_nodes"],
                "leaf_communities": summary["leaf_communities"],
                "mean_leaf_size": summary["mean_leaf_size"],
            }
        ],
    )
    # Leaves exactly cover the graph — the property figure 1's bottom level shows.
    leaf_total = sum(leaf.size for leaf in tree.leaves())
    assert leaf_total == graph.num_nodes
    assert tree.validate() == []

"""ABL-COARSE — ablation of the multilevel partitioner's phases.

DESIGN.md calls out two design choices inherited from METIS: heavy-edge
matching during coarsening and FM refinement during uncoarsening.  This
ablation disables each in turn and measures the edge-cut penalty, verifying
that both phases pull their weight (the reason the reproduction implements
the full multilevel scheme rather than a single-shot heuristic).
"""

import time

import pytest

from repro.partition.metrics import balance, edge_cut
from repro.partition.multilevel import BisectionOptions, multilevel_bisection

from conftest import report


CONFIGS = [
    ("full multilevel (HEM + FM)", BisectionOptions(seed=5)),
    ("random matching", BisectionOptions(seed=5, matching="random")),
    ("no refinement", BisectionOptions(seed=5, refine=False)),
    ("no coarsening", BisectionOptions(seed=5, coarsen_enabled=False)),
    ("no spectral initial", BisectionOptions(seed=5, use_spectral=False)),
]


@pytest.mark.benchmark(group="ablation-partitioner")
def test_ablation_partitioner_phases(benchmark, dblp):
    graph = dblp.graph

    full = benchmark(lambda: multilevel_bisection(graph, CONFIGS[0][1]))
    full_cut = edge_cut(graph, full)

    rows = []
    results = {"full multilevel (HEM + FM)": (full_cut, balance(full, 2), None)}
    for label, options in CONFIGS[1:]:
        start = time.perf_counter()
        assignment = multilevel_bisection(graph, options)
        seconds = time.perf_counter() - start
        results[label] = (edge_cut(graph, assignment), balance(assignment, 2), seconds)

    for label, _ in CONFIGS:
        cut, bal, seconds = results[label]
        rows.append(
            {
                "configuration": label,
                "edge_cut": cut,
                "relative_to_full": cut / max(full_cut, 1e-9),
                "balance": bal,
                "seconds": seconds if seconds is not None else float("nan"),
            }
        )
    report("ABL-COARSE: bisection edge cut per disabled phase", rows)

    # Shape: the full pipeline is never worse than the ablated variants by
    # more than noise, and disabling refinement hurts the most.
    no_refine_cut = results["no refinement"][0]
    assert full_cut <= no_refine_cut * 1.05
    for label, _ in CONFIGS[1:]:
        assert full_cut <= results[label][0] * 1.15
    # Every variant still produces a balanced partition.
    for label, _ in CONFIGS:
        assert results[label][1] <= 1.4

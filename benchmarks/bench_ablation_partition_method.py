"""ABL-METHOD — "any partitioning methodology fits our system".

Section III-A adopts METIS-style k-way partitioning but explicitly notes the
G-Tree is agnostic to the methodology.  This ablation builds the same
hierarchy with the balanced multilevel partitioner and with Louvain
modularity communities (adapted to fixed fanout), then compares the
trade-off the analyst actually faces: balance and equal community sizes
versus natural community boundaries (modularity), plus the effect on the
Tomahawk display size.
"""

import pytest

from repro.core.builder import GTreeBuildOptions, GTreeBuilder
from repro.core.tomahawk import clutter_reduction
from repro.partition.hierarchy import recursive_partition
from repro.partition.kway import KWayOptions
from repro.partition.louvain import louvain_partition_fn
from repro.partition.metrics import modularity

from conftest import report


def build_with(dblp, partition_fn=None, seed=17):
    graph = dblp.graph
    hierarchy = recursive_partition(
        graph,
        fanout=5,
        levels=3,
        partition_fn=partition_fn,
        options=None if partition_fn else KWayOptions(seed=seed),
    )
    tree = GTreeBuilder(GTreeBuildOptions(fanout=5, levels=3, seed=seed)).build(
        graph, hierarchy
    )
    return hierarchy, tree


def level1_stats(dblp, hierarchy, tree):
    graph = dblp.graph
    level1 = {node: index for index, child in enumerate(hierarchy.root.children)
              for node in child.members}
    sizes = [len(child.members) for child in hierarchy.root.children]
    return {
        "first_level_parts": len(sizes),
        "min_size": min(sizes),
        "max_size": max(sizes),
        "size_imbalance": max(sizes) / (sum(sizes) / len(sizes)),
        "modularity": modularity(graph, level1),
        "tomahawk_items_at_root": clutter_reduction(tree, tree.root.node_id)["tomahawk_items"],
    }


@pytest.mark.benchmark(group="ablation-partition-method")
def test_ablation_partition_methodology(benchmark, dblp):
    kway_hierarchy, kway_tree = benchmark.pedantic(
        lambda: build_with(dblp), iterations=1, rounds=1
    )
    louvain_hierarchy, louvain_tree = build_with(
        dblp, partition_fn=louvain_partition_fn(seed=17)
    )

    rows = [
        {"methodology": "multilevel k-way (METIS-style)",
         **level1_stats(dblp, kway_hierarchy, kway_tree)},
        {"methodology": "Louvain (modularity, fanout-adapted)",
         **level1_stats(dblp, louvain_hierarchy, louvain_tree)},
    ]
    report("ABL-METHOD: partitioning methodology behind the same G-Tree", rows)

    kway_row, louvain_row = rows
    # Both methodologies plug into the same G-Tree machinery (the paper's
    # claim): both trees validate and expose the same display size at the root.
    assert kway_tree.validate() == [] and louvain_tree.validate() == []
    assert kway_row["first_level_parts"] == louvain_row["first_level_parts"] == 5
    # The k-way partitioner wins on balance; Louvain is allowed to trade
    # balance for (at least comparable) modularity.
    assert kway_row["size_imbalance"] <= louvain_row["size_imbalance"] + 0.05
    assert kway_row["modularity"] > 0.2

"""FIG3 — Figure 3: the six-step DBLP navigation walkthrough.

The figure narrates: (a) five top communities and 25 sub-communities with
differing connectivity, (b) focus on an isolated community, (c) full
expansion revealing a single outlier edge and the co-authorship behind it,
(d) a label query for a prolific author, (e) the author's community, and
(f) the author's strongest collaborator.  This benchmark scripts the same
six interactions against the engine, times the full sequence, and reports
the quantities visible in each panel.
"""

import pytest

from repro.core.engine import GMineEngine
from repro.core.connectivity import isolation_profile

from conftest import report


def run_walkthrough(dblp, tree):
    graph = dblp.graph
    engine = GMineEngine(tree, graph=graph)
    out = {}

    # (a) first level: communities and how many siblings each connects to.
    engine.focus_root()
    level1 = tree.children(tree.root.node_id)
    profile = isolation_profile(graph, {child.node_id: child.members for child in level1})
    out["level1"] = [
        {"community": child.label, "authors": child.size,
         "connected_siblings": profile[child.node_id]}
        for child in level1
    ]

    # (b) focus the least-connected internal community (the paper's s034 role).
    internal = [node for node in tree.nodes() if not node.is_leaf and not node.is_root]
    target = min(internal, key=lambda node: len(node.connectivity))
    context = engine.focus_community(target.label)
    out["focus"] = {"community": target.label,
                    "sub_communities": len(target.children),
                    "connectivity_edges": len(target.connectivity),
                    "tomahawk_items": context.size}

    # (c) outlier edge inspection.
    candidates = [node for node in internal if node.connectivity]
    host = min(candidates, key=lambda node: min(e.edge_count for e in node.connectivity))
    outlier = min(host.connectivity, key=lambda e: e.edge_count)
    inspection = engine.inspect_connectivity_edge(outlier.source, outlier.target)
    out["outlier"] = {"between": f"{inspection.community_a}~{inspection.community_b}",
                      "hidden_edges": len(inspection.edges)}

    # (d) label query for the most prolific author.
    author_id, author_name, degree = dblp.most_collaborative_authors(1)[0]
    query = engine.label_query(author_name)
    out["query"] = {"author": author_name, "degree": degree,
                    "path": " > ".join(reversed(query.path_labels))}

    # (e) the author's community metrics.
    engine.locate_and_focus(author_name)
    metrics = engine.community_metrics(hop_sample_size=32)
    out["community"] = {"label": engine.focus.label,
                        "authors": metrics.degree_stats.num_nodes,
                        "weak_components": metrics.num_weak_components,
                        "diameter": metrics.diameter}

    # (f) strongest collaborator.
    partner, weight = engine.strongest_neighbors(author_id, count=1)[0]
    out["collaborator"] = {"author": author_name,
                           "top_collaborator": dblp.name_of(partner),
                           "joint_papers": weight}
    return out


@pytest.mark.benchmark(group="fig3-navigation")
def test_fig3_navigation_walkthrough(benchmark, dblp, dblp_tree):
    out = benchmark.pedantic(lambda: run_walkthrough(dblp, dblp_tree),
                             iterations=1, rounds=1)
    report("FIG3(a): first-level communities", out["level1"])
    report("FIG3(b): focused community", [out["focus"]])
    report("FIG3(c): outlier edge inspection", [out["outlier"]])
    report("FIG3(d): label query", [out["query"]])
    report("FIG3(e): author community", [out["community"]])
    report("FIG3(f): strongest collaborator", [out["collaborator"]])

    # Shape checks: five first-level communities, the walkthrough finds an
    # outlier with few hidden edges, and the label query resolves to a path
    # rooted at s0.
    assert len(out["level1"]) == 5
    assert out["outlier"]["hidden_edges"] >= 1
    assert out["query"]["path"].startswith("s0")
    assert out["community"]["authors"] > 0
    assert out["collaborator"]["joint_papers"] >= 1

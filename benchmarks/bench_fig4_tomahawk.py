"""FIG4 — Figure 4: the Tomahawk principle.

The figure shows which tree nodes are selected for display when the user
focuses a community: the node itself, its sons, its siblings and its
ancestors.  This benchmark times context computation and reports, per tree
level, how many communities the Tomahawk context draws versus how many a
full expansion of the focus subtree would draw.
"""

import pytest

from repro.core.tomahawk import clutter_reduction, full_expansion_size, tomahawk_context

from conftest import report


@pytest.mark.benchmark(group="fig4-tomahawk")
def test_fig4_tomahawk_context(benchmark, dblp_tree):
    tree = dblp_tree
    focuses = {}
    for level in range(tree.depth() + 1):
        nodes = tree.nodes_at_level(level)
        if nodes:
            focuses[level] = nodes[0]

    def compute_all():
        return {level: tomahawk_context(tree, node.node_id)
                for level, node in focuses.items()}

    contexts = benchmark(compute_all)

    rows = []
    for level, context in contexts.items():
        node = focuses[level]
        rows.append(
            {
                "focus_level": level,
                "focus": node.label,
                "tomahawk_items": context.size,
                "full_expansion_items": full_expansion_size(tree, node.node_id),
                "reduction": clutter_reduction(tree, node.node_id)["reduction_ratio"],
            }
        )
    report("FIG4: Tomahawk context vs full expansion, by focus level", rows)

    # Shape: the context stays small (focus + fanout children + siblings +
    # ancestors) at every level, while the full expansion explodes near the root.
    for row in rows:
        assert row["tomahawk_items"] <= 2 * tree.root.children.__len__() + tree.depth() + 1
        assert row["tomahawk_items"] <= row["full_expansion_items"]
    root_row = rows[0]
    assert root_row["reduction"] > 5.0

"""CLAIM-DBLP — Section II/III quantitative claims about the DBLP hierarchy.

The paper: DBLP has n = 315,688 authors and e = 1,659,853 edges; recursively
partitioning it into 5 hierarchy levels each with 5 partitions yields
"5^4 + 1, or 626, communities with an average of 500 nodes per community".

At the benchmark's reduced scale the same construction gives 5^(levels-1)
leaf communities with an average of n / 5^(levels-1) authors; the benchmark
checks that bookkeeping and also verifies the average-degree regime of the
synthetic surrogate matches DBLP's (2e/n ≈ 10.5).
"""

import pytest

from repro.partition.hierarchy import hierarchy_summary, recursive_partition
from repro.partition.kway import KWayOptions

from conftest import report


@pytest.mark.benchmark(group="claim-dblp")
def test_claim_dblp_hierarchy_bookkeeping(benchmark, dblp):
    graph = dblp.graph
    levels = 4 if graph.num_nodes <= 10_000 else 5

    hierarchy = benchmark.pedantic(
        lambda: recursive_partition(graph, fanout=5, levels=levels,
                                    options=KWayOptions(seed=7)),
        iterations=1, rounds=1,
    )
    summary = hierarchy_summary(hierarchy)
    expected_leaves = 5 ** (levels - 1)
    paper_row = {
        "setting": "paper (DBLP, 5 levels)",
        "authors": 315_688,
        "edges": 1_659_853,
        "avg_degree": 2 * 1_659_853 / 315_688,
        "leaf_communities": 5 ** 4,
        "paper_count": 5 ** 4 + 1,
        "mean_leaf_size": 315_688 / 5 ** 4,
    }
    ours_row = {
        "setting": f"ours (synthetic, {levels} levels)",
        "authors": graph.num_nodes,
        "edges": graph.num_edges,
        "avg_degree": 2 * graph.num_edges / graph.num_nodes,
        "leaf_communities": summary["leaf_communities"],
        "paper_count": summary["paper_communities"],
        "mean_leaf_size": summary["mean_leaf_size"],
    }
    report("CLAIM-DBLP: hierarchy bookkeeping, paper vs reproduction", [paper_row, ours_row])

    # The formula-level claims transfer exactly.
    assert summary["leaf_communities"] == expected_leaves
    assert summary["paper_communities"] == expected_leaves + 1
    assert summary["mean_leaf_size"] == pytest.approx(graph.num_nodes / expected_leaves, rel=0.01)
    # The synthetic surrogate sits in the same average-degree regime as DBLP.
    assert 5.0 <= ours_row["avg_degree"] <= 20.0

"""FIG5 — Figure 5: multi-source connection subgraph extraction.

The figure shows a 30-node connection subgraph extracted from the whole
DBLP graph for a three-author query set, with a well-connected intermediary
(H. V. Jagadish) surfaced between the sources.  This benchmark times the
extraction, reports its size/reduction/intermediary, and contrasts it with
the pairwise delivered-current baseline (the KDD'04 algorithm the paper
cites as the prior art restricted to two sources).
"""

import pytest

from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.components import number_weak_components
from repro.mining.delivered_current import extract_delivered_current

from conftest import report


def pick_sources(dblp, count):
    """Prolific authors from distinct sub-communities (the paper's query style)."""
    chosen, seen = [], set()
    for author, _, _ in dblp.most_collaborative_authors(count * 25):
        group = dblp.sub_community_of[author]
        if group in seen:
            continue
        seen.add(group)
        chosen.append(author)
        if len(chosen) == count:
            break
    return chosen


@pytest.mark.benchmark(group="fig5-extraction")
def test_fig5_multi_source_extraction(benchmark, dblp):
    graph = dblp.graph
    sources = pick_sources(dblp, 3)

    result = benchmark.pedantic(
        lambda: extract_connection_subgraph(graph, sources, budget=30),
        iterations=1, rounds=1,
    )

    intermediaries = sorted(
        (node for node in result.subgraph.nodes() if node not in set(sources)),
        key=lambda node: -result.goodness.get(node, 0.0),
    )
    top_intermediary = intermediaries[0] if intermediaries else None
    report(
        "FIG5: multi-source extraction (3 query authors, budget 30)",
        [
            {
                "graph_nodes": graph.num_nodes,
                "extract_nodes": result.num_nodes,
                "extract_edges": result.subgraph.num_edges,
                "reduction_factor": result.reduction_factor(graph),
                "important_paths": len(result.paths),
                "top_intermediary": dblp.name_of(top_intermediary)
                if top_intermediary is not None else "-",
            }
        ],
    )

    # Pairwise baseline for the first two sources.
    baseline = extract_delivered_current(graph, sources[0], sources[1], budget=30)
    report(
        "FIG5: pairwise delivered-current baseline (KDD'04)",
        [
            {
                "sources_supported": 2,
                "extract_nodes": baseline.num_nodes,
                "paths": len(baseline.paths),
            },
            {
                "sources_supported": len(sources),
                "extract_nodes": result.num_nodes,
                "paths": len(result.paths),
            },
        ],
    )

    # Shape checks matching the paper's narrative.
    assert result.num_nodes <= 30
    assert result.contains_all_sources()
    assert number_weak_components(result.subgraph) == 1
    assert result.reduction_factor(graph) >= graph.num_nodes / 30
    # The multi-source method covers all three sources in one query; the
    # baseline is limited to two.
    assert len(result.sources) == 3

"""Execution backend throughput: inline vs thread vs process on uncached work.

Builds a synthetic DBLP dataset, persists it (store + graph file, so the
process backend's warm workers can reopen it by path), then drives one
:meth:`GMineService.batch` of **uncached** requests — every request names a
distinct multi-source pair, so each one pays a full kernel — through each
execution backend:

* ``inline``  — kernels run on the batch pool's threads (GIL-bound),
* ``thread``  — kernels run on a dedicated kernel thread pool (GIL-bound),
* ``process`` — kernels ship as picklable compute plans to warm worker
  processes (one interpreter per worker: true multi-core execution).

Two workloads are measured per backend: multi-source RWR solves and
metric-suite computations.  A cached re-run is also timed to confirm the
shared result cache levels every backend once results are resident.

Reported per backend: wall seconds, requests/sec, and speedup relative to
the thread backend (the acceptance metric: process > 1.5x thread on
uncached RWR with >= 4 workers on multi-core hardware — ``cpu_count`` is
recorded so single-core CI numbers read honestly).

Emits ``BENCH_exec.json`` next to this file.

Run it:  ``PYTHONPATH=src python benchmarks/bench_exec_backends.py``
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.io import write_json
from repro.service import BACKEND_NAMES, GMineService
from repro.storage.gtree_store import save_gtree

AUTHORS = 900
SEED = 29
WORKERS = 4
RWR_REQUESTS = 16
METRICS_REQUESTS = 8


def _rate(count: int, elapsed: float) -> float:
    return round(count / elapsed, 2) if elapsed > 0 else float("inf")


def build_requests(tree):
    """Distinct uncached request sets: full-graph RWR + leaf metric suites.

    The RWR requests run at widest scope (no ``community``), so every
    solve powers over the whole graph — per-task compute large enough to
    amortise the process backend's pickle/IPC overhead, which is the
    workload where multi-core execution pays.
    """
    leaves = sorted(tree.leaves(), key=lambda node: -node.size)
    hot = leaves[0]
    members = list(hot.members)
    rwr = [
        {"op": "rwr",
         "args": {"sources": [members[i], members[i + 1], members[i + 2]]}}
        for i in range(RWR_REQUESTS)
    ]
    metrics = [
        {"op": "metrics",
         "args": {"community": leaves[i % len(leaves)].label,
                  "hop_sample_size": 32 + i}}
        for i in range(METRICS_REQUESTS)
    ]
    return rwr, metrics


def run_backend(backend, store_path, graph_path, rwr, metrics):
    """Time one backend over the uncached and cached workloads."""
    with GMineService(max_workers=WORKERS, backend=f"{backend}:{WORKERS}") as service:
        service.register_store(store_path, name="dblp", graph_path=graph_path)
        if backend == "process":
            # let the warm-up tasks open the store before the clock starts
            service.rwr(rwr[0]["args"]["sources"])
            service.cache.clear()

        start = time.perf_counter()
        results = service.batch(rwr, max_workers=WORKERS)
        rwr_elapsed = time.perf_counter() - start
        assert all(result.ok for result in results), results

        start = time.perf_counter()
        results = service.batch(metrics, max_workers=WORKERS)
        metrics_elapsed = time.perf_counter() - start
        assert all(result.ok for result in results), results

        start = time.perf_counter()
        results = service.batch(rwr, max_workers=WORKERS)
        cached_elapsed = time.perf_counter() - start
        assert all(result.ok and result.cached for result in results), results

        stats = service.backend.stats()

    return {
        "rwr_uncached_seconds": round(rwr_elapsed, 4),
        "rwr_uncached_rps": _rate(len(rwr), rwr_elapsed),
        "metrics_uncached_seconds": round(metrics_elapsed, 4),
        "metrics_uncached_rps": _rate(len(metrics), metrics_elapsed),
        "rwr_cached_rps": _rate(len(rwr), cached_elapsed),
        "backend_stats": stats,
    }


def main() -> None:
    backends = sys.argv[1:] or list(BACKEND_NAMES)
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=SEED)
    rwr, metrics = build_requests(tree)

    report = {
        "benchmark": "exec_backends",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "dataset": {
            "authors": AUTHORS,
            "nodes": dataset.graph.num_nodes,
            "edges": dataset.graph.num_edges,
        },
        "requests": {"rwr_uncached": RWR_REQUESTS,
                     "metrics_uncached": METRICS_REQUESTS},
        "backends": {},
    }

    with tempfile.TemporaryDirectory(prefix="gmine-bench-") as workdir:
        store_path = Path(workdir) / "bench.gtree"
        graph_path = Path(workdir) / "bench.json"
        save_gtree(tree, store_path)
        write_json(dataset.graph, graph_path)
        for backend in backends:
            entry = run_backend(backend, store_path, graph_path, rwr, metrics)
            report["backends"][backend] = entry
            print(f"{backend:>8}: rwr {entry['rwr_uncached_rps']:>7} req/s | "
                  f"metrics {entry['metrics_uncached_rps']:>7} req/s | "
                  f"cached rwr {entry['rwr_cached_rps']:>8} req/s")

    thread_entry = report["backends"].get("thread")
    if thread_entry:
        for backend, entry in report["backends"].items():
            entry["rwr_speedup_vs_thread"] = round(
                thread_entry["rwr_uncached_seconds"]
                / entry["rwr_uncached_seconds"], 2,
            )
            entry["metrics_speedup_vs_thread"] = round(
                thread_entry["metrics_uncached_seconds"]
                / entry["metrics_uncached_seconds"], 2,
            )
        process_entry = report["backends"].get("process")
        if process_entry:
            speedup = process_entry["rwr_speedup_vs_thread"]
            cores = report["cpu_count"]
            print(f"process vs thread on uncached RWR: {speedup}x "
                  f"({WORKERS} workers, {cores} cores)")
            if cores and cores < 2:
                print("note: single-core host — process-pool speedup needs "
                      ">= 2 cores to materialise")

    output = Path(__file__).parent / "BENCH_exec.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()

"""FIG2 — Figure 2: nodes, community nodes, and connectivity edges.

Figure 2 contrasts the three drawing primitives: conventional nodes/edges at
the bottom level, leaf community nodes with connectivity edges, and non-leaf
community nodes with connectivity edges.  This benchmark times connectivity
aggregation and reports how many original edges each representation needs,
checking that the connectivity edges exactly account for every cross-
community edge.
"""

import pytest

from repro.core.connectivity import connectivity_among_children, internal_edge_count

from conftest import report


@pytest.mark.benchmark(group="fig2-connectivity")
def test_fig2_connectivity_aggregation(benchmark, dblp, dblp_tree):
    graph = dblp.graph
    root = dblp_tree.root
    child_members = {
        child_id: dblp_tree.node(child_id).members for child_id in root.children
    }

    edges = benchmark(lambda: connectivity_among_children(graph, child_members))

    cross_total = sum(edge.edge_count for edge in edges)
    internal_total = sum(
        internal_edge_count(graph, members)[0] for members in child_members.values()
    )
    rows = [
        {
            "representation": "conventional nodes + edges",
            "items_drawn": graph.num_nodes + graph.num_edges,
        },
        {
            "representation": "community nodes + connectivity edges",
            "items_drawn": len(child_members) + len(edges),
        },
    ]
    report("FIG2: drawing primitives", rows)
    report(
        "FIG2: edge accounting",
        [
            {
                "total_edges": graph.num_edges,
                "intra_community": internal_total,
                "cross_community": cross_total,
                "connectivity_edges": len(edges),
            }
        ],
    )
    # Every edge is either inside one first-level community or counted by
    # exactly one connectivity edge.
    assert internal_total + cross_total == graph.num_edges
    # The aggregated view is orders of magnitude smaller than the raw drawing.
    assert len(child_members) + len(edges) < 0.01 * (graph.num_nodes + graph.num_edges)

"""CLAIM-CLUTTER — "limited visual data presentation in contrast to cluttered
visualizations generated when large graphs are entirely drawn".

This benchmark renders (headlessly) the three display strategies for the
same dataset and counts the visual items each one puts on screen:

* drawing the whole graph (every node and edge),
* drawing the fully expanded hierarchy (every community, every leaf edge),
* the Tomahawk view of a focused community.

The Tomahawk view must be orders of magnitude smaller, and its size must not
grow with the dataset.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.tomahawk import tomahawk_context
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.viz.render import render_full_expansion, render_subgraph, render_tomahawk_view

from conftest import report

SIZES = [500, 1000, 2000]


@pytest.mark.benchmark(group="claim-clutter")
def test_claim_clutter_reduction(benchmark):
    datasets = {
        size: generate_dblp(DBLPConfig(num_authors=size, seed=13)) for size in SIZES
    }
    trees = {
        size: build_gtree(dataset.graph, fanout=5, levels=3, seed=13)
        for size, dataset in datasets.items()
    }

    def tomahawk_items():
        items = {}
        for size in SIZES:
            tree = trees[size]
            focus = tree.children(tree.root.node_id)[0]
            context = tomahawk_context(tree, focus.node_id)
            scene = render_tomahawk_view(tree, context, graph=datasets[size].graph)
            items[size] = scene.visual_item_count()
        return items

    tomahawk = benchmark.pedantic(tomahawk_items, iterations=1, rounds=1)

    rows = []
    for size in SIZES:
        graph = datasets[size].graph
        whole = render_subgraph(graph, max_labels=0)
        expanded = render_full_expansion(trees[size], graph=graph)
        rows.append(
            {
                "authors": size,
                "whole_graph_items": whole.visual_item_count(),
                "full_hierarchy_items": expanded.visual_item_count(),
                "tomahawk_items": tomahawk[size],
                "reduction_vs_whole": whole.visual_item_count() / tomahawk[size],
            }
        )
    report("CLAIM-CLUTTER: visual items per display strategy", rows)

    # Shape: the whole-graph drawing grows linearly with the dataset while the
    # Tomahawk view stays essentially constant and far smaller.
    assert rows[-1]["whole_graph_items"] > 2.5 * rows[0]["whole_graph_items"]
    assert max(tomahawk.values()) < 1.5 * min(tomahawk.values()) + 20
    for row in rows:
        assert row["reduction_vs_whole"] > 10.0

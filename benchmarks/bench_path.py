"""GPath benchmark: parse/compile overhead and fused-plan execution cost.

Two questions decide whether a declarative layer earns its keep:

* **front-end overhead** — what parsing a query and compiling it to a
  plan chain costs, in absolute microseconds and relative to actually
  executing the plan.  Compilation happens once per request (and the
  canonical text is the cache key, so repeated queries skip even that);
  it must be noise next to any kernel.
* **fused execution** — ``members/rwr(sources=…)/top(k)`` compiles to a
  single ``Score`` node with the limit fused in.  On a warm prepared
  graph the evaluator must pass the ``PreparedGraph`` straight through
  to the same RWR kernel ``dataset.rwr`` uses, so the fused plan is
  gated at **within 10%** of the direct kernel call plus a slice — the
  acceptance criterion for the compiler's pass-through fast path.  The
  two result lists must also agree exactly (parity is checked here too,
  not just in the test suite).

Exit status is the CI gate: non-zero when the fused plan exceeds
1.10x the direct kernel min-of-N, or when fused and direct results
disagree.

Emits ``BENCH_path.json`` next to this file.

Run it:  ``PYTHONPATH=src python benchmarks/bench_path.py``
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.api.plans import KERNELS
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.matrix import PreparedGraph
from repro.query import compile_query, parse, unparse

AUTHORS = 1500
SEED = 37
FANOUT = 3
LEVELS = 3
TOP_K = 10
COMPILE_REPEATS = 200
KERNEL_REPEATS = 15
KERNEL_WARMUPS = 2
#: The gate: the fused plan's min-of-N may cost at most this multiple of
#: the direct kernel call + slice.
MAX_FUSED_RATIO = 1.10

#: Representative queries for the front-end timing sweep (community and
#: source placeholders are filled in from the built tree).
SWEEP = [
    "leaves/count",
    "community({leaf})/members/nodes",
    "community({leaf})/members/rwr(sources=[{src}])/top(10)",
    "community({leaf})/members/edges[weight > 0.5]/hops(2)/count",
    "community({leaf})/ancestors/nodes",
]


def time_min(fn, repeats, warmups=0):
    for _ in range(warmups):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples), statistics.median(samples)


def time_pair(fn_a, fn_b, repeats, warmups=0):
    """Min-of-N for two callables with interleaved samples.

    Alternating A/B within one loop means machine-load drift hits both
    sides equally instead of biasing whichever ran second.
    """
    for _ in range(warmups):
        fn_a()
        fn_b()
    a_samples, b_samples = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        a_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        b_samples.append(time.perf_counter() - start)
    return (
        (min(a_samples), statistics.median(a_samples)),
        (min(b_samples), statistics.median(b_samples)),
    )


def main() -> int:
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    graph = dataset.graph
    tree = build_gtree(graph, fanout=FANOUT, levels=LEVELS, seed=SEED)
    leaf = max(tree.leaves(), key=lambda node: node.size)
    sources = sorted(graph.nodes(), key=repr)[:4]

    report = {
        "benchmark": "gpath",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "dataset": {
            "authors": AUTHORS,
            "seed": SEED,
            "fanout": FANOUT,
            "levels": LEVELS,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "leaves": len(tree.leaves()),
        },
    }
    failures = []

    # ------------------------------------------------------------------ #
    # front-end overhead: parse + compile, per query
    # ------------------------------------------------------------------ #
    sweep_rows = []
    for template in SWEEP:
        text = template.format(leaf=leaf.label, src=sources[0])
        query = parse(text)
        parse_min, _ = time_min(lambda: parse(text), COMPILE_REPEATS)
        compile_min, _ = time_min(
            lambda: compile_query(query, tree), COMPILE_REPEATS
        )
        sweep_rows.append({
            "query": unparse(query),
            "parse_min_us": round(parse_min * 1e6, 2),
            "compile_min_us": round(compile_min * 1e6, 2),
        })
        print(f"parse {parse_min * 1e6:7.2f} us | "
              f"compile {compile_min * 1e6:7.2f} us | {unparse(query)}")
    report["front_end"] = {
        "repeats": COMPILE_REPEATS,
        "queries": sweep_rows,
        "max_parse_plus_compile_us": round(
            max(r["parse_min_us"] + r["compile_min_us"] for r in sweep_rows), 2
        ),
    }

    # ------------------------------------------------------------------ #
    # fused top(k) vs direct rwr + slice, warm prepared graph
    # ------------------------------------------------------------------ #
    prepared = PreparedGraph.from_graph(graph)
    source_list = json.dumps(sources) if not all(
        isinstance(s, int) for s in sources
    ) else "[" + ", ".join(str(s) for s in sources) + "]"
    fused_text = f"members/rwr(sources={source_list})/top({TOP_K})"
    plan = compile_query(parse(fused_text), tree).plan
    direct_args = {
        "sources": sources, "restart_probability": 0.15, "solver": "power",
    }

    def run_direct():
        return KERNELS["rwr"](graph, direct_args, prepared).top(TOP_K)

    def run_fused():
        return KERNELS["path"](graph, {"plan": plan}, prepared)

    direct_top = run_direct()
    fused_result = run_fused()
    fused_scores = list(fused_result.scores)
    direct_scores = [(node, float(score)) for node, score in direct_top]
    if fused_scores != direct_scores:
        failures.append(
            "fused plan and direct kernel disagree on the top-k list"
        )

    (direct_min, direct_median), (fused_min, fused_median) = time_pair(
        run_direct, run_fused, KERNEL_REPEATS, KERNEL_WARMUPS
    )
    ratio = fused_min / direct_min if direct_min > 0 else float("inf")
    report["fused_vs_direct"] = {
        "query": fused_text,
        "top_k": TOP_K,
        "repeats": KERNEL_REPEATS,
        "direct_min_ms": round(direct_min * 1e3, 4),
        "direct_median_ms": round(direct_median * 1e3, 4),
        "fused_min_ms": round(fused_min * 1e3, 4),
        "fused_median_ms": round(fused_median * 1e3, 4),
        "ratio": round(ratio, 4),
        "results_identical": fused_scores == direct_scores,
    }
    print(f"direct rwr+slice {direct_min * 1e3:7.2f} ms | "
          f"fused plan {fused_min * 1e3:7.2f} ms | "
          f"ratio {ratio:5.3f} (gate <= {MAX_FUSED_RATIO})")
    if ratio > MAX_FUSED_RATIO:
        failures.append(
            f"fused plan is {ratio:.3f}x the direct kernel "
            f"(gate: <= {MAX_FUSED_RATIO}x)"
        )

    # front-end cost in context: one parse+compile vs one kernel run
    overhead_fraction = (
        (sweep_rows[2]["parse_min_us"] + sweep_rows[2]["compile_min_us"])
        / (direct_min * 1e6)
        if direct_min > 0 else float("inf")
    )
    report["front_end"]["fraction_of_one_rwr"] = round(overhead_fraction, 4)
    print(f"parse+compile of the rwr query is "
          f"{overhead_fraction:.1%} of one warm kernel run")

    report["acceptance"] = {
        "fused_ratio": report["fused_vs_direct"]["ratio"],
        "max_allowed": MAX_FUSED_RATIO,
        "results_identical": report["fused_vs_direct"]["results_identical"],
        "passed": not failures,
    }
    report["failures"] = failures
    output = Path(__file__).parent / "BENCH_path.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sharded-execution benchmark: byte parity first, then routing cost.

Emits ``BENCH_shard.json`` next to this file, in two phases:

* **parity gate** — before any timing counts, the sharded service must
  answer a scoped RWR, scoped metrics, a compiled GPath query and a
  widest-scope (scatter-gather) RWR with wire envelopes *byte-identical*
  to the inline service's.  A sharded deployment that is fast but wrong
  is worthless; the gate runs first so a parity break fails the job
  before any latency number exists to argue about.
* **point-to-point overhead** — the same stream of single-community RWR
  requests (each touching exactly one shard, asserted via the backend's
  routing counters) against ``sharded:2`` vs the unsharded ``process:2``
  backend.  The dataset is *store-backed* so the process backend really
  ships plans to its pool (in-memory datasets it serves locally, which
  would compare IPC against no IPC).  Both backends then pay one
  round-trip to one worker process per request, and the sharded route
  must stay within **1.15x** of the process backend's median, because
  the shard worker holds a strictly smaller slice and a single-owner
  plan needs no merge.  Scatter-gather latency is reported for context
  but not gated (it trades per-iteration IPC for parent CPU and is
  honest only on multi-core hosts; ``cpu_count`` is recorded).

Gates (recorded in the JSON, asserted by ``make bench-shard``):
``byte_parity`` and ``single_shard_within_1_15x``.

Run it:  ``PYTHONPATH=src python benchmarks/bench_shard.py``
"""

from __future__ import annotations

import itertools
import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.api.ops import encode_result
from repro.api.router import dumps
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.io import write_json
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

AUTHORS = 400
SEED = 2026
SHARDS = 2
ROUNDS = 3
REQUESTS_PER_ROUND = 20
OVERHEAD_LIMIT = 1.15


def _build():
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    # levels=2: three root subtrees of ~130 members each, so the timed
    # community RWR is real work (several ms) rather than a toy whose
    # latency is all fixed dispatch cost.
    tree = build_gtree(dataset.graph, fanout=3, levels=2, seed=SEED)
    return dataset, tree


def _wire(service, operation, **args):
    value = service.call(operation, **args)
    return dumps(encode_result(service.registry.get(operation), value)[0])


def _parity_calls(tree):
    hot = max(tree.leaves(), key=lambda node: node.size)
    members = list(hot.members)
    return [
        ("rwr", {"sources": members[:2], "community": hot.label}),
        ("rwr", {"sources": members[:2]}),  # widest scope -> scatter
        ("metrics", {"community": hot.label}),
        ("query.path", {"path": (
            f"community({hot.label})/members/"
            f"rwr(sources=[{members[0]!r}])/top(10)"
        )}),
    ]


def parity_phase(dataset, tree) -> dict:
    calls = _parity_calls(tree)
    envelopes = {}
    for backend in ("inline", f"sharded:{SHARDS}"):
        with GMineService(backend=backend) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            envelopes[backend] = [
                _wire(service, op, **args) for op, args in calls
            ]
            if backend.startswith("sharded"):
                routed = service.stats()["backend"]["routed"]
    matches = [
        a == b
        for a, b in zip(envelopes["inline"], envelopes[f"sharded:{SHARDS}"])
    ]
    return {
        "calls": [op for op, _ in calls],
        "byte_identical": matches,
        "sharded_routed": routed,
        "all_identical": all(matches),
    }


def _request_stream(tree):
    """Single-community RWR requests with pairwise-distinct source sets.

    Every request must be a distinct source *pair* (C(n, 2) of them, far
    more than the stream needs) so the service cache never answers one —
    a repeated arg set would time the cached path, not the backend.  The
    identical stream hits both backends so the work compared is the same.
    """
    hot = max(tree.leaves(), key=lambda node: node.size)
    members = list(hot.members)
    pairs = itertools.combinations(members, 2)
    return hot, [
        {"sources": list(pair), "community": hot.label}
        for pair, _ in zip(pairs, range(ROUNDS * REQUESTS_PER_ROUND))
    ]


def _timed_round(service, requests) -> float:
    latencies = []
    for args in requests:
        start = time.perf_counter()
        service.call("rwr", **args)
        latencies.append(time.perf_counter() - start)
    return statistics.median(latencies)


def overhead_phase(dataset, tree, store_path, graph_path) -> dict:
    """Both backends must *ship*: the dataset is registered by paths
    (``process_capable``), because an in-memory dataset the process
    backend serves locally would compare IPC against no IPC."""
    hot, stream = _request_stream(tree)
    names = (f"process:{SHARDS}", f"sharded:{SHARDS}")
    services = {}
    try:
        for name in names:
            service = GMineService(backend=name)
            services[name] = service
            service.register_store(
                store_path, name="dblp", graph_path=str(graph_path)
            )
            service.rwr([hot.members[0]], community=hot.label)  # warm venue
        # Interleave rounds A/B/A/B… and keep each backend's best: on a
        # shared (often single-core) CI host, load drifts over seconds,
        # and back-to-back blocks would charge that drift to whichever
        # backend ran second.
        rounds = {name: [] for name in names}
        for r in range(ROUNDS):
            chunk = stream[r * REQUESTS_PER_ROUND:(r + 1) * REQUESTS_PER_ROUND]
            for name in names:
                rounds[name].append(_timed_round(services[name], chunk))
        medians = {name: min(rounds[name]) for name in names}
        shipped = {
            name: services[name].stats()["backend"]["shipped"] for name in names
        }
        routed = services[f"sharded:{SHARDS}"].stats()["backend"]["routed"]
    finally:
        for service in services.values():
            service.close()
    total = ROUNDS * REQUESTS_PER_ROUND
    ratio = medians[f"sharded:{SHARDS}"] / medians[f"process:{SHARDS}"]
    return {
        "requests_per_round": REQUESTS_PER_ROUND,
        "rounds": ROUNDS,
        "process_median_ms": round(medians[f"process:{SHARDS}"] * 1000.0, 3),
        "sharded_median_ms": round(medians[f"sharded:{SHARDS}"] * 1000.0, 3),
        "overhead_ratio": round(ratio, 4),
        "process_shipped": shipped[f"process:{SHARDS}"],
        "single_shard_routed": routed["single_shard"],
        "all_shipped": shipped[f"process:{SHARDS}"] > total
        and routed["single_shard"] > total,
    }


def scatter_phase(dataset, tree) -> dict:
    hot = max(tree.leaves(), key=lambda node: node.size)
    members = list(hot.members)
    timings = {}
    for backend in ("inline", f"sharded:{SHARDS}"):
        with GMineService(backend=backend) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            service.rwr(members[:1])  # warm
            samples = []
            for i in range(5):
                start = time.perf_counter()
                service.rwr([members[(i + 1) % len(members)]])
                samples.append(time.perf_counter() - start)
            timings[backend] = statistics.median(samples)
    return {
        "inline_median_ms": round(timings["inline"] * 1000.0, 3),
        "sharded_median_ms": round(timings[f"sharded:{SHARDS}"] * 1000.0, 3),
        "note": "informational; scatter trades IPC per iteration for "
                "parallel matvec and only wins on multi-core hosts",
    }


def main() -> None:
    dataset, tree = _build()
    parity = parity_phase(dataset, tree)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "bench.gtree"
        graph_path = Path(tmp) / "bench.graph.json"
        save_gtree(tree, store_path)
        write_json(dataset.graph, graph_path)
        overhead = overhead_phase(dataset, tree, store_path, graph_path)
    scatter = scatter_phase(dataset, tree)
    report = {
        "benchmark": "shard",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "shards": SHARDS,
        "dataset": {
            "authors": AUTHORS,
            "nodes": dataset.graph.num_nodes,
            "edges": dataset.graph.num_edges,
        },
        "parity": parity,
        "point_to_point": overhead,
        "scatter": scatter,
        "gates": {
            "byte_parity": parity["all_identical"],
            "single_shard_within_1_15x":
                overhead["all_shipped"]
                and overhead["overhead_ratio"] <= OVERHEAD_LIMIT,
        },
    }
    out = Path(__file__).parent / "BENCH_shard.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not all(report["gates"].values()):
        raise SystemExit(f"shard gates failed: {report['gates']}")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

"""Prepared-kernel layer benchmark: cold conversions vs prepared reuse.

Measures every mining hot path twice on the benchmark DBLP graph (900
authors, seed 29 — the same graph the exec-backend benchmark drives):

* **cold** — the pre-prepared-layer behaviour: each call re-derives the
  sparse matrices from the Python ``Graph`` (O(E) dict traversal) before
  the kernel runs; multi-source RWR additionally pays one full solve per
  source (the pre-PR per-source loop);
* **warm** — the kernel is handed the dataset's cached
  :class:`~repro.graph.matrix.PreparedGraph`; multi-source RWR runs the
  blocked solver (one sparse matmul per step for all sources).

Reported per op: the median of ``REPEATS`` runs for each path and the
speedup.  ``blocked_vs_looped`` isolates the blocking win alone (both
sides warm).  The one-time preparation cost is reported honestly, as is
``cpu_count`` — though unlike the process-pool benchmark these speedups
are work *avoidance*, not parallelism, so they hold on a single core.

Exit status is the CI gate: non-zero when any warm median is slower than
its cold median (beyond 10% timer noise) or when the acceptance criterion
— warm multi-source RWR (8 sources) at least 3x the pre-PR per-source
path — fails.

Emits ``BENCH_kernels.json`` next to this file.

Run it:  ``PYTHONPATH=src python benchmarks/bench_kernels.py``
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.matrix import PreparedGraph
from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.delivered_current import extract_delivered_current
from repro.mining.metrics_suite import compute_subgraph_metrics
from repro.mining.pagerank import pagerank
from repro.mining.proximity import pairwise_proximity_matrix
from repro.mining.rwr import per_source_rwr, rwr_exact, rwr_power_iteration

AUTHORS = 900
SEED = 29
REPEATS = 7
MULTI_SOURCES = 8
#: Warm may exceed cold by this factor before the gate trips.  The
#: prepared path strictly does less work, but several rows are dominated
#: by work preparation cannot touch (spsolve, BFS sweeps, path search),
#: where shared CI runners jitter medians well past 10% — the gate exists
#: to catch a *regression* (prepared meaningfully slower than cold), not
#: to referee scheduler noise on near-parity rows.
NOISE_TOLERANCE = 1.25
#: Acceptance criterion: warm multi-source RWR vs the pre-PR path.
MULTI_SOURCE_GATE = 3.0


def median_seconds(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _large_case(authors: int):
    """A larger graph + prepared view + sources for the blocking-only row."""
    dataset = generate_dblp(DBLPConfig(num_authors=authors, seed=SEED))
    prepared = PreparedGraph.from_graph(dataset.graph)
    prepared.transition
    rng = random.Random(SEED)
    nodes = sorted(dataset.graph.nodes(), key=repr)
    return dataset.graph, prepared, rng.sample(nodes, MULTI_SOURCES)


def main() -> int:
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    graph = dataset.graph
    rng = random.Random(SEED)
    nodes = sorted(graph.nodes(), key=repr)
    sources = rng.sample(nodes, MULTI_SOURCES)
    pair = rng.sample(nodes, 2)

    prepare_start = time.perf_counter()
    prepared = PreparedGraph.from_graph(graph)
    prepared.transition  # build the view the walk kernels use
    prepare_seconds = time.perf_counter() - prepare_start

    # Metrics is the paper's details-on-demand suite for a *focused
    # community*, so it is benched at community scale; on the full graph
    # its cost is dominated by the exact-diameter BFS sweeps the prepared
    # layer deliberately leaves untouched, and the cold/warm comparison
    # would only measure BFS timer noise.
    community = graph.subgraph(nodes[:300], name="bench-community")
    community_prepared = PreparedGraph.from_graph(community)

    # (op, cold callable, warm callable) — cold re-derives matrices per
    # call, warm reuses the PreparedGraph.  The multi-source rows pin the
    # pre-PR per-source loop (blocked=False, no prepared) against the
    # blocked solver over the prepared matrix.
    rows = [
        ("rwr_single_8src",
         lambda: rwr_power_iteration(graph, sources),
         lambda: rwr_power_iteration(graph, sources, prepared=prepared)),
        ("rwr_multi_8src",
         lambda: per_source_rwr(graph, sources, blocked=False),
         lambda: per_source_rwr(graph, sources, prepared=prepared)),
        ("rwr_exact_2src",
         lambda: rwr_exact(graph, pair),
         lambda: rwr_exact(graph, pair, prepared=prepared)),
        ("pagerank",
         lambda: pagerank(graph),
         lambda: pagerank(graph, prepared=prepared)),
        ("metrics_suite_community",
         lambda: compute_subgraph_metrics(community, hop_sample_size=32),
         lambda: compute_subgraph_metrics(
             community, hop_sample_size=32, prepared=community_prepared)),
        ("connection_subgraph",
         lambda: extract_connection_subgraph(graph, sources[:3], budget=30),
         lambda: extract_connection_subgraph(
             graph, sources[:3], budget=30, prepared=prepared)),
        ("pairwise_proximity_6",
         lambda: pairwise_proximity_matrix(graph, sources[:6]),
         lambda: pairwise_proximity_matrix(
             graph, sources[:6], prepared=prepared)),
        ("delivered_current",
         lambda: extract_delivered_current(graph, pair[0], pair[1], budget=20),
         lambda: extract_delivered_current(
             graph, pair[0], pair[1], budget=20, prepared=prepared)),
    ]

    report = {
        "benchmark": "prepared_kernels",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "dataset": {
            "authors": AUTHORS,
            "seed": SEED,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
        "prepare_seconds": round(prepare_seconds, 6),
        "ops": {},
    }

    failures = []
    for name, cold, warm in rows:
        cold_median = median_seconds(cold)
        warm_median = median_seconds(warm)
        speedup = cold_median / warm_median if warm_median > 0 else float("inf")
        report["ops"][name] = {
            "cold_median_seconds": round(cold_median, 6),
            "warm_median_seconds": round(warm_median, 6),
            "speedup": round(speedup, 2),
        }
        print(f"{name:>22}: cold {cold_median * 1e3:8.2f} ms | "
              f"warm {warm_median * 1e3:8.2f} ms | {speedup:5.1f}x")
        if warm_median > cold_median * NOISE_TOLERANCE:
            failures.append(
                f"{name}: prepared path slower than cold "
                f"({warm_median:.4f}s > {cold_median:.4f}s)"
            )

    # Isolate the blocking win: both sides warm (prepared), loop vs one
    # dense block.  Measured on the benchmark graph and on a larger one:
    # at 900 authors per-iteration python overhead dominates and the two
    # are near par — the bulk of the 8-source speedup there is conversion
    # avoidance — while on bigger graphs the single CSR traversal per
    # step pulls ahead.  Reported per size, honestly.
    report["blocked_vs_looped"] = {}
    for label, bench_graph, bench_prepared, bench_sources in (
        ("benchmark_graph", graph, prepared, sources),
        *(
            (f"authors_{large_authors}",) + _large_case(large_authors)
            for large_authors in (4000,)
        ),
    ):
        warm_looped = median_seconds(
            lambda: per_source_rwr(
                bench_graph, bench_sources, blocked=False,
                prepared=bench_prepared,
            ),
            repeats=3,
        )
        warm_blocked = median_seconds(
            lambda: per_source_rwr(
                bench_graph, bench_sources, prepared=bench_prepared
            ),
            repeats=3,
        )
        entry = {
            "warm_looped_median_seconds": round(warm_looped, 6),
            "warm_blocked_median_seconds": round(warm_blocked, 6),
            "speedup": round(warm_looped / warm_blocked, 2),
        }
        report["blocked_vs_looped"][label] = entry
        print(f"{'blocked_vs_looped':>22}: {label}: "
              f"looped {warm_looped * 1e3:7.2f} ms | "
              f"blocked {warm_blocked * 1e3:7.2f} ms | {entry['speedup']:.2f}x")
    print(f"{'prepare (one-time)':>22}: {prepare_seconds * 1e3:8.2f} ms")

    multi = report["ops"]["rwr_multi_8src"]["speedup"]
    report["acceptance"] = {
        "warm_multi_source_speedup": multi,
        "required": MULTI_SOURCE_GATE,
        "passed": multi >= MULTI_SOURCE_GATE,
    }
    if multi < MULTI_SOURCE_GATE:
        failures.append(
            f"warm multi-source RWR speedup {multi}x is below the "
            f"{MULTI_SOURCE_GATE}x acceptance bar"
        )
    print(f"warm multi-source RWR ({MULTI_SOURCES} sources) vs pre-PR "
          f"per-source path: {multi}x (gate: >= {MULTI_SOURCE_GATE}x)")

    report["failures"] = failures
    output = Path(__file__).parent / "BENCH_kernels.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

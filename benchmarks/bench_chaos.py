"""Chaos benchmark: typed outcomes and bounded latency under injected faults.

Drives the service through three adversarial phases and emits
``BENCH_chaos.json`` next to this file:

* **degraded serving** — a seeded :class:`~repro.service.faults.FaultPlan`
  fails 20% of backend computations; every request must still resolve to a
  typed outcome (fresh success, ``degraded`` stale serve, or a 4xx/5xx
  envelope from the error taxonomy) and never an unhandled 500.  Reports
  per-request wall latency (p50/p99) against the request deadline budget.
* **overload shedding** — a threaded HTTP front-end capped at
  ``--max-inflight 2`` takes concurrent fire from 8 client threads;
  reports the shed rate and verifies every shed is a 503 ``OVERLOADED``
  envelope, never a socket error or a 500.
* **injector overhead** — the same cached query stream with no injector
  vs an attached-but-ruleless plan; the disabled seams must cost ~nothing
  (acceptance gate: <= 2% on the cached path).

Gates (recorded in the JSON, asserted by ``make bench-chaos``):
``zero_500s`` and ``p99_within_deadline``.

Run it:  ``PYTHONPATH=src python benchmarks/bench_chaos.py``
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.api import FrontendPolicy, GMineClient, GMineHTTPServer
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import ServiceError
from repro.service import FaultPlan, GMineService

AUTHORS = 400
SEED = 2026
FAILURE_RATE = 0.2
DEADLINE_MS = 250.0
CACHE_TTL = 30.0
CHAOS_ROUNDS = 12
OVERLOAD_THREADS = 8
OVERLOAD_REQUESTS = 200
OVERHEAD_REQUESTS = 3000


class ManualClock:
    """Deterministic service clock so cache expiry is driven, not slept."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


def _build():
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=SEED)
    return dataset, tree


def _queries(tree):
    leaves = sorted(tree.leaves(), key=lambda node: node.label)
    queries = [("metrics", {"community": leaf.label}) for leaf in leaves[:6]]
    hot = max(leaves, key=lambda node: node.size)
    members = list(hot.members)
    queries += [
        ("rwr", {"sources": [members[i], members[i + 1]],
                 "community": hot.label})
        for i in range(3)
    ]
    return queries


def chaos_phase(dataset, tree) -> dict:
    clock = ManualClock()
    plan = FaultPlan(seed=SEED, sleep=lambda s: None)
    outcomes = {"ok": 0, "degraded": 0, "deadline_exceeded": 0,
                "overloaded": 0, "other_typed_error": 0, "untyped_500": 0}
    latencies = []
    with GMineService(cache_ttl=CACHE_TTL, clock=clock,
                      fault_injector=plan) as service:
        service.register_tree(tree, graph=dataset.graph, name="dblp")
        with GMineClient.in_process(service) as client:
            queries = _queries(tree)
            for op, args in queries:  # prime: stale fallbacks must exist
                reply = client.query(op, dataset="dblp", args=args)
                assert reply.ok, reply.error
            plan.on("worker.run", probability=FAILURE_RATE,
                    error=ServiceError("injected backend outage"))
            for _ in range(CHAOS_ROUNDS):
                clock.advance(CACHE_TTL + 1.0)  # expire: force recomputes
                for op, args in queries:
                    start = time.perf_counter()
                    reply = client.query(op, dataset="dblp", args=args,
                                         timeout=DEADLINE_MS / 1000.0)
                    latencies.append((time.perf_counter() - start) * 1000.0)
                    if reply.ok:
                        outcomes["degraded" if reply.degraded else "ok"] += 1
                    elif reply.error.code == "DEADLINE_EXCEEDED":
                        outcomes["deadline_exceeded"] += 1
                    elif reply.error.code == "OVERLOADED":
                        outcomes["overloaded"] += 1
                    elif reply.error.code == "INTERNAL":
                        outcomes["untyped_500"] += 1
                    else:
                        outcomes["other_typed_error"] += 1
        stale_serves = service.stats()["resilience"]["stale_serves"]
    total = len(latencies)
    return {
        "requests": total,
        "injected_failure_rate": FAILURE_RATE,
        "injected_failures": plan.fired("worker.run"),
        "outcomes": outcomes,
        "degraded_rate": round(outcomes["degraded"] / total, 4),
        "error_rate": round(
            (outcomes["deadline_exceeded"] + outcomes["overloaded"]
             + outcomes["other_typed_error"] + outcomes["untyped_500"])
            / total, 4),
        "stale_serves": stale_serves,
        "deadline_budget_ms": DEADLINE_MS,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(max(latencies), 3),
        },
    }


def overload_phase(dataset, tree) -> dict:
    counts = {"ok": 0, "shed_503": 0, "other": 0}
    with GMineService(max_workers=4) as service:
        service.register_tree(tree, graph=dataset.graph, name="dblp")
        policy = FrontendPolicy(max_inflight=2)
        hot = max(tree.leaves(), key=lambda node: node.size)
        body = {"op": "rwr", "dataset": "dblp",
                "args": {"sources": list(hot.members[:2]),
                         "community": hot.label}}
        with GMineHTTPServer(service, port=0, policy=policy) as server:
            def one(_index):
                with GMineClient.http(server.url) as client:
                    status, payload, _ = client.transport.call(
                        "POST", "/v1/query", body
                    )
                    if status == 200 and payload.get("ok"):
                        return "ok"
                    error = payload.get("error") or {}
                    if status == 503 and error.get("code") == "OVERLOADED":
                        assert error["details"]["retry_after"] >= 1.0
                        return "shed_503"
                    return "other"

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=OVERLOAD_THREADS) as pool:
                for outcome in pool.map(one, range(OVERLOAD_REQUESTS)):
                    counts[outcome] += 1
            elapsed = time.perf_counter() - start
        shed = policy.describe()["shed"]
    return {
        "requests": OVERLOAD_REQUESTS,
        "threads": OVERLOAD_THREADS,
        "max_inflight": 2,
        "outcomes": counts,
        "shed_rate": round(counts["shed_503"] / OVERLOAD_REQUESTS, 4),
        "policy_shed_counter": shed,
        "elapsed_s": round(elapsed, 3),
    }


def overhead_phase(dataset, tree) -> dict:
    def cached_run(injector):
        with GMineService(fault_injector=injector) as service:
            service.register_tree(tree, graph=dataset.graph, name="dblp")
            with GMineClient.in_process(service) as client:
                hot = max(tree.leaves(), key=lambda node: node.size)
                args = {"community": hot.label}
                client.query("metrics", dataset="dblp", args=args)  # warm
                start = time.perf_counter()
                for _ in range(OVERHEAD_REQUESTS):
                    reply = client.query("metrics", dataset="dblp", args=args)
                    assert reply.ok
                return time.perf_counter() - start

    # Interleave A/B/A/B and keep the best of each: the cached path is
    # microseconds per call, so scheduler noise dominates single runs.
    base = min(cached_run(None) for _ in range(3))
    armed = min(cached_run(FaultPlan(seed=SEED)) for _ in range(3))
    overhead = (armed - base) / base
    return {
        "requests": OVERHEAD_REQUESTS,
        "disabled_injector_s": round(armed, 4),
        "no_injector_s": round(base, 4),
        "overhead_pct": round(overhead * 100.0, 2),
    }


def main() -> None:
    dataset, tree = _build()
    chaos = chaos_phase(dataset, tree)
    overload = overload_phase(dataset, tree)
    overhead = overhead_phase(dataset, tree)
    report = {
        "benchmark": "chaos",
        "protocol": "gmine/1",
        "dataset": {
            "authors": AUTHORS,
            "nodes": dataset.graph.num_nodes,
            "edges": dataset.graph.num_edges,
        },
        "chaos": chaos,
        "overload": overload,
        "injector_overhead": overhead,
        "gates": {
            "zero_500s": chaos["outcomes"]["untyped_500"] == 0
            and overload["outcomes"]["other"] == 0,
            "p99_within_deadline":
                chaos["latency_ms"]["p99"] <= DEADLINE_MS,
        },
    }
    out = Path(__file__).parent / "BENCH_chaos.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not all(report["gates"].values()):
        raise SystemExit(f"chaos gates failed: {report['gates']}")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

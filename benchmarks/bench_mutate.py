"""Mutable-dataset benchmark: incremental edits vs full rebuilds.

Drives the registry write path (``dataset.apply``) on a warm service and
measures what partition-scoped invalidation actually buys:

* **survival** — warm every partition-scoped cache entry (one metrics
  entry per leaf community) plus the root-scoped working set, apply a
  **single-edge** intra-community edit, then re-ask everything and count
  recomputations.  Entries for untouched communities must be served from
  cache — the Merkle sub-fingerprints they are keyed by did not change.
* **latency** — the median wall time to go from "edit decided" to "every
  working-set answer current" on the incremental path
  (``dataset.apply`` + re-query, touched entries recompute, the rest
  hit) vs the pre-mutability **full rebuild** (clone the graph + tree,
  edit out-of-band, register the result in a fresh service, answer the
  whole working set cold).
* **RWR refresh** — the time a remembered steady-state query costs after
  an edit with ``refresh_rwr=True`` (warm-refreshed during apply) vs
  after a plain edit (cold solve on next ask).

Exit status is the CI gate: non-zero when a one-edge edit invalidates
**50% or more** of the warm working set — the acceptance criterion for
partition-scoped invalidation (a root-fingerprint scheme invalidates
100% on any edit).

Emits ``BENCH_mutate.json`` next to this file.

Run it:  ``PYTHONPATH=src python benchmarks/bench_mutate.py``
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.core.builder import build_gtree
from repro.core.editing import GraphEditor, apply_edit_script
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.service import GMineService

AUTHORS = 600
SEED = 37
FANOUT = 3
LEVELS = 3
REPEATS = 5
#: The gate: a single-edge edit may invalidate strictly less than this
#: fraction of the warm working set.
MAX_INVALIDATED_FRACTION = 0.5


def build_working_set(tree, graph):
    """Every leaf's metrics plus the root-scoped ops — the warm entries."""
    sources = sorted(graph.nodes(), key=repr)[:4]
    queries = [
        ("metrics", {"community": leaf.label}) for leaf in tree.leaves()
    ]
    queries += [
        ("connectivity", {}),
        ("metrics", {"hop_sample_size": 32}),
        ("rwr", {"sources": sources}),
    ]
    return queries


def run_queries(service, queries):
    for op, args in queries:
        service.call(op, **args)


def computed(service):
    return sum(service.compute_counts.values())


def intra_leaf_edge(graph, leaf):
    members = set(leaf.members)
    return next(
        (u, v, w) for u, v, w in graph.edges() if u in members and v in members
    )


def main() -> int:
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    graph = dataset.graph
    tree = build_gtree(graph, fanout=FANOUT, levels=LEVELS, seed=SEED)
    queries = build_working_set(tree, graph)
    leaf = tree.leaves()[0]
    u, v, w = intra_leaf_edge(graph, leaf)

    def toggle(step):
        """Alternating single-edge re-weights: every apply changes content."""
        return [{"action": "add_edge", "u": u, "v": v,
                 "weight": w + 1.0 + (step % 2)}]

    report = {
        "benchmark": "mutable_datasets",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "dataset": {
            "authors": AUTHORS,
            "seed": SEED,
            "fanout": FANOUT,
            "levels": LEVELS,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "leaves": len(tree.leaves()),
        },
        "working_set_entries": len(queries),
    }
    failures = []

    # ------------------------------------------------------------------ #
    # survival: one edge, how much of the warm cache dies?
    # ------------------------------------------------------------------ #
    with GMineService() as service:
        service.register_tree(tree, graph=graph, name="g")
        run_queries(service, queries)
        warm = computed(service)
        assert warm == len(queries), "warm-up must compute every entry once"

        apply_report = service.apply_dataset("g", toggle(0))
        assert apply_report["changed"]
        before = computed(service)
        requery_start = time.perf_counter()
        run_queries(service, queries)
        first_requery_seconds = time.perf_counter() - requery_start
        recomputed = computed(service) - before
        invalidated_fraction = recomputed / len(queries)

        report["single_edge_edit"] = {
            "invalidated_cache_entries": apply_report["invalidated"],
            "recomputed_entries": recomputed,
            "surviving_entries": len(queries) - recomputed,
            "surviving_fraction": round(1.0 - invalidated_fraction, 4),
            "invalidated_fraction": round(invalidated_fraction, 4),
            "touched_communities": len(apply_report["touched_communities"]),
            "changed_partitions": len(apply_report["changed_partitions"]),
        }
        print(f"single-edge edit: {recomputed}/{len(queries)} entries "
              f"recomputed ({invalidated_fraction:.1%} invalidated, "
              f"{1.0 - invalidated_fraction:.1%} served warm)")
        if invalidated_fraction >= MAX_INVALIDATED_FRACTION:
            failures.append(
                f"a 1-edge edit invalidated {invalidated_fraction:.1%} of the "
                f"warm working set (gate: < {MAX_INVALIDATED_FRACTION:.0%})"
            )

        # -------------------------------------------------------------- #
        # incremental latency: apply + bring the working set current
        # -------------------------------------------------------------- #
        apply_times, requery_times = [], []
        for step in range(1, REPEATS + 1):
            start = time.perf_counter()
            assert service.apply_dataset("g", toggle(step))["changed"]
            apply_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            run_queries(service, queries)
            requery_times.append(time.perf_counter() - start)
        incremental_apply = statistics.median(apply_times)
        incremental_requery = statistics.median(requery_times)

    # ------------------------------------------------------------------ #
    # full-rebuild latency: the pre-mutability path for the same edit
    # ------------------------------------------------------------------ #
    rebuild_times = []
    for step in range(REPEATS):
        start = time.perf_counter()
        rebuilt_graph = graph.copy()
        rebuilt_tree = tree.clone()
        apply_edit_script(
            GraphEditor(rebuilt_graph, rebuilt_tree), toggle(step)
        )
        with GMineService() as cold:
            cold.register_tree(rebuilt_tree, graph=rebuilt_graph, name="g")
            run_queries(cold, queries)
        rebuild_times.append(time.perf_counter() - start)
    full_rebuild = statistics.median(rebuild_times)

    incremental_total = incremental_apply + incremental_requery
    report["latency"] = {
        "incremental_apply_median_seconds": round(incremental_apply, 6),
        "incremental_requery_median_seconds": round(incremental_requery, 6),
        "incremental_total_median_seconds": round(incremental_total, 6),
        "first_requery_seconds": round(first_requery_seconds, 6),
        "full_rebuild_median_seconds": round(full_rebuild, 6),
        "speedup": round(full_rebuild / incremental_total, 2)
        if incremental_total > 0 else float("inf"),
    }
    print(f"incremental: apply {incremental_apply * 1e3:7.2f} ms + "
          f"requery {incremental_requery * 1e3:7.2f} ms | "
          f"full rebuild {full_rebuild * 1e3:8.2f} ms | "
          f"{report['latency']['speedup']:5.1f}x")

    # ------------------------------------------------------------------ #
    # RWR refresh: remembered steady states after the edit
    # ------------------------------------------------------------------ #
    sources = sorted(graph.nodes(), key=repr)[:4]
    timings = {}
    for mode, refresh in (("cold_solve", False), ("refreshed", True)):
        with GMineService() as service:
            service.register_tree(tree, graph=graph, name="g")
            service.call("rwr", sources=sources)  # remembered by the keeper
            apply_seconds_start = time.perf_counter()
            service.apply_dataset("g", toggle(0), refresh_rwr=refresh)
            apply_seconds = time.perf_counter() - apply_seconds_start
            start = time.perf_counter()
            service.call("rwr", sources=sources)
            timings[mode] = {
                "apply_seconds": round(apply_seconds, 6),
                "first_rwr_seconds": round(time.perf_counter() - start, 6),
            }
    report["rwr_refresh"] = timings
    print(f"post-edit rwr: cold "
          f"{timings['cold_solve']['first_rwr_seconds'] * 1e3:7.2f} ms | "
          f"refreshed {timings['refreshed']['first_rwr_seconds'] * 1e3:7.2f} ms"
          f" (refresh paid inside apply: "
          f"{timings['refreshed']['apply_seconds'] * 1e3:.2f} ms)")

    report["acceptance"] = {
        "invalidated_fraction": report["single_edge_edit"][
            "invalidated_fraction"
        ],
        "max_allowed": MAX_INVALIDATED_FRACTION,
        "passed": not failures,
    }
    report["failures"] = failures
    output = Path(__file__).parent / "BENCH_mutate.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLAIM-SCALE — "smaller parts of the graph are processed one at a time".

The paper's scalability argument is that the G-Tree lives in a single file
and only the visited communities are brought to memory.  This benchmark
persists G-Trees for growing graphs and compares an interactive session
(focus three communities) against eagerly loading every leaf: bytes read,
pages touched, and leaves materialised.  The lazy session's cost must stay
roughly flat while the eager cost grows with the graph.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.engine import GMineEngine
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.storage.gtree_store import GTreeStore, save_gtree

from conftest import report

SIZES = [1000, 2000, 4000]
VISITS = 3


def build_store(tmp_path, num_authors):
    dataset = generate_dblp(DBLPConfig(num_authors=num_authors, seed=11))
    tree = build_gtree(dataset.graph, fanout=5, levels=4, seed=11)
    path = tmp_path / f"dblp_{num_authors}.gtree"
    save_gtree(tree, path)
    return path, tree


def lazy_session(path):
    """Visit a fixed number of communities, as an interactive user would."""
    with GTreeStore(path, cache_capacity=8) as store:
        engine = GMineEngine.from_store(store)
        engine.focus_root()
        for leaf in store.tree.leaves()[:VISITS]:
            engine.focus_community(leaf.node_id)
            engine.community_subgraph()
        stats = store.stats
        return {
            "leaves_loaded": stats.leaves_loaded,
            "pages_read": stats.pager.pages_read,
            "bytes_read": stats.pager.bytes_read,
        }


def eager_session(path):
    with GTreeStore(path, cache_capacity=1_000_000) as store:
        for leaf in store.tree.leaves():
            store.load_leaf_subgraph(leaf.node_id)
        stats = store.stats
        return {
            "leaves_loaded": stats.leaves_loaded,
            "pages_read": stats.pager.pages_read,
            "bytes_read": stats.pager.bytes_read,
        }


@pytest.mark.benchmark(group="claim-scalability")
def test_claim_lazy_loading_scalability(benchmark, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("scalability")
    stores = {size: build_store(tmp_path, size) for size in SIZES}

    def run_lazy_sessions():
        return {size: lazy_session(path) for size, (path, _) in stores.items()}

    lazy = benchmark.pedantic(run_lazy_sessions, iterations=1, rounds=1)
    eager = {size: eager_session(path) for size, (path, _) in stores.items()}

    rows = []
    for size in SIZES:
        _, tree = stores[size]
        rows.append(
            {
                "authors": size,
                "leaf_communities": tree.num_leaves,
                "lazy_leaves_loaded": lazy[size]["leaves_loaded"],
                "lazy_KiB_read": lazy[size]["bytes_read"] / 1024,
                "eager_leaves_loaded": eager[size]["leaves_loaded"],
                "eager_KiB_read": eager[size]["bytes_read"] / 1024,
                "fraction_read": lazy[size]["bytes_read"] / max(eager[size]["bytes_read"], 1),
            }
        )
    report("CLAIM-SCALE: interactive (lazy) session vs loading everything", rows)

    # Shape: the lazy session touches a fixed number of communities regardless
    # of graph size and therefore reads only a small fraction of the file.
    # (The skeleton — community metadata and member lists — is always read, so
    # the fraction does not go to zero; the leaf payloads, which dominate the
    # eager load, are what lazy loading avoids.)
    for row in rows:
        assert row["lazy_leaves_loaded"] == VISITS
        assert row["lazy_KiB_read"] < row["eager_KiB_read"]
        assert row["fraction_read"] < 0.5
    assert rows[-1]["eager_leaves_loaded"] > rows[0]["lazy_leaves_loaded"]

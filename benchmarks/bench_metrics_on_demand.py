"""METRICS — Section III-B's details-on-demand calculations.

"Our system supports the following calculations: degree distribution, number
of hops, number of weak components, number of strong components and page
rank calculation for the nodes."  This benchmark times the full metric suite
on a focused community (the interactive case the paper describes) and
cross-validates the results against networkx.
"""

import networkx as nx
import pytest

from repro.core.engine import GMineEngine
from repro.mining.metrics_suite import compute_subgraph_metrics

from conftest import report


@pytest.mark.benchmark(group="metrics-on-demand")
def test_metrics_on_demand_for_focused_community(benchmark, dblp, dblp_tree):
    engine = GMineEngine(dblp_tree, graph=dblp.graph)
    leaf = max(dblp_tree.leaves(), key=lambda node: node.size)
    subgraph = engine.community_subgraph(leaf.node_id)

    metrics = benchmark(lambda: compute_subgraph_metrics(subgraph, hop_sample_size=64))

    # Cross-validation against networkx on the same subgraph.
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(subgraph.nodes())
    nx_graph.add_weighted_edges_from(subgraph.edges())
    nx_components = nx.number_connected_components(nx_graph)
    nx_pagerank = nx.pagerank(nx_graph, alpha=0.85, weight="weight", tol=1e-10, max_iter=500)
    top_ours = metrics.top_pagerank[0][0]
    top_nx = max(nx_pagerank, key=nx_pagerank.get)

    report(
        "METRICS: details-on-demand for one community",
        [
            {
                "community": leaf.label,
                "nodes": metrics.degree_stats.num_nodes,
                "edges": metrics.degree_stats.num_edges,
                "max_degree": metrics.degree_stats.max_degree,
                "diameter": metrics.diameter,
                "weak_components": metrics.num_weak_components,
                "strong_components": metrics.num_strong_components,
                "top_pagerank_author": dblp.name_of(top_ours),
            }
        ],
    )
    report(
        "METRICS: cross-validation vs networkx",
        [
            {
                "metric": "weak components",
                "ours": metrics.num_weak_components,
                "networkx": nx_components,
            },
            {
                "metric": "top PageRank vertex",
                "ours": str(top_ours),
                "networkx": str(top_nx),
            },
        ],
    )

    assert metrics.num_weak_components == nx_components
    assert metrics.pagerank[top_nx] == pytest.approx(nx_pagerank[top_nx], abs=1e-4)
    assert metrics.num_strong_components == metrics.num_weak_components
    assert sum(metrics.degree_histogram.values()) == subgraph.num_nodes

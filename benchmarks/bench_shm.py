"""Shared-memory prepared graphs: worker attach vs rebuild, blocked exact RWR.

Two claims of the zero-copy PR are gated here, on the benchmark DBLP
graph (900 authors, seed 29 — the same graph the kernel and exec benches
drive):

* **attach vs rebuild** — a pool worker maps the parent's published
  segment (:meth:`~repro.graph.shm.SharedPreparedGraph.attach`) instead
  of re-deriving CSR matrices from the Python graph (the pre-PR warm
  path).  Both paths run in real pool workers (forkserver/spawn, the
  contexts the process backend uses); the gate requires the attach
  median to be at least ``ATTACH_GATE``x faster.  Workers also hash the
  mapped adjacency bytes — bit parity with the parent's copy — and
  report their RSS delta around each path (``/proc`` guarded; page
  granularity, reported honestly, not gated).
* **blocked exact RWR** — ``rwr_exact_block`` pays one LU factorization
  for k=8 source sets where the pre-PR loop factorized per set; the
  gate requires ``EXACT_BLOCK_GATE``x.  Column parity with the loop is
  asserted bitwise before timing counts.

``cpu_count`` is recorded honestly.  Exit status is the CI gate:
non-zero when any gate or parity check fails.  Emits ``BENCH_shm.json``
next to this file.

Run it:  ``PYTHONPATH=src python benchmarks/bench_shm.py``
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import statistics
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.data.dblp import DBLPConfig, generate_dblp
from repro.graph.matrix import PreparedGraph
from repro.graph.shm import SharedPreparedGraph, shared_memory_available
from repro.mining.rwr import per_source_rwr

AUTHORS = 900
SEED = 29
REPEATS = 5
EXACT_SOURCES = 8
#: Worker attach must beat the worker rebuild by at least this factor.
ATTACH_GATE = 5.0
#: One-factorization blocked exact solve vs the per-set factorizing loop.
EXACT_BLOCK_GATE = 2.0


def _rss_kb() -> int | None:
    """Resident set size in kB from /proc, or None off-Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _adjacency_digest(prepared: PreparedGraph) -> str:
    digest = hashlib.sha256()
    adjacency = prepared.adjacency.tocsr()
    for array in (adjacency.data, adjacency.indices, adjacency.indptr):
        digest.update(array.tobytes())
    return digest.hexdigest()


def _worker_attach(manifest) -> dict:
    """Time mapping the published segment (the post-PR warm path)."""
    rss_before = _rss_kb()
    start = time.perf_counter()
    view = SharedPreparedGraph.attach(manifest)
    seconds = time.perf_counter() - start
    rss_after = _rss_kb()
    digest = _adjacency_digest(view)
    view.release()
    return {
        "seconds": seconds,
        "digest": digest,
        "rss_delta_kb": (
            rss_after - rss_before
            if rss_before is not None and rss_after is not None else None
        ),
    }


def _worker_rebuild(graph) -> dict:
    """Time the pre-PR warm path: re-derive every matrix from the graph."""
    rss_before = _rss_kb()
    start = time.perf_counter()
    prepared = PreparedGraph.from_graph(graph)
    prepared.degrees
    prepared.transition
    seconds = time.perf_counter() - start
    rss_after = _rss_kb()
    return {
        "seconds": seconds,
        "digest": _adjacency_digest(prepared),
        "rss_delta_kb": (
            rss_after - rss_before
            if rss_before is not None and rss_after is not None else None
        ),
    }


def _pool_context():
    if "forkserver" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


def main() -> int:
    if not shared_memory_available():  # pragma: no cover - platform guard
        print("shared memory unavailable on this platform; nothing to bench",
              file=sys.stderr)
        return 1
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    graph = dataset.graph
    failures: list[str] = []

    prepared = PreparedGraph.from_graph(graph, fingerprint="bench-shm")
    prepared.degrees
    prepared.transition
    expected_digest = _adjacency_digest(prepared)

    publish_start = time.perf_counter()
    shared = SharedPreparedGraph.publish(prepared)
    publish_seconds = time.perf_counter() - publish_start
    manifest = shared.manifest
    import pickle

    manifest_bytes = len(pickle.dumps(manifest))

    # Fresh single-worker pools per path keep the comparison clean: every
    # task lands in the same (only) worker, and neither path inherits the
    # other's page cache warmth beyond what a real warm() call would.
    attach_runs: list[dict] = []
    rebuild_runs: list[dict] = []
    context = _pool_context()
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        pool.submit(os.getpid).result()  # absorb worker start-up
        for _ in range(REPEATS):
            attach_runs.append(pool.submit(_worker_attach, manifest).result())
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        pool.submit(os.getpid).result()
        for _ in range(REPEATS):
            rebuild_runs.append(pool.submit(_worker_rebuild, graph).result())

    attach_median = statistics.median(run["seconds"] for run in attach_runs)
    rebuild_median = statistics.median(run["seconds"] for run in rebuild_runs)
    attach_speedup = (
        rebuild_median / attach_median if attach_median > 0 else float("inf")
    )
    print(f"{'worker attach':>22}: {attach_median * 1e3:8.3f} ms | "
          f"rebuild {rebuild_median * 1e3:8.3f} ms | {attach_speedup:6.1f}x")
    if attach_speedup < ATTACH_GATE:
        failures.append(
            f"worker attach speedup {attach_speedup:.1f}x is below the "
            f"{ATTACH_GATE}x acceptance bar"
        )
    for label, runs in (("attach", attach_runs), ("rebuild", rebuild_runs)):
        for run in runs:
            if run["digest"] != expected_digest:
                failures.append(
                    f"{label}: worker adjacency bytes differ from the parent's"
                )
                break

    # Blocked exact RWR: one factorization for k source sets vs the
    # pre-PR loop (one factorization per set).  Parity first, bitwise.
    rng = random.Random(SEED)
    nodes = sorted(graph.nodes(), key=repr)
    sources = rng.sample(nodes, EXACT_SOURCES)
    blocked_results = per_source_rwr(
        graph, sources, solver="exact", prepared=prepared
    )
    looped_results = per_source_rwr(
        graph, sources, solver="exact", blocked=False
    )
    for source in sources:
        if blocked_results[source].scores != looped_results[source].scores:
            failures.append(
                f"blocked exact RWR diverges from the per-source loop "
                f"at source {source!r}"
            )
            break

    def blocked() -> None:
        per_source_rwr(graph, sources, solver="exact", prepared=prepared)

    def looped() -> None:
        per_source_rwr(graph, sources, solver="exact", blocked=False)

    blocked_median = statistics.median(
        _timed(blocked) for _ in range(REPEATS)
    )
    looped_median = statistics.median(_timed(looped) for _ in range(REPEATS))
    exact_speedup = (
        looped_median / blocked_median if blocked_median > 0 else float("inf")
    )
    print(f"{'blocked exact k=8':>22}: {blocked_median * 1e3:8.3f} ms | "
          f"looped {looped_median * 1e3:8.3f} ms | {exact_speedup:6.1f}x")
    if exact_speedup < EXACT_BLOCK_GATE:
        failures.append(
            f"blocked exact RWR speedup {exact_speedup:.1f}x is below the "
            f"{EXACT_BLOCK_GATE}x acceptance bar"
        )
    print(f"{'publish (one-time)':>22}: {publish_seconds * 1e3:8.3f} ms | "
          f"segment {manifest.total_bytes} B | manifest pickle "
          f"{manifest_bytes} B")

    report = {
        "benchmark": "shared_prepared",
        "protocol": "gmine/1",
        "cpu_count": os.cpu_count(),
        "start_method": context.get_start_method(),
        "repeats": REPEATS,
        "dataset": {
            "authors": AUTHORS,
            "seed": SEED,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
        "publish_seconds": round(publish_seconds, 6),
        "segment_bytes": manifest.total_bytes,
        "manifest_pickle_bytes": manifest_bytes,
        "worker_attach": {
            "attach_median_seconds": round(attach_median, 6),
            "rebuild_median_seconds": round(rebuild_median, 6),
            "speedup": round(attach_speedup, 2),
            "required": ATTACH_GATE,
            "attach_rss_delta_kb": [r["rss_delta_kb"] for r in attach_runs],
            "rebuild_rss_delta_kb": [r["rss_delta_kb"] for r in rebuild_runs],
            "bit_parity": not any("bytes differ" in f for f in failures),
        },
        "exact_block": {
            "sources": EXACT_SOURCES,
            "blocked_median_seconds": round(blocked_median, 6),
            "looped_median_seconds": round(looped_median, 6),
            "speedup": round(exact_speedup, 2),
            "required": EXACT_BLOCK_GATE,
            "bit_parity": not any("diverges" in f for f in failures),
        },
        "failures": failures,
    }
    shared.release()
    output = Path(__file__).parent / "BENCH_shm.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


if __name__ == "__main__":
    sys.exit(main())

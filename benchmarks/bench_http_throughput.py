"""HTTP front-end throughput: cached vs uncached RWR, every transport.

Starts the GMine Protocol HTTP servers over a synthetic DBLP dataset and
measures end-to-end requests/sec for

* **uncached** RWR — every request names a distinct source pair, so each
  one pays a full power-iteration solve;
* **cached** RWR — one hot request repeated, answered from the shared
  ``ResultCache`` after the first computation;

over the threaded-HTTP transport, the asyncio-HTTP transport (Protocol v2,
same wire bytes from one event loop) and, for reference, the in-process
transport (protocol overhead without the socket).  Sequential and
small-thread-pool concurrent rates are both reported, plus the streamed
full-vector rate (``/v1/stream`` cursor chunks vs the one-shot body).

Emits ``BENCH_http.json`` next to this file — the start of the service's
performance trajectory (ROADMAP: "as fast as the hardware allows").

Run it:  ``PYTHONPATH=src python benchmarks/bench_http_throughput.py``
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.api import GMineAsyncHTTPServer, GMineClient, GMineHTTPServer
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.service import GMineService

AUTHORS = 600
SEED = 17
UNCACHED_REQUESTS = 24
CACHED_REQUESTS = 200
CONCURRENCY = 4


def _rate(count: int, elapsed: float) -> float:
    return round(count / elapsed, 2) if elapsed > 0 else float("inf")


def _run_sequential(client: GMineClient, requests) -> float:
    start = time.perf_counter()
    for request in requests:
        reply = client.query(request["op"], args=request["args"])
        assert reply.ok, reply.error
    return time.perf_counter() - start


def _run_concurrent(client: GMineClient, requests, workers: int) -> float:
    def one(request):
        reply = client.query(request["op"], args=request["args"])
        assert reply.ok, reply.error

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(one, requests))
    return time.perf_counter() - start


def main() -> None:
    dataset = generate_dblp(DBLPConfig(num_authors=AUTHORS, seed=SEED))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=SEED)
    leaf = max(tree.leaves(), key=lambda node: node.size)
    members = list(leaf.members)

    # distinct source pairs -> every request computes; one hot pair -> cache
    uncached = [
        {"op": "rwr",
         "args": {"sources": [members[i], members[i + 1]],
                  "community": leaf.label}}
        for i in range(UNCACHED_REQUESTS)
    ]
    hot = {"op": "rwr",
           "args": {"sources": members[:2], "community": leaf.label}}
    cached = [hot] * CACHED_REQUESTS

    report = {
        "benchmark": "http_throughput",
        "protocol": "gmine/1",
        "dataset": {
            "authors": AUTHORS,
            "nodes": dataset.graph.num_nodes,
            "edges": dataset.graph.num_edges,
            "hot_leaf": leaf.label,
            "hot_leaf_size": leaf.size,
        },
        "requests": {
            "uncached": UNCACHED_REQUESTS,
            "cached": CACHED_REQUESTS,
            "concurrency": CONCURRENCY,
        },
        "transports": {},
    }

    with GMineService(max_workers=CONCURRENCY) as service:
        service.register_tree(tree, graph=dataset.graph, name="dblp")
        with GMineHTTPServer(service, port=0) as server, \
                GMineAsyncHTTPServer(service, port=0) as aio_server:
            transports = {
                "http": GMineClient.http(server.url),
                "http_asyncio": GMineClient.http(aio_server.url),
                "in_process": GMineClient.in_process(service),
            }
            for name, client in transports.items():
                service.cache.clear()
                uncached_elapsed = _run_sequential(client, uncached)
                client.query(hot["op"], args=hot["args"])  # warm the hot entry
                cached_elapsed = _run_sequential(client, cached)
                cached_concurrent = _run_concurrent(client, cached, CONCURRENCY)
                entry = {
                    "uncached_rps": _rate(len(uncached), uncached_elapsed),
                    "cached_rps": _rate(len(cached), cached_elapsed),
                    "cached_concurrent_rps": _rate(len(cached), cached_concurrent),
                    "cache_speedup": round(
                        (uncached_elapsed / len(uncached))
                        / (cached_elapsed / len(cached)),
                        1,
                    ),
                }
                # streamed full vector (cursor chunks) vs the one-shot body
                stream_runs = 20
                start = time.perf_counter()
                for _ in range(stream_runs):
                    merged = client.stream_result(
                        hot["op"], args=hot["args"], chunk_size=100
                    )
                stream_elapsed = time.perf_counter() - start
                total = len(merged["scores"])
                start = time.perf_counter()
                for _ in range(stream_runs):
                    client.query(
                        hot["op"], args=hot["args"], page={"top_k": total}
                    ).unwrap()
                one_shot_elapsed = time.perf_counter() - start
                entry["streamed_full_vector_rps"] = _rate(
                    stream_runs, stream_elapsed
                )
                entry["one_shot_full_vector_rps"] = _rate(
                    stream_runs, one_shot_elapsed
                )
                report["transports"][name] = entry
                print(f"{name:>12}: uncached {entry['uncached_rps']:>8} req/s | "
                      f"cached {entry['cached_rps']:>8} req/s | "
                      f"cached x{CONCURRENCY} threads "
                      f"{entry['cached_concurrent_rps']:>8} req/s | "
                      f"cache speedup {entry['cache_speedup']}x | "
                      f"stream {entry['streamed_full_vector_rps']:>7} req/s")
            stats = service.stats()
            report["cache_stats"] = stats["cache"]

    output = Path(__file__).parent / "BENCH_http.json"
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()

"""FIG6 — Figure 6: extraction combined with hierarchical visualization.

(a) a 200-node subgraph is extracted from DBLP, (b) presented as three
partitions, (c) one level down, (d) zoomed to the actual nodes.  This
benchmark times the combined pipeline and reports the community sizes at
each drill-down step.
"""

import pytest

from repro.core.builder import build_gtree
from repro.core.engine import GMineEngine
from repro.mining.connection_subgraph import extract_connection_subgraph

from conftest import report


def combined_pipeline(dblp):
    graph = dblp.graph
    sources = [author for author, _, _ in dblp.most_collaborative_authors(4)]
    extraction = extract_connection_subgraph(graph, sources, budget=200)
    tree = build_gtree(extraction.subgraph, fanout=3, levels=3, seed=6)
    engine = GMineEngine(tree, graph=extraction.subgraph)
    engine.focus_root()
    steps = []
    steps.append(("a: extract", extraction.subgraph.num_nodes, extraction.subgraph.num_edges))
    level1 = tree.children(tree.root.node_id)
    steps.append(("b: partitioned", len(level1), sum(len(n.connectivity) for n in [tree.root])))
    engine.drill_down(0)
    steps.append(("c: one level down", len(engine.focus.children), len(engine.focus.connectivity)))
    while not engine.focus.is_leaf:
        engine.drill_down(0)
    leaf_graph = engine.community_subgraph()
    steps.append(("d: leaf nodes", leaf_graph.num_nodes, leaf_graph.num_edges))
    return extraction, tree, steps


@pytest.mark.benchmark(group="fig6-combined")
def test_fig6_extract_then_partition(benchmark, dblp):
    extraction, tree, steps = benchmark.pedantic(
        lambda: combined_pipeline(dblp), iterations=1, rounds=1
    )
    report(
        "FIG6: extraction + hierarchy drill-down",
        [{"panel": name, "items": a, "detail": b} for name, a, b in steps],
    )
    level1 = tree.children(tree.root.node_id)
    report(
        "FIG6(b): first-level communities of the extract",
        [{"community": node.label, "nodes": node.size} for node in level1],
    )

    # Shape checks: ~200-node extract, split into 3 top communities, and the
    # drill-down bottoms out at real graph nodes.
    assert extraction.num_nodes <= 200
    assert extraction.num_nodes >= 50
    assert len(level1) == 3
    assert steps[-1][1] > 0

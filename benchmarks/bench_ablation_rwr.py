"""ABL-RWR — ablation of the random-walk-with-restart machinery.

The connection-subgraph extractor rests on per-source RWR.  This ablation
answers two design questions the paper leaves implicit:

1. solver choice — does the cheap power iteration agree with the exact
   linear solve (and how much faster is it)?
2. restart probability — how sensitive are the goodness scores (and thus the
   extracted subgraph) to the restart parameter?
"""

import time

import numpy as np
import pytest

from repro.mining.connection_subgraph import extract_connection_subgraph
from repro.mining.rwr import rwr_exact, rwr_power_iteration

from conftest import report


def spearman(ranking_a, ranking_b):
    """Spearman rank correlation between two score dicts over the same keys."""
    keys = list(ranking_a)
    a = np.array([ranking_a[key] for key in keys])
    b = np.array([ranking_b[key] for key in keys])
    ranks_a = np.argsort(np.argsort(-a))
    ranks_b = np.argsort(np.argsort(-b))
    if len(keys) < 2:
        return 1.0
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


@pytest.mark.benchmark(group="ablation-rwr")
def test_ablation_rwr_solver_and_restart(benchmark, dblp):
    graph = dblp.graph
    source = dblp.most_collaborative_authors(1)[0][0]

    power = benchmark(lambda: rwr_power_iteration(graph, [source], restart_probability=0.15))

    start = time.perf_counter()
    exact = rwr_exact(graph, [source], restart_probability=0.15)
    exact_seconds = time.perf_counter() - start

    l1_gap = sum(abs(power.scores[node] - exact.scores[node]) for node in graph.nodes())
    rows = [
        {
            "solver": "power iteration",
            "iterations": power.iterations,
            "l1_gap_to_exact": 0.0 if power is exact else l1_gap,
        },
        {
            "solver": "exact (sparse LU)",
            "iterations": 0,
            "l1_gap_to_exact": 0.0,
        },
    ]
    report("ABL-RWR: solver agreement", rows)

    # Restart-probability sweep: rank correlation of goodness and extraction overlap.
    sources = [author for author, _, _ in dblp.most_collaborative_authors(3)]
    reference = extract_connection_subgraph(graph, sources, budget=30,
                                            restart_probability=0.15)
    sweep_rows = []
    for restart in (0.05, 0.15, 0.3, 0.5):
        result = extract_connection_subgraph(graph, sources, budget=30,
                                             restart_probability=restart)
        overlap = len(set(result.subgraph.nodes()) & set(reference.subgraph.nodes()))
        sweep_rows.append(
            {
                "restart_probability": restart,
                "goodness_rank_corr_vs_0.15": spearman(result.goodness, reference.goodness),
                "extract_overlap_vs_0.15": overlap / reference.num_nodes,
            }
        )
    report("ABL-RWR: restart-probability sweep", sweep_rows)

    # Shape: the two solvers agree to numerical precision, and the extraction
    # is stable across a reasonable restart range.
    assert l1_gap < 1e-6
    for row in sweep_rows:
        assert row["goodness_rank_corr_vs_0.15"] > 0.6
    middle = [row for row in sweep_rows if row["restart_probability"] in (0.15, 0.3)]
    for row in middle:
        assert row["extract_overlap_vs_0.15"] >= 0.6

"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one figure or quantitative claim of the paper
(see DESIGN.md's experiment index).  Alongside the pytest-benchmark timing,
each benchmark prints a small table of the quantities the paper reports —
the *shape* of those numbers (who wins, by what factor) is the reproduction
target, not their absolute values.

Dataset sizes here are reduced relative to the paper's 315,688-author DBLP
snapshot so the whole harness runs in minutes; pass ``--paper-scale`` to use
larger graphs (slower, closer to the paper's regime).
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks on larger graphs (closer to the paper's DBLP scale)",
    )


@pytest.fixture(scope="session")
def scale(request) -> int:
    """Number of synthetic authors used by the DBLP-based benchmarks."""
    return 40_000 if request.config.getoption("--paper-scale") else 4_000


@pytest.fixture(scope="session")
def dblp(scale):
    """The synthetic DBLP surrogate shared by the figure benchmarks."""
    return generate_dblp(DBLPConfig(num_authors=scale, seed=2006))


@pytest.fixture(scope="session")
def dblp_tree(dblp):
    """A fanout-5 G-Tree over the shared dataset (paper levels, reduced depth)."""
    levels = 4 if dblp.graph.num_nodes <= 10_000 else 5
    return build_gtree(dblp.graph, fanout=5, levels=levels, seed=2006)


def report(title: str, rows) -> None:
    """Print a small aligned table under a heading (visible with ``-s`` or on
    benchmark summaries; always written so ``tee``'d logs carry the numbers)."""
    print(f"\n=== {title} ===")
    rows = list(rows)
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), *(len(_fmt(row[header])) for row in rows))
        for header in headers
    }
    print("  ".join(str(header).ljust(widths[header]) for header in headers))
    for row in rows:
        print("  ".join(_fmt(row[header]).ljust(widths[header]) for header in headers))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)

#!/usr/bin/env python
"""Reproduce figure 5: multi-source connection subgraph extraction.

The paper queries the whole DBLP graph with three database researchers
("Philip S. Yu", "Flip Korn", "Minos N. Garofalakis") and displays a 30-node
connection subgraph that best captures how they are related — thousands of
times smaller than the original graph, with intermediaries like H. V.
Jagadish surfaced automatically.

This script does the same on the synthetic DBLP surrogate: it picks three
prolific authors from different sub-communities as the query set, extracts a
30-node connection subgraph, compares it against the pairwise
delivered-current baseline (KDD 2004), and renders the result.

Run:  python examples/connection_subgraph.py
"""

from pathlib import Path

from repro import generate_dblp
from repro.data import DBLPConfig
from repro.mining import (
    extract_connection_subgraph,
    extract_delivered_current,
    extraction_summary,
)
from repro.viz import render_subgraph, write_svg

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def pick_query_authors(dataset, count: int = 3):
    """Pick prolific authors from distinct sub-communities as the query set."""
    chosen = []
    seen_groups = set()
    for author, name, degree in dataset.most_collaborative_authors(count * 20):
        group = dataset.sub_community_of[author]
        if group in seen_groups:
            continue
        seen_groups.add(group)
        chosen.append((author, name, degree))
        if len(chosen) == count:
            break
    return chosen


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    dataset = generate_dblp(DBLPConfig(num_authors=3000, seed=5))
    graph = dataset.graph
    print(f"dataset: {graph.num_nodes} authors, {graph.num_edges} collaborations")

    query = pick_query_authors(dataset, count=3)
    sources = [author for author, _, _ in query]
    print("query set (the paper uses Philip S. Yu / Flip Korn / Minos N. Garofalakis):")
    for author, name, degree in query:
        print(f"    {name} (id {author}, {degree} collaborators)")

    # --- multi-source extraction (the paper's algorithm) ------------------ #
    result = extract_connection_subgraph(graph, sources, budget=30)
    summary = extraction_summary(result, graph)
    print(f"\nextracted {summary['extracted_nodes']:.0f} nodes / "
          f"{summary['extracted_edges']:.0f} edges "
          f"({summary['reduction_factor']:.0f}x smaller than the dataset), "
          f"{summary['num_paths']:.0f} important paths")

    # The most "in between" non-source author (the H. V. Jagadish role).
    intermediaries = sorted(
        (node for node in result.subgraph.nodes() if node not in set(sources)),
        key=lambda node: -result.goodness.get(node, 0.0),
    )
    if intermediaries:
        best = intermediaries[0]
        print(f"highest-goodness intermediary: {dataset.name_of(best)} "
              f"(goodness {result.goodness[best]:.3f}, "
              f"{result.subgraph.degree(best)} edges inside the extract)")

    scene = render_subgraph(
        result.subgraph,
        highlight=sources,
        node_scores=result.goodness,
        title="figure 5: multi-source connection subgraph",
    )
    path = write_svg(scene, OUTPUT_DIR / "fig5_connection_subgraph.svg")
    print(f"wrote {path}")

    # --- pairwise baseline (delivered current, KDD'04) -------------------- #
    baseline = extract_delivered_current(graph, sources[0], sources[1], budget=30)
    print(f"\npairwise delivered-current baseline ({dataset.name_of(sources[0])} ↔ "
          f"{dataset.name_of(sources[1])}): {baseline.num_nodes} nodes, "
          f"{len(baseline.paths)} paths")
    print("note: the baseline handles only two sources at a time — the paper's "
          "algorithm covers all three in one query.")


if __name__ == "__main__":
    main()

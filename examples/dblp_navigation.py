#!/usr/bin/env python
"""Reproduce the figure-3 navigation walkthrough on the synthetic DBLP graph.

The paper's figure 3 narrates six interaction steps on the DBLP hierarchy:

(a) the first hierarchy level: 5 communities and their 25 sub-communities,
    with some communities highly connected and others isolated,
(b) focusing community "s034" and checking how connected its children are,
(c) expanding it fully and finding the single outlier edge between two of
    its sub-communities, then inspecting the co-authorship behind it,
(d) a label query locating a specific prolific author,
(e) visiting that author's leaf community,
(f) discovering the author's strongest long-term collaborator.

This script performs the same six steps programmatically and renders each
display state to SVG under ``examples/output/``.

Run:  python examples/dblp_navigation.py
"""

from pathlib import Path

from repro import GMineEngine, build_gtree, generate_dblp
from repro.core import isolation_profile
from repro.data import DBLPConfig
from repro.viz import render_tomahawk_view, write_svg

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)

    # The paper partitions DBLP (315,688 authors) into 5 levels of 5-way
    # partitions.  We use the same fanout on a reduced synthetic snapshot so
    # the walkthrough runs in seconds; scale num_authors up to taste.
    dataset = generate_dblp(DBLPConfig(num_authors=2500, seed=11))
    graph = dataset.graph
    print(f"dataset: {graph.num_nodes} authors, {graph.num_edges} collaborations")

    tree = build_gtree(graph, fanout=5, levels=4, seed=11)
    engine = GMineEngine(tree, graph=graph)

    # ---------------------------------------------------------------- (a)
    context = engine.focus_root()
    level1 = tree.children(tree.root.node_id)
    profile = isolation_profile(
        graph, {child.node_id: child.members for child in level1}
    )
    print("\n(a) first-level communities and their connectivity degree:")
    for child in level1:
        print(f"    {child.label}: {child.size} authors, "
              f"connected to {profile[child.node_id]} sibling communities")
    write_svg(render_tomahawk_view(tree, context, graph=graph),
              OUTPUT_DIR / "fig3a_root.svg")

    # ---------------------------------------------------------------- (b)
    # Focus the community whose children are least connected to each other
    # (the paper's s034 is such an isolated community).
    def child_connectivity(node) -> int:
        return len(node.connectivity)

    internal = [node for node in tree.nodes() if not node.is_leaf and not node.is_root]
    target = min(internal, key=child_connectivity)
    context = engine.focus_community(target.label)
    print(f"\n(b) focused {target.label}: its {len(target.children)} sub-communities "
          f"share {len(target.connectivity)} connectivity edges")
    write_svg(render_tomahawk_view(tree, context, graph=graph),
              OUTPUT_DIR / "fig3b_focus.svg")

    # ---------------------------------------------------------------- (c)
    # Expand it and inspect an outlier edge between two of its children.
    if target.connectivity:
        edge = min(target.connectivity, key=lambda item: item.edge_count)
        inspection = engine.inspect_connectivity_edge(edge.source, edge.target)
        print(f"\n(c) outlier connectivity edge {inspection.community_a} ~ "
              f"{inspection.community_b} hides {len(inspection.edges)} real edges:")
        for endpoint in inspection.endpoints[:3]:
            u_name = endpoint["u_attrs"].get("name", endpoint["u"])
            v_name = endpoint["v_attrs"].get("name", endpoint["v"])
            year = endpoint["edge_attrs"].get("first_year", "?")
            print(f"    {u_name} — {v_name} (first joint publication {year})")
    else:
        print("\n(c) the focused community's children are totally isolated "
              "from each other (no connectivity edges)")

    # ---------------------------------------------------------------- (d)
    # Label query for a prolific author (the paper looks up Jiawei Han).
    author_id, author_name, degree = dataset.most_collaborative_authors(1)[0]
    result = engine.label_query(author_name)
    print(f"\n(d) label query {author_name!r} (degree {degree}): "
          f"community path {' > '.join(reversed(result.path_labels))}")

    # ---------------------------------------------------------------- (e)
    context = engine.locate_and_focus(author_name)
    metrics = engine.community_metrics()
    print(f"\n(e) author's community {engine.focus.label}: "
          f"{metrics.degree_stats.num_nodes} authors, "
          f"{metrics.num_weak_components} weak components, "
          f"diameter {metrics.diameter}")
    write_svg(
        render_tomahawk_view(tree, context, graph=graph, expand_focus_subgraph=True),
        OUTPUT_DIR / "fig3e_author_community.svg",
    )

    # ---------------------------------------------------------------- (f)
    collaborators = engine.strongest_neighbors(author_id, count=3)
    print(f"\n(f) strongest long-term collaborators of {author_name}:")
    for partner, weight in collaborators:
        print(f"    {dataset.name_of(partner)} ({weight:.0f} joint papers)")

    print(f"\nnavigation history: {[event.action for event in engine.history]}")
    print(f"SVG snapshots written to {OUTPUT_DIR}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Many concurrent exploration sessions over one shared G-Tree store.

The paper's GMine is a single-user GUI; the service layer grows it into a
multi-session query engine.  This example simulates a burst of concurrent
users against one store:

1. build a synthetic DBLP-like dataset and persist its G-Tree,
2. start a :class:`~repro.service.GMineService` over the single store file,
3. run N threads, each owning an independent session that navigates to a
   hot community and asks for metrics and an RWR steady state,
4. show that the expensive work was computed once per distinct question and
   every other request was a cache hit — and that the concurrent answers are
   identical to a sequential run.

Run:  python examples/concurrent_sessions.py
"""

import tempfile
import threading
from pathlib import Path

from repro import GMineService, build_gtree, generate_dblp, save_gtree
from repro.data import DBLPConfig

NUM_SESSIONS = 8


def explore(service: GMineService, leaf_label: str, members, results, position):
    """One simulated user: open a session, focus a community, mine it."""
    session = service.open_session(focus=leaf_label, name=f"user-{position}")
    metrics = session.recording.community_metrics(note="hot community")
    rwr = service.rwr(members, community=leaf_label)
    results[position] = (
        session.session_id,
        metrics.num_weak_components,
        round(sum(rwr.scores.values()), 6),
        metrics.diameter,
    )


def main() -> None:
    dataset = generate_dblp(DBLPConfig(num_authors=1200, seed=33))
    tree = build_gtree(dataset.graph, fanout=4, levels=3, seed=33)
    hot_leaf = max(tree.leaves(), key=lambda leaf: leaf.size)
    members = hot_leaf.members[:2]
    print(f"G-Tree: {tree.num_tree_nodes} communities; hot leaf {hot_leaf.label!r} "
          f"({hot_leaf.size} authors)")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "dblp.gtree"
        save_gtree(tree, store_path)

        with GMineService(max_workers=NUM_SESSIONS) as service:
            service.register_store(store_path, name="dblp")

            # --- sequential baseline (fresh service state) -------------- #
            baseline_metrics = service.metrics(community=hot_leaf.label)
            baseline_rwr = service.rwr(members, community=hot_leaf.label)
            service.cache.stats.reset()

            # --- concurrent burst --------------------------------------- #
            results = [None] * NUM_SESSIONS
            threads = [
                threading.Thread(
                    target=explore,
                    args=(service, hot_leaf.label, members, results, position),
                )
                for position in range(NUM_SESSIONS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            stats = service.stats()
            print(f"\n{NUM_SESSIONS} concurrent sessions, all asking the same "
                  "two questions:")
            for session_id, weak, mass, diameter in results:
                print(f"  {session_id}: weak_components={weak} "
                      f"rwr_mass={mass} diameter={diameter}")

            assert all(result[1:] == results[0][1:] for result in results), (
                "every session must see the same answers"
            )
            assert all(
                result[1] == baseline_metrics.num_weak_components
                and result[2] == round(sum(baseline_rwr.scores.values()), 6)
                for result in results
            ), "concurrent answers must match the sequential baseline"

            cache = stats["cache"]
            print(f"\ncache: {cache['hits']} hits + {cache['coalesced']} coalesced "
                  f"vs {cache['misses']} misses "
                  f"(hit rate {cache['hit_rate']:.0%})")
            print(f"computed per operation: {stats['computed']}")
            print(f"live sessions: {stats['sessions']['active']}")
            assert cache["hits"] + cache["coalesced"] >= 2 * NUM_SESSIONS - 2, (
                "all but the first ask of each question must be served "
                "from the cache"
            )
            print("\nconcurrent == sequential, expensive work computed once: OK")


if __name__ == "__main__":
    main()

"""Serve GMine over HTTP on every execution backend and prove parity.

This is the ``make serve-smoke`` gate.  It builds a small DBLP dataset,
persists it (store + graph file, so process workers can reopen it by
path), then **once per execution backend** — inline, thread, process —
starts the GMine Protocol HTTP front-end on an ephemeral port, fires a
batch of mixed queries twice (cold, then warm), and asserts

* every response is a structured ``gmine/1`` envelope,
* the warm pass is answered entirely from the shared result cache
  (cache-hit accounting via ``/v1/stats``),
* the in-process transport returns byte-identical payloads to HTTP,
* session navigation works end to end over the wire,
* failures (expired sessions, bad arguments) surface as typed,
  machine-readable error codes — never raw tracebacks, and
* **all three backends produce byte-identical response payloads** — the
  execution-engine-v2 guarantee that *where* a kernel runs (calling
  thread, kernel pool, warm worker process) never changes *what* the
  caller sees.

After the per-backend loop it smokes the **Protocol v2 front-end
surface**: the asyncio server answering a streamed cursor query whose
reassembly is byte-identical to the threaded server's one-shot payload,
session ops dispatched purely through the registry, and a
bearer-token + rate-limited server returning structured
``AUTH_REQUIRED``/``RATE_LIMITED`` envelopes.

It then smokes the **mutable-dataset surface** end to end over the
wire: an edit script applied through one front-end is observed through
the other via ``POST /v1/subscribe`` (threaded edit -> asyncio watcher,
then the mirror image), the change event's fingerprint matches both the
apply report and ``GET /v1/datasets``, and a watcher filtered to an
untouched community sees no events at all.

Finally it smokes the **GPath surface**: a fused ``rwr(...)/top(5)``
path query byte-identical across the threaded, asyncio and in-process
transports and equal to the direct ``rwr`` slice, parse errors as
structured ``QUERY_PARSE_ERROR`` envelopes with source spans on both
front-ends, and a CSV ingested through ``dataset.ingest`` on one
front-end immediately answering path queries on the other.

Run it:  ``PYTHONPATH=src python examples/http_service.py [backend ...]``
(default: all of inline, thread, process).
"""

import sys
import tempfile
from pathlib import Path

from repro.api import (
    FrontendPolicy,
    GMineAsyncHTTPServer,
    GMineClient,
    GMineHTTPServer,
    dumps,
)
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import (
    AuthRequiredError,
    InvalidArgumentError,
    RateLimitedError,
    SessionNotFoundError,
)
from repro.graph.io import write_json
from repro.service import GMineService
from repro.storage.gtree_store import save_gtree

#: Execution backends the per-backend smoke loop covers (auto is exercised
#: separately in the Protocol v2 section: its choices are host-dependent).
SMOKE_BACKENDS = ("inline", "thread", "process")


def build_dataset(workdir: Path):
    """Generate the smoke dataset and persist store + graph files."""
    dataset = generate_dblp(DBLPConfig(num_authors=600, seed=11))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=11)
    store_path = workdir / "smoke.gtree"
    graph_path = workdir / "smoke.json"
    save_gtree(tree, store_path)
    write_json(dataset.graph, graph_path)
    return tree, store_path, graph_path


def smoke_one_backend(backend, tree, store_path, graph_path):
    """Run the full HTTP smoke on one backend; returns the parity bytes."""
    leaves = sorted(tree.leaves(), key=lambda node: -node.size)[:4]
    hot = leaves[0]

    with GMineService(max_workers=4, backend=backend) as service:
        service.register_store(
            store_path, name="dblp", graph_path=graph_path
        )
        with GMineHTTPServer(service, port=0) as server:
            print(f"[{backend}] serving gmine/1 on {server.url}")
            remote = GMineClient.http(server.url)
            local = GMineClient.in_process(service)

            # ---------------------------------------------------------- #
            # a mixed batch: metrics, RWR, extraction, connectivity
            # ---------------------------------------------------------- #
            requests = (
                [{"op": "metrics", "args": {"community": leaf.label}}
                 for leaf in leaves]
                + [{"op": "rwr",
                    "args": {"sources": list(hot.members[:2]),
                             "community": hot.label}}]
                + [{"op": "connection_subgraph",
                    "args": {"sources": list(hot.members[:2]),
                             "community": hot.label, "budget": 12}}]
                + [{"op": "connectivity", "args": {}}]
            )

            cold = remote.batch(requests)
            assert all(reply.ok for reply in cold), "cold batch must succeed"
            assert not any(reply.cached for reply in cold), "cold = all computed"

            warm = remote.batch(requests)
            assert all(reply.ok and reply.cached for reply in warm), (
                "warm batch must be answered from the shared cache"
            )

            stats = remote.stats()
            computed = stats["computed"]
            assert computed.get("metrics") == len(leaves), computed
            assert computed.get("rwr") == 1, computed
            assert stats["backend"]["name"] == backend, stats["backend"]
            if backend == "process":
                assert stats["backend"]["shipped"] >= 6, (
                    "process backend must ship the expensive kernels",
                    stats["backend"],
                )
            print(f"[{backend}] cache accounting ok: {stats['cache']}")
            print(f"[{backend}] backend accounting ok: {stats['backend']}")

            # ---------------------------------------------------------- #
            # transport parity: same bytes in-process and over the socket
            # ---------------------------------------------------------- #
            args = {"sources": list(hot.members[:2]), "community": hot.label}
            assert local.query_raw("rwr", args=args) == remote.query_raw(
                "rwr", args=args
            ), "transports must be byte-identical"
            print(f"[{backend}] transport parity ok (in-process == HTTP)")

            # ---------------------------------------------------------- #
            # sessions over the wire
            # ---------------------------------------------------------- #
            info = remote.create_session(name="walker", focus=hot.label)
            step = remote.session_step(info["session_id"], "community_metrics")
            assert step["result"]["num_weak_components"] >= 1
            state = remote.session_state(info["session_id"])
            remote.close_session(info["session_id"])
            revived = remote.restore_session(state)
            assert revived["focus"] == hot.label
            print(f"[{backend}] session round-trip ok: {info['session_id']} "
                  f"-> {revived['session_id']}")

            # ---------------------------------------------------------- #
            # structured failures: typed errors, never tracebacks
            # ---------------------------------------------------------- #
            try:
                remote.resume_session("never-issued")
                raise AssertionError("unknown session must raise")
            except SessionNotFoundError as error:
                print(f"[{backend}] unknown session -> "
                      f"SessionNotFoundError: {error}")
            try:
                remote.call("rwr", sources=[])
                raise AssertionError("empty sources must raise")
            except InvalidArgumentError as error:
                print(f"[{backend}] bad arguments -> "
                      f"InvalidArgumentError: {error}")

            # the parity probe: canonical bytes for the whole request set
            return [
                remote.query_raw(item["op"], args=item["args"])
                for item in requests
            ]


def smoke_protocol_v2(tree, store_path, graph_path):
    """Asyncio front-end, streamed cursors, registry sessions, guard rails."""
    hot = max(tree.leaves(), key=lambda node: node.size)
    args = {"sources": list(hot.members[:2]), "community": hot.label}

    # The auto backend runs on the *measured* cost model here: persisted
    # next to the smoke workdir, seeded from the repo's own benchmark
    # artifacts exactly as `gmine serve --backend auto` seeds a fresh one.
    cost_model_file = Path(store_path).parent / "smoke.cost.json"
    with GMineService(
        max_workers=4, backend="auto", cost_model_path=cost_model_file
    ) as service:
        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        seeded = service.backend.cost_model.seed_from_bench(
            str(bench_dir / "BENCH_exec.json"),
            str(bench_dir / "BENCH_kernels.json"),
        )
        print(f"[v2] measured cost model: {seeded} bench-seeded estimates")
        service.register_store(store_path, name="dblp", graph_path=graph_path)
        with GMineHTTPServer(service, port=0) as threaded, \
                GMineAsyncHTTPServer(service, port=0) as aio_server:
            threaded_client = GMineClient.http(threaded.url)
            aio = GMineClient.http(aio_server.url)
            print(f"[v2] asyncio front-end serving on {aio_server.url}")

            # ------------------------------------------------------------ #
            # one streamed query over asyncio: chunked cursors reassemble
            # byte-identically to the threaded server's one-shot payload
            # ------------------------------------------------------------ #
            aio.query("rwr", args=args).unwrap()  # warm: stable cached flags
            chunks = list(aio.stream("rwr", args=args, chunk_size=64))
            assert all(chunk.ok for chunk in chunks), "stream must succeed"
            assert len(chunks) > 1, "the full vector must actually chunk"
            assert chunks[-1].next_cursor is None
            merged = aio.stream_result("rwr", args=args, chunk_size=64)
            total = chunks[0].page["total"]
            one_shot = threaded_client.query(
                "rwr", args=args, page={"top_k": total}
            ).unwrap()
            assert dumps(merged) == dumps(one_shot), (
                "streamed reassembly must equal the one-shot payload"
            )
            print(f"[v2] streamed {total} scores in {len(chunks)} cursor "
                  f"chunks; reassembly byte-identical to one-shot")

            # resume mid-stream over the *other* front-end
            resumed = list(threaded_client.stream(
                "rwr", args=args, cursor=chunks[0].next_cursor
            ))
            assert [r.to_dict() for r in resumed] == [
                c.to_dict() for c in chunks[1:]
            ], "a cursor resumes seamlessly across front-ends"
            print("[v2] cursor resumption across front-ends ok")

            # ------------------------------------------------------------ #
            # session ops are registry citizens (no bespoke endpoints)
            # ------------------------------------------------------------ #
            ops = {op["name"]: op for op in aio.ops()}
            session_ops = [name for name in ops if name.startswith("session.")]
            assert session_ops, "registry must declare the session surface"
            assert all(ops[name]["scope"] == "session" for name in session_ops)
            created = aio.call("session.create", name="v2", focus=hot.label)
            sid = created["session"]["session_id"]
            via_session = aio.call("session.rwr", session_id=sid,
                                   sources=args["sources"])
            direct = threaded_client.query("rwr", args=args)
            assert direct.cached, "session variant must feed the shared cache"
            assert via_session == direct.unwrap()
            aio.call("session.close", session_id=sid)
            print(f"[v2] {len(session_ops)} session ops in the registry; "
                  f"session.rwr == rwr (shared cache hit)")

            backend_stats = aio.stats()["backend"]
            assert backend_stats["name"] == "auto"
            assert backend_stats["choices"], "auto must record its choices"
            assert backend_stats["cost_model"], (
                "the measured model must surface through /v1/stats"
            )
            assert backend_stats["decisions"], "every choice carries a basis"
            for operation, basis in backend_stats["decisions"].items():
                assert basis["rule"] in ("static", "measured"), basis
                assert "venue" in basis and "static" in basis, basis
            print(f"[v2] backend auto choices: {backend_stats['choices']}")
            print(f"[v2] decision basis: "
                  f"{ {op: b['rule'] for op, b in backend_stats['decisions'].items()} }")

        # ---------------------------------------------------------------- #
        # authed + rate-limited front-end: structured 401/429 envelopes
        # ---------------------------------------------------------------- #
        policy = FrontendPolicy(auth_token="smoke-token", rate_limit=50.0)
        with GMineAsyncHTTPServer(service, port=0, policy=policy) as guarded:
            try:
                GMineClient.http(guarded.url).ops()
                raise AssertionError("missing bearer token must raise")
            except AuthRequiredError as error:
                print(f"[v2] unauthenticated -> AuthRequiredError: {error}")
            authed = GMineClient.http(guarded.url, auth_token="smoke-token")
            assert authed.call("connectivity", dataset="dblp")["edges"]
            rejections = 0
            for _ in range(120):  # well past the 50-token burst
                try:
                    authed.ops()
                except RateLimitedError:
                    rejections += 1
            assert rejections > 0, "the token bucket must eventually reject"
            print(f"[v2] rate limit enforced: {rejections} RATE_LIMITED "
                  f"rejections past the burst")


def smoke_mutations():
    """Edit + subscribe round-trip across both front-ends.

    One mutable dataset, two live front-ends over the same service: an
    edit applied through either server must surface as a change event on
    the other, carrying exactly the fingerprint the apply reported.
    """
    mutable = generate_dblp(DBLPConfig(num_authors=200, seed=23))
    tree = build_gtree(mutable.graph, fanout=3, levels=2, seed=23)

    with GMineService(max_workers=4) as service:
        service.register_tree(tree, graph=mutable.graph, name="live")
        with GMineHTTPServer(service, port=0) as threaded, \
                GMineAsyncHTTPServer(service, port=0) as aio_server:
            over_threads = GMineClient.http(threaded.url)
            over_loop = GMineClient.http(aio_server.url)

            leaves = sorted(tree.leaves(), key=lambda node: -node.size)
            edited_leaf, quiet_leaf = leaves[0], leaves[-1]
            members = set(edited_leaf.members)
            u, v, w = next(
                (u, v, w) for u, v, w in mutable.graph.edges()
                if u in members and v in members
            )

            # Warm one partition-scoped and one root-scoped entry so the
            # edit has cache state to invalidate selectively.
            over_threads.call("metrics", community=edited_leaf.label)
            over_threads.call("connectivity")
            watermark = over_loop.stats()["feeds"].get("live", 0)

            # Edit through the threaded server, observe through asyncio.
            report = over_threads.apply_dataset(
                "live",
                [{"action": "add_edge", "u": u, "v": v, "weight": w + 1.0}],
            )
            assert report["changed"], report
            assert edited_leaf.label in report["changed_partitions"], report
            feed = over_loop.subscribe(
                dataset="live", since=watermark, timeout=5.0
            )
            assert [event["fingerprint"] for event in feed["events"]] == [
                report["fingerprint"]
            ], "the asyncio watcher must see the threaded edit"
            rows = {row["name"]: row for row in over_loop.datasets()}
            assert rows["live"]["fingerprint"] == report["fingerprint"]
            print("[mutate] threaded edit -> asyncio subscriber ok "
                  f"(seq {feed['next_since']}, "
                  f"{report['invalidated']} entries invalidated)")

            # Mirror image: edit through asyncio, watch through threads.
            # Restoring the original weight returns the original content,
            # so the event carries the pre-edit fingerprint again.
            restored = over_loop.apply_dataset(
                "live",
                [{"action": "add_edge", "u": u, "v": v, "weight": w}],
            )
            assert restored["changed"]
            assert restored["fingerprint"] == report["previous_fingerprint"]
            mirror = over_threads.subscribe(
                dataset="live", since=feed["next_since"], timeout=5.0
            )
            assert [event["fingerprint"] for event in mirror["events"]] == [
                restored["fingerprint"]
            ], "the threaded watcher must see the asyncio edit"
            print("[mutate] asyncio edit -> threaded subscriber ok "
                  "(restored the original fingerprint)")

            # A watcher filtered to a community neither edit touched is
            # advanced past both events without being woken for them.
            filtered = over_threads.subscribe(
                dataset="live", since=watermark,
                community=quiet_leaf.label,
            )
            assert filtered["events"] == [], filtered
            assert filtered["next_since"] == mirror["next_since"]
            print("[mutate] community-filtered watcher skipped "
                  "both foreign edits ok")


def smoke_gpath(tree, store_path, graph_path, workdir: Path):
    """GPath over the wire plus the ingest loading pipeline.

    ``query.path`` must return byte-identical envelopes over the threaded
    server, the asyncio server and the in-process transport; the fused
    ``rwr(...)/top(5)`` plan must agree exactly with the direct
    ``rwr`` slice; parse errors must surface as structured
    ``QUERY_PARSE_ERROR`` envelopes with source spans on both front-ends;
    and a CSV ingested through one front-end must immediately answer path
    queries on the other.
    """
    hot = sorted(tree.leaves(), key=lambda node: -node.size)[0]
    sources = list(hot.members[:2])

    with GMineService(max_workers=4) as service:
        service.register_store(store_path, name="dblp", graph_path=graph_path)
        with GMineHTTPServer(service, port=0) as threaded, \
                GMineAsyncHTTPServer(service, port=0) as aio_server:
            over_threads = GMineClient.http(threaded.url)
            over_loop = GMineClient.http(aio_server.url)
            local = GMineClient.in_process(service)

            src = ", ".join(str(s) for s in sources)
            fused = (
                f"community({hot.label})/members/"
                f"rwr(sources=[{src}])/top(5)"
            )
            args = {"path": fused}
            fused_payload = over_threads.call("query.path", path=fused)
            # warm above, so the cached flag agrees across the probes below
            raw = over_threads.query_raw("query.path", args=args)
            assert raw == over_loop.query_raw("query.path", args=args), (
                "threaded and asyncio front-ends must serve identical bytes"
            )
            assert raw == local.query_raw("query.path", args=args), (
                "in-process and HTTP transports must serve identical bytes"
            )
            direct = over_threads.call(
                "rwr", page={"top_k": 5},
                sources=sources, community=hot.label,
            )
            assert fused_payload["items"] == direct["scores"], (
                "fused top(5) must equal the direct rwr slice"
            )
            listing = over_loop.call("query.path", path="leaves/nodes")
            assert listing["count"] == len(tree.leaves())
            print("[gpath] fused rwr/top(5) == direct rwr slice; "
                  "3-way transport parity ok")

            bad = "community(s0)/teleport"
            for front, client in (("threaded", over_threads),
                                  ("asyncio", over_loop)):
                reply = client.query("query.path", args={"path": bad})
                assert not reply.ok, "a parse error must not succeed"
                assert reply.error.code == "QUERY_PARSE_ERROR", reply.error
                span = reply.error.details["span"]
                source = reply.error.details["source"]
                assert source[span[0]:span[1]] == "teleport", reply.error
                print(f"[gpath] {front} parse error -> QUERY_PARSE_ERROR "
                      f"with span {span} ok")

            # ingest round-trip: CSV in via asyncio, queried via threads
            csv_path = workdir / "ring.csv"
            csv_path.write_text(
                "source,target,weight\n" + "".join(
                    f"{i},{(i + 1) % 30},1.0\n" for i in range(30)
                ),
                encoding="utf-8",
            )
            report = over_loop.call(
                "dataset.ingest", path=str(csv_path), name="ring",
                fanout=2, levels=2,
            )
            assert report["dataset"] == "ring" and report["nodes"] == 30
            count = over_threads.call(
                "query.path", dataset="ring", path="members/count"
            )
            assert count["count"] == report["nodes"]
            print(f"[gpath] ingest round-trip ok: {report['nodes']} nodes, "
                  f"{report['tree']['leaves']} leaves, queried cross-front-end")


def main() -> None:
    backends = sys.argv[1:] or list(SMOKE_BACKENDS)
    with tempfile.TemporaryDirectory(prefix="gmine-smoke-") as workdir:
        tree, store_path, graph_path = build_dataset(Path(workdir))
        payloads = {
            backend: smoke_one_backend(backend, tree, store_path, graph_path)
            for backend in backends
        }
        smoke_protocol_v2(tree, store_path, graph_path)
        smoke_mutations()
        smoke_gpath(tree, store_path, graph_path, Path(workdir))
    if len(payloads) > 1:
        reference_name = next(iter(payloads))
        reference = payloads[reference_name]
        for backend, observed in payloads.items():
            assert observed == reference, (
                f"backend {backend} diverged from {reference_name}"
            )
        print(f"backend parity ok: {', '.join(payloads)} are byte-identical")
    print("serve-smoke: all assertions passed")


if __name__ == "__main__":
    main()

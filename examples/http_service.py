"""Serve GMine over HTTP and drive it with the transport-agnostic client.

This is the ``make serve-smoke`` gate: it builds a small DBLP dataset,
starts the GMine Protocol v1 HTTP front-end on an ephemeral port, fires a
batch of mixed queries **twice** (cold, then warm), and asserts

* every response is a structured ``gmine/1`` envelope,
* the warm pass is answered entirely from the shared result cache
  (cache-hit accounting via ``/v1/stats``),
* the in-process transport returns byte-identical payloads to HTTP,
* session navigation works end to end over the wire, and
* failures (expired sessions, bad arguments) surface as typed,
  machine-readable error codes — never raw tracebacks.

Run it:  ``PYTHONPATH=src python examples/http_service.py``
"""

from repro.api import GMineClient, GMineHTTPServer
from repro.core.builder import build_gtree
from repro.data.dblp import DBLPConfig, generate_dblp
from repro.errors import InvalidArgumentError, SessionNotFoundError
from repro.service import GMineService


def main() -> None:
    dataset = generate_dblp(DBLPConfig(num_authors=600, seed=11))
    tree = build_gtree(dataset.graph, fanout=3, levels=3, seed=11)
    leaves = sorted(tree.leaves(), key=lambda node: -node.size)[:4]
    hot = leaves[0]

    with GMineService(max_workers=4) as service:
        service.register_tree(tree, graph=dataset.graph, name="dblp")
        with GMineHTTPServer(service, port=0) as server:
            print(f"serving gmine/1 on {server.url}")
            remote = GMineClient.http(server.url)
            local = GMineClient.in_process(service)

            # ---------------------------------------------------------- #
            # a mixed batch: metrics, RWR, extraction, connectivity
            # ---------------------------------------------------------- #
            requests = (
                [{"op": "metrics", "args": {"community": leaf.label}}
                 for leaf in leaves]
                + [{"op": "rwr",
                    "args": {"sources": list(hot.members[:2]),
                             "community": hot.label}}]
                + [{"op": "connection_subgraph",
                    "args": {"sources": list(hot.members[:2]),
                             "community": hot.label, "budget": 12}}]
                + [{"op": "connectivity", "args": {}}]
            )

            cold = remote.batch(requests)
            assert all(reply.ok for reply in cold), "cold batch must succeed"
            assert not any(reply.cached for reply in cold), "cold = all computed"

            warm = remote.batch(requests)
            assert all(reply.ok and reply.cached for reply in warm), (
                "warm batch must be answered from the shared cache"
            )

            stats = remote.stats()
            computed = stats["computed"]
            assert computed.get("metrics") == len(leaves), computed
            assert computed.get("rwr") == 1, computed
            print(f"cache accounting ok: {stats['cache']}")
            print(f"computed once each: {computed}")

            # ---------------------------------------------------------- #
            # transport parity: same bytes in-process and over the socket
            # ---------------------------------------------------------- #
            args = {"sources": list(hot.members[:2]), "community": hot.label}
            assert local.query_raw("rwr", args=args) == remote.query_raw(
                "rwr", args=args
            ), "transports must be byte-identical"
            print("transport parity ok (in-process == HTTP)")

            # ---------------------------------------------------------- #
            # sessions over the wire
            # ---------------------------------------------------------- #
            info = remote.create_session(name="walker", focus=hot.label)
            step = remote.session_step(info["session_id"], "community_metrics")
            assert step["result"]["num_weak_components"] >= 1
            state = remote.session_state(info["session_id"])
            remote.close_session(info["session_id"])
            revived = remote.restore_session(state)
            assert revived["focus"] == hot.label
            print(f"session round-trip ok: {info['session_id']} -> "
                  f"{revived['session_id']}")

            # ---------------------------------------------------------- #
            # structured failures: typed errors, never tracebacks
            # ---------------------------------------------------------- #
            try:
                remote.resume_session("never-issued")
                raise AssertionError("unknown session must raise")
            except SessionNotFoundError as error:
                print(f"unknown session -> SessionNotFoundError: {error}")
            try:
                remote.call("rwr", sources=[])
                raise AssertionError("empty sources must raise")
            except InvalidArgumentError as error:
                print(f"bad arguments -> InvalidArgumentError: {error}")

            print("serve-smoke: all assertions passed")


if __name__ == "__main__":
    main()

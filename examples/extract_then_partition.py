#!/usr/bin/env python
"""Reproduce figure 6: combine extraction with hierarchical visualization.

The paper's figure 6 shows the two ideas composed: a 200-node connection
subgraph is extracted from DBLP, then that extract is itself hierarchically
partitioned (3 communities at the first level) and navigated down to the
individual nodes.

Run:  python examples/extract_then_partition.py
"""

from pathlib import Path

from repro import GMineEngine, build_gtree, generate_dblp
from repro.data import DBLPConfig
from repro.mining import extract_connection_subgraph
from repro.viz import render_subgraph, render_tomahawk_view, write_svg

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    dataset = generate_dblp(DBLPConfig(num_authors=4000, seed=13))
    graph = dataset.graph
    print(f"dataset: {graph.num_nodes} authors, {graph.num_edges} collaborations")

    # (a) 200-node subgraph extracted from the whole dataset.
    sources = [author for author, _, _ in dataset.most_collaborative_authors(4)]
    extraction = extract_connection_subgraph(graph, sources, budget=200)
    extract = extraction.subgraph
    print(f"(a) extracted {extract.num_nodes} nodes / {extract.num_edges} edges "
          f"({graph.num_nodes / extract.num_nodes:.0f}x smaller)")
    write_svg(
        render_subgraph(extract, highlight=sources, node_scores=extraction.goodness,
                        title="figure 6a: 200-node extract"),
        OUTPUT_DIR / "fig6a_extract.svg",
    )

    # (b) the same subgraph presented as three partitions.
    tree = build_gtree(extract, fanout=3, levels=3, seed=13)
    engine = GMineEngine(tree, graph=extract)
    context = engine.focus_root()
    first_level = tree.children(tree.root.node_id)
    print(f"(b) extract partitioned into {len(first_level)} communities: "
          + ", ".join(f"{node.label}({node.size})" for node in first_level))
    write_svg(render_tomahawk_view(tree, context, graph=extract),
              OUTPUT_DIR / "fig6b_partitioned.svg")

    # (c) one level down the hierarchy.
    context = engine.drill_down(0)
    print(f"(c) focused {engine.focus.label}: "
          f"{len(engine.focus.children)} sub-communities inside it")
    write_svg(render_tomahawk_view(tree, context, graph=extract),
              OUTPUT_DIR / "fig6c_level_down.svg")

    # (d) zoom into a community and reach the very nodes of the graph.
    while not engine.focus.is_leaf:
        context = engine.drill_down(0)
    print(f"(d) reached leaf {engine.focus.label} with {engine.focus.size} actual nodes")
    write_svg(
        render_tomahawk_view(tree, context, graph=extract, expand_focus_subgraph=True),
        OUTPUT_DIR / "fig6d_leaf_nodes.svg",
    )

    print(f"SVG snapshots written to {OUTPUT_DIR}")


if __name__ == "__main__":
    main()

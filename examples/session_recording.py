#!/usr/bin/env python
"""Record an exploration session, save it, and replay it on a rebuilt tree.

GMine is demonstrated live at the conference; this example shows the
reproduction's scriptable equivalent: an :class:`ExplorationSession` records
every interaction (focus changes, label queries, metric requests), saves
them as JSON, and replays them later — including against a G-Tree reloaded
from its single-file store — so a demo walkthrough is fully reproducible.

Run:  python examples/session_recording.py
"""

import tempfile
from pathlib import Path

from repro import GMineEngine, build_gtree, save_gtree, small_dblp
from repro.core import ExplorationSession
from repro.storage import GTreeStore

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    dataset = small_dblp(num_authors=1000, seed=31)
    tree = build_gtree(dataset.graph, fanout=4, levels=3, seed=31)

    # --- record ----------------------------------------------------------- #
    engine = GMineEngine(tree, graph=dataset.graph)
    session = ExplorationSession(engine, name="demo-walkthrough")
    session.focus("s0", note="start at the whole collection")
    session.drill_down(0, note="enter the first community")
    session.bookmark("first-community")
    prolific = dataset.most_collaborative_authors(1)[0][1]
    session.locate_and_focus(prolific, note="jump to the most prolific author")
    session.community_metrics(note="inspect their community")
    session.goto_bookmark("first-community")

    session_path = OUTPUT_DIR / "walkthrough.json"
    session.save(session_path)
    print(f"recorded {len(session.steps)} steps -> {session_path}")
    print("actions:", [step.action for step in session.steps])

    # --- replay against a store-backed engine ------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "walkthrough.gtree"
        save_gtree(tree, store_path)
        with GTreeStore(store_path, cache_capacity=4) as store:
            replay_engine = GMineEngine(store.tree, graph=dataset.graph, store=store)
            steps = ExplorationSession.load_steps(session_path)
            replayed = ExplorationSession.replay(replay_engine, steps)
            print(f"replayed {len(replayed.steps)} steps from disk; "
                  f"final focus: {replayed.engine.focus.label} "
                  f"(was {engine.focus.label} when recorded)")
            assert replayed.engine.focus.label == engine.focus.label


if __name__ == "__main__":
    main()

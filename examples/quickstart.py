#!/usr/bin/env python
"""Quickstart: generate a co-authorship graph, build a G-Tree, explore it.

Covers the minimal GMine workflow in under a minute:

1. generate a synthetic DBLP-like dataset,
2. recursively partition it into a communities-within-communities G-Tree,
3. navigate with the engine (focus, drill down, label query, metrics),
4. render the current view to SVG.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import GMineEngine, build_gtree, small_dblp
from repro.viz import render_tomahawk_view, write_svg

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    # 1. A reduced-scale synthetic DBLP (the paper uses the real 315k-author
    #    snapshot; the generator preserves its community structure and skew).
    dataset = small_dblp(num_authors=1200, seed=7)
    graph = dataset.graph
    print(f"dataset: {graph.num_nodes} authors, {graph.num_edges} collaborations")

    # 2. Communities-within-communities hierarchy (fanout 5, 3 levels here;
    #    the paper's DBLP demo uses fanout 5 with 5 levels).
    tree = build_gtree(graph, fanout=5, levels=3, seed=7)
    summary = tree.summary()
    print(
        f"G-Tree: {summary['tree_nodes']:.0f} communities, "
        f"{summary['leaf_communities']:.0f} leaves, "
        f"mean leaf size {summary['mean_leaf_size']:.1f}"
    )

    # 3. Interactive exploration, scripted.
    engine = GMineEngine(tree, graph=graph)
    context = engine.focus_root()
    print(f"root context shows {context.size} communities (Tomahawk principle)")

    context = engine.drill_down(0)
    print(f"focused {engine.focus.label}; clutter reduction "
          f"{engine.current_clutter_reduction()['reduction_ratio']:.1f}x")

    # Label query: find a specific author and jump to their community.
    author = dataset.name_of(42)
    result = engine.label_query(author)
    print(f"label query for {author!r}: leaf {result.leaf_label}, "
          f"path {' > '.join(reversed(result.path_labels))}")

    engine.locate_and_focus(author)
    metrics = engine.community_metrics()
    print(
        f"community {engine.focus.label}: {metrics.degree_stats.num_nodes} nodes, "
        f"{metrics.num_weak_components} weak components, diameter {metrics.diameter}"
    )

    # 4. Render the current Tomahawk view.
    OUTPUT_DIR.mkdir(exist_ok=True)
    scene = render_tomahawk_view(tree, engine.current_context(), graph=graph)
    path = write_svg(scene, OUTPUT_DIR / "quickstart_view.svg")
    print(f"wrote {path} ({scene.visual_item_count()} visual items)")


if __name__ == "__main__":
    main()

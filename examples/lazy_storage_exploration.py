#!/usr/bin/env python
"""Demonstrate the single-file G-Tree store and on-demand community loading.

"The entire structure is stored in a single file and the nodes are
transferred to main memory only when necessary" — this example builds a
G-Tree, persists it, reopens it with a small buffer pool, navigates a few
communities, and reports how little of the file actually had to be read
compared with loading everything.

Run:  python examples/lazy_storage_exploration.py
"""

import os
import tempfile
from pathlib import Path

from repro import GMineEngine, build_gtree, generate_dblp, save_gtree
from repro.data import DBLPConfig
from repro.storage import GTreeStore, load_gtree_fully


def main() -> None:
    dataset = generate_dblp(DBLPConfig(num_authors=3000, seed=21))
    graph = dataset.graph
    tree = build_gtree(graph, fanout=5, levels=4, seed=21)
    print(f"G-Tree: {tree.num_tree_nodes} communities, {tree.num_leaves} leaves")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "dblp.gtree"
        save_gtree(tree, store_path)
        file_size = os.path.getsize(store_path)
        print(f"store written: {file_size / 1024:.0f} KiB in a single file")

        # --- lazy exploration ------------------------------------------- #
        with GTreeStore(store_path, cache_capacity=8) as store:
            engine = GMineEngine.from_store(store)
            engine.focus_root()
            # Visit three leaf communities, as an interactive user would.
            for leaf in store.tree.leaves()[:3]:
                engine.focus_community(leaf.node_id)
                subgraph = engine.community_subgraph()
                print(f"  visited {leaf.label}: {subgraph.num_nodes} nodes "
                      f"(resident leaves: {store.resident_leaf_count()})")
            lazy_stats = store.stats
            print(f"lazy session: {lazy_stats.leaves_loaded} of {tree.num_leaves} "
                  f"leaves loaded, {lazy_stats.pager.bytes_read / 1024:.0f} KiB read, "
                  f"buffer-pool hit rate {lazy_stats.buffer_pool.hit_rate:.2f}")

        # --- eager baseline ---------------------------------------------- #
        with GTreeStore(store_path) as store:
            for leaf in store.tree.leaves():
                store.load_leaf_subgraph(leaf.node_id)
            eager_stats = store.stats
        print(f"eager load of every community reads "
              f"{eager_stats.pager.bytes_read / 1024:.0f} KiB "
              f"({eager_stats.leaves_loaded} leaves) — the lazy session touched "
              f"{100.0 * lazy_stats.pager.bytes_read / max(eager_stats.pager.bytes_read, 1):.0f}% of that")


if __name__ == "__main__":
    main()

# Developer entry points for the GMine reproduction.
#
#   make check       — the gate: tier-1 tests + smoke runs of the concurrent
#                      sessions example and the HTTP front-end (what CI
#                      should run on every change)
#   make tier1       — fast tests only (everything not marked `slow`)
#   make test-all    — the complete suite including slow paper-claim tests
#   make test-slow   — only the slow tests
#   make smoke       — run the concurrent multi-session service example
#   make serve-smoke — start the gmine/1 HTTP server once per execution
#                      backend (inline, thread, process), fire a mixed
#                      batch twice per backend, and assert cache-hit
#                      accounting, transport parity AND cross-backend
#                      byte-parity; then smoke the Protocol v2 surface —
#                      the asyncio front-end with a streamed cursor query
#                      (reassembly byte-identical to one-shot), registry
#                      session ops, and an authed + rate-limited server
#                      returning AUTH_REQUIRED/RATE_LIMITED envelopes —
#                      and the mutable-dataset surface: a dataset.apply
#                      edit on one front-end observed via /v1/subscribe
#                      on the other, both directions; and the GPath
#                      surface: fused path queries with 3-way transport
#                      parity, structured parse-error spans and a CSV
#                      dataset.ingest round-trip across front-ends
#                      (examples/http_service.py)
#   make bench-http  — requests/sec for cached vs uncached RWR over the
#                      threaded HTTP, asyncio HTTP and in-process
#                      transports, incl. streamed full-vector rates;
#                      writes benchmarks/BENCH_http.json
#   make bench-exec  — uncached RWR/metrics batches on the inline, thread
#                      and process execution backends (speedup vs thread);
#                      writes benchmarks/BENCH_exec.json
#   make bench-kernels — prepared-vs-cold and blocked-vs-looped mining
#                      kernel medians; writes benchmarks/BENCH_kernels.json
#                      and FAILS if the prepared path is slower than cold
#                      (the CI gate for the prepared-kernel layer)
#   make bench-mutate — incremental dataset.apply vs full-rebuild latency
#                      plus warm-cache survival across a single-edge edit;
#                      writes benchmarks/BENCH_mutate.json and FAILS if a
#                      1-edge edit invalidates >= 50% of the warm entries
#                      (the CI gate for partition-scoped invalidation)
#   make bench-path  — GPath parse/compile overhead plus fused-plan vs
#                      direct-kernel execution on a warm prepared graph;
#                      writes benchmarks/BENCH_path.json and FAILS if the
#                      fused top(k) plan exceeds 1.10x the direct
#                      dataset.rwr kernel + slice (the CI gate for the
#                      compiler's pass-through fast path)
#   make chaos       — the resilience/chaos suite: deadline propagation,
#                      circuit-breaker trip/half-open/recovery, degraded
#                      stale serving with byte parity, admission shedding
#                      and the seeded 20%-failure fault matrix across all
#                      four execution backends and both HTTP front-ends
#   make bench-chaos — typed outcomes and bounded latency under a seeded
#                      20%-failure FaultPlan plus overload shedding and
#                      disabled-injector overhead; writes
#                      benchmarks/BENCH_chaos.json and FAILS on any
#                      untyped 500 or a p99 above the deadline budget
#                      (the CI gate for the resilience layer)
#   make bench-shm   — shared-memory prepared graphs: worker attach vs
#                      rebuild (in real pool workers, with bit-parity
#                      hashes and RSS deltas) and one-factorization
#                      blocked exact RWR vs the per-set loop; writes
#                      benchmarks/BENCH_shm.json and FAILS if attach is
#                      below 5x rebuild, blocked exact below 2x looped,
#                      or either path diverges bitwise (the CI gate for
#                      the zero-copy prepared-graph layer)
#   make bench-shard — sharded execution: byte parity of sharded vs inline
#                      wire envelopes (rwr, scatter rwr, metrics, GPath)
#                      gated BEFORE any timing counts, then a stream of
#                      single-community RWR requests against sharded:2 vs
#                      the store-backed process:2 pool (both ship every
#                      plan); writes benchmarks/BENCH_shard.json and FAILS
#                      on any byte divergence or if single-shard-routed
#                      latency exceeds 1.15x the unsharded pool (the CI
#                      gate for the shard subsystem)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check tier1 smoke serve-smoke chaos bench-http bench-exec bench-kernels bench-mutate bench-path bench-shm bench-chaos bench-shard test-all test-slow

check: tier1 smoke serve-smoke
	@echo "check: tier-1 tests, service smoke and HTTP serve-smoke passed"

tier1:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) examples/concurrent_sessions.py

serve-smoke:
	$(PYTHON) examples/http_service.py inline thread process

bench-http:
	$(PYTHON) benchmarks/bench_http_throughput.py

bench-exec:
	$(PYTHON) benchmarks/bench_exec_backends.py

bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py

bench-mutate:
	$(PYTHON) benchmarks/bench_mutate.py

bench-path:
	$(PYTHON) benchmarks/bench_path.py

bench-shm:
	$(PYTHON) benchmarks/bench_shm.py

chaos:
	$(PYTHON) -m pytest -x -q tests/service/test_resilience.py

bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py

bench-shard:
	$(PYTHON) benchmarks/bench_shard.py

test-all:
	$(PYTHON) -m pytest -q -m "slow or not slow"

test-slow:
	$(PYTHON) -m pytest -q -m slow

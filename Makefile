# Developer entry points for the GMine reproduction.
#
#   make check     — the gate: tier-1 tests + a smoke run of the concurrent
#                    sessions example (what CI should run on every change)
#   make tier1     — fast tests only (everything not marked `slow`)
#   make test-all  — the complete suite including slow paper-claim tests
#   make test-slow — only the slow tests
#   make smoke     — run the concurrent multi-session service example

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check tier1 smoke test-all test-slow

check: tier1 smoke
	@echo "check: tier-1 tests and service smoke run passed"

tier1:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) examples/concurrent_sessions.py

test-all:
	$(PYTHON) -m pytest -q -m "slow or not slow"

test-slow:
	$(PYTHON) -m pytest -q -m slow
